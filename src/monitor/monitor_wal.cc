#include "monitor/monitor_wal.h"

#include <cstring>
#include <utility>

#include "io/durable.h"

namespace s2::monitor {

namespace {

constexpr char kMagic[8] = {'S', '2', 'M', 'W', 'A', 'L', '0', '1'};
// Rotated-segment header magic (see io::walseg) — distinct from both the
// record-stream magic above and the data WAL's segment magic.
constexpr char kSegMagic[8] = {'S', '2', 'M', 'W', 'A', 'S', '0', '1'};
constexpr size_t kLenBytes = sizeof(uint32_t);
constexpr size_t kSumBytes = sizeof(uint64_t);
// A subscription payload is dominated by the similarity query (one double
// per corpus day); anything past this is a torn length prefix, not a
// record. Generous: a 1M-day window would still fit.
constexpr uint32_t kMaxPayloadBytes = 16u << 20;

class Encoder {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  const std::vector<char>& bytes() const { return bytes_; }

 private:
  void Raw(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    bytes_.insert(bytes_.end(), c, c + n);
  }
  std::vector<char> bytes_;
};

class Decoder {
 public:
  Decoder(const char* data, size_t n) : data_(data), n_(n) {}
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Done() const { return pos_ == n_; }

 private:
  bool Raw(void* p, size_t n) {
    if (n_ - pos_ < n) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t n_;
  size_t pos_ = 0;
};

std::vector<char> EncodePayload(const MonitorOp& op) {
  Encoder enc;
  enc.U32(static_cast<uint32_t>(op.op));
  enc.U64(op.anchor);
  switch (op.op) {
    case MonitorOp::Kind::kSubscribe: {
      const Subscription& sub = op.sub;
      enc.U64(sub.id);
      enc.U32(static_cast<uint32_t>(sub.kind));
      enc.U32(sub.series);
      enc.U32(sub.burst.window);
      enc.F64(sub.burst.enter_ratio);
      enc.F64(sub.burst.exit_ratio);
      enc.F64(sub.similarity.radius);
      enc.F64(sub.similarity.exit_radius);
      enc.U64(sub.similarity.query.size());
      for (double v : sub.similarity.query) enc.F64(v);
      break;
    }
    case MonitorOp::Kind::kUnsubscribe:
      enc.U64(op.sub.id);
      break;
    case MonitorOp::Kind::kAck:
      enc.U64(op.ack_upto);
      break;
  }
  return enc.bytes();
}

bool DecodePayload(const char* data, size_t n, MonitorOp* op) {
  Decoder dec(data, n);
  uint32_t kind = 0;
  if (!dec.U32(&kind) || !dec.U64(&op->anchor)) return false;
  switch (kind) {
    case static_cast<uint32_t>(MonitorOp::Kind::kSubscribe): {
      op->op = MonitorOp::Kind::kSubscribe;
      Subscription& sub = op->sub;
      uint32_t sub_kind = 0;
      uint32_t series = 0;
      uint64_t query_len = 0;
      if (!dec.U64(&sub.id) || !dec.U32(&sub_kind) || !dec.U32(&series) ||
          !dec.U32(&sub.burst.window) || !dec.F64(&sub.burst.enter_ratio) ||
          !dec.F64(&sub.burst.exit_ratio) || !dec.F64(&sub.similarity.radius) ||
          !dec.F64(&sub.similarity.exit_radius) || !dec.U64(&query_len)) {
        return false;
      }
      if (sub_kind > static_cast<uint32_t>(SubscriptionKind::kSimilarityWatch)) {
        return false;
      }
      sub.kind = static_cast<SubscriptionKind>(sub_kind);
      sub.series = series;
      sub.similarity.query.clear();
      if (query_len > n / sizeof(double)) return false;
      sub.similarity.query.reserve(query_len);
      for (uint64_t i = 0; i < query_len; ++i) {
        double v = 0.0;
        if (!dec.F64(&v)) return false;
        sub.similarity.query.push_back(v);
      }
      break;
    }
    case static_cast<uint32_t>(MonitorOp::Kind::kUnsubscribe):
      op->op = MonitorOp::Kind::kUnsubscribe;
      if (!dec.U64(&op->sub.id)) return false;
      break;
    case static_cast<uint32_t>(MonitorOp::Kind::kAck):
      op->op = MonitorOp::Kind::kAck;
      if (!dec.U64(&op->ack_upto)) return false;
      break;
    default:
      return false;
  }
  return dec.Done();
}

}  // namespace

MonitorWal::MonitorWal(io::Env* env, std::string path, Options options,
                       io::walseg::OpenResult state)
    : env_(env),
      path_(std::move(path)),
      file_(std::move(state.tail_file)),
      options_(options),
      tail_(state.tail_offset),
      chain_(state.chain),
      record_count_(static_cast<size_t>(state.record_count)),
      seq_(state.tail_seq),
      segments_(std::move(state.segments)) {}

Result<std::unique_ptr<MonitorWal>> MonitorWal::Open(
    io::Env* env, const std::string& path, std::vector<MonitorOp>* ops,
    ReplayInfo* info, const Options& options) {
  if (env == nullptr) env = io::Env::Default();
  if (ops == nullptr) {
    return Status::InvalidArgument("MonitorWal: ops out-param required");
  }

  // Scan one length-prefixed record: stop (consumed = 0) at the first
  // short, oversized or chain-breaking one (a torn tail, overwritten in
  // place by the next append — the stream::Wal contract). An undecodable
  // payload *behind a valid checksum* is real corruption, not a tear.
  const io::walseg::RecordScanner scan =
      [&path, ops](const char* data, size_t avail, uint64_t chain,
                   bool deliver, size_t* consumed,
                   uint64_t* next_chain) -> Status {
    *consumed = 0;
    if (avail < kLenBytes + kSumBytes) return Status::OK();
    uint32_t len = 0;
    std::memcpy(&len, data, kLenBytes);
    if (len > kMaxPayloadBytes || avail < kLenBytes + len + kSumBytes) {
      return Status::OK();
    }
    uint64_t stored = 0;
    std::memcpy(&stored, data + kLenBytes + len, kSumBytes);
    if (stored != io::durable::Fnv1a64(data, kLenBytes + len, chain)) {
      return Status::OK();
    }
    if (deliver) {
      MonitorOp op;
      if (!DecodePayload(data + kLenBytes, len, &op)) {
        return Status::Corruption("MonitorWal: undecodable record in " + path);
      }
      ops->push_back(std::move(op));
    }
    *next_chain = stored;
    *consumed = kLenBytes + len + kSumBytes;
    return Status::OK();
  };

  S2_ASSIGN_OR_RETURN(io::walseg::OpenResult state,
                      io::walseg::OpenLog(env, path, kMagic, kSegMagic,
                                          options.replay_from, scan));
  if (info != nullptr) {
    info->records = static_cast<size_t>(state.applied);
    info->dropped_bytes = state.dropped_bytes;
  }
  return std::unique_ptr<MonitorWal>(
      new MonitorWal(env, path, options, std::move(state)));
}

Status MonitorWal::MaybeRotate() {
  if (options_.rotate_bytes == 0) return Status::OK();
  const size_t header =
      seq_ == 0 ? io::walseg::kMagicBytes : io::walseg::kSegmentHeaderBytes;
  if (tail_ - header < options_.rotate_bytes) return Status::OK();
  // Every append syncs, so the outgoing segment is already durable.
  io::walseg::SegmentHeader next;
  next.seq = seq_ + 1;
  next.base_records = record_count_;
  next.chain_seed = chain_;
  S2_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                      io::walseg::CreateSegment(env_, path_, kSegMagic, next));
  file_ = std::move(file);
  seq_ = next.seq;
  tail_ = io::walseg::kSegmentHeaderBytes;
  segments_.push_back(io::walseg::SegmentInfo{
      io::walseg::SegmentPath(path_, next.seq), next.seq, next.base_records});
  return Status::OK();
}

Status MonitorWal::Append(const MonitorOp& op) {
  S2_RETURN_NOT_OK(MaybeRotate());
  const std::vector<char> payload = EncodePayload(op);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::vector<char> record(kLenBytes + payload.size() + kSumBytes);
  std::memcpy(record.data(), &len, kLenBytes);
  std::memcpy(record.data() + kLenBytes, payload.data(), payload.size());
  const uint64_t sum = io::durable::Fnv1a64(record.data(),
                                            kLenBytes + payload.size(), chain_);
  std::memcpy(record.data() + kLenBytes + payload.size(), &sum, kSumBytes);
  S2_RETURN_NOT_OK(
      io::WriteExactAt(file_.get(), record.data(), record.size(), tail_));
  S2_RETURN_NOT_OK(file_->Sync());
  // In-memory state advances only after the I/O succeeded, so a failed
  // append is retryable verbatim and never acknowledged.
  tail_ += record.size();
  chain_ = sum;
  ++record_count_;
  return Status::OK();
}

Result<size_t> MonitorWal::RemoveObsoleteSegments(uint64_t keep_from) {
  return io::walseg::RemoveSegmentsBelow(env_, &segments_, keep_from);
}

Result<std::vector<io::walseg::SegmentInfo>> MonitorWal::ListSegments(
    io::Env* env, const std::string& path) {
  if (env == nullptr) env = io::Env::Default();
  return io::walseg::ListSegments(env, path, kMagic, kSegMagic);
}

}  // namespace s2::monitor
