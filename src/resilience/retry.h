#ifndef S2_RESILIENCE_RETRY_H_
#define S2_RESILIENCE_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "common/result.h"
#include "common/rng.h"

namespace s2::resilience {

/// How transient failures are retried.
///
/// Attempt k (0-based) sleeps `base_backoff * 2^k`, capped at `max_backoff`,
/// then multiplied by a jitter factor uniform in [1 - jitter, 1 + jitter]
/// drawn from a seeded `s2::Rng` — deterministic per policy instance, and
/// decorrelated across instances via the seed. Only statuses for which
/// `s2::IsRetryable` holds (kIoTransient, kUnavailable) are retried; hard
/// errors, corruption and semantic failures propagate immediately.
struct RetryPolicy {
  /// Total tries including the first (so 3 = one call + two retries).
  int max_attempts = 3;
  std::chrono::microseconds base_backoff{100};
  std::chrono::microseconds max_backoff{10'000};
  /// Jitter half-width in [0, 1); 0 disables jitter.
  double jitter = 0.25;
  uint64_t seed = 42;
};

/// Outcome counters of one `Retrier` (snapshot, not live).
struct RetryStats {
  uint64_t attempts = 0;  ///< Total calls issued, including first tries.
  uint64_t retries = 0;   ///< Calls that were re-issues after a transient.
  uint64_t giveups = 0;   ///< Operations that exhausted max_attempts.
};

/// Executes operations under a `RetryPolicy`.
///
/// The sleeper is injectable so unit tests and fault sweeps run backoff
/// logic at full speed; the default sleeper is
/// `std::this_thread::sleep_for`. Not thread-safe (the jitter rng mutates);
/// use one instance per thread, or external locking.
class Retrier {
 public:
  using Sleeper = std::function<void(std::chrono::microseconds)>;

  explicit Retrier(RetryPolicy policy);
  Retrier(RetryPolicy policy, Sleeper sleeper);

  /// Runs `op` until it succeeds, fails non-retryably, or exhausts
  /// `max_attempts`. Returns the last status.
  Status Run(const std::function<Status()>& op);

  /// The backoff before retry number `retry_index` (0-based), jitter applied.
  std::chrono::microseconds NextBackoff(int retry_index);

  const RetryStats& stats() const { return stats_; }
  void ResetStats() { stats_ = RetryStats{}; }

 private:
  RetryPolicy policy_;
  Sleeper sleeper_;
  s2::Rng rng_;
  RetryStats stats_;
};

/// Convenience wrapper for value-returning operations.
template <typename T>
Result<T> RunWithRetry(Retrier& retrier,
                       const std::function<Result<T>()>& op) {
  Result<T> out = Status::Internal("retry loop never ran");
  Status last = retrier.Run([&]() {
    out = op();
    return out.status();
  });
  if (!last.ok()) return last;
  return out;
}

}  // namespace s2::resilience

#endif  // S2_RESILIENCE_RETRY_H_
