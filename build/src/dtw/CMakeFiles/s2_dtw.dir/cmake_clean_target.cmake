file(REMOVE_RECURSE
  "libs2_dtw.a"
)
