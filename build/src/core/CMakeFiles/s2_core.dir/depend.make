# Empty dependencies file for s2_core.
# This may be replaced when dependencies are built.
