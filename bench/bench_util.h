#ifndef S2_BENCH_BENCH_UTIL_H_
#define S2_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harnesses: ASCII plotting, small table
// printers, corpus preparation and wall-clock timing. Each bench binary
// reproduces one table/figure of the paper and prints the corresponding
// rows/series to stdout.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "dsp/stats.h"
#include "querylog/corpus_generator.h"
#include "timeseries/calendar.h"
#include "timeseries/time_series.h"

namespace s2::bench {

/// Renders `values` as a one-line unicode sparkline of `width` columns.
inline std::string Sparkline(const std::vector<double>& values, size_t width = 96) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  if (values.empty()) return "";
  width = std::min(width, values.size());
  const size_t bucket = (values.size() + width - 1) / width;
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo > 0 ? hi - lo : 1.0;
  std::string out;
  for (size_t start = 0; start < values.size(); start += bucket) {
    double max_in_bucket = values[start];
    for (size_t i = start; i < std::min(values.size(), start + bucket); ++i) {
      max_in_bucket = std::max(max_in_bucket, values[i]);
    }
    const int level =
        static_cast<int>(std::round((max_in_bucket - lo) / span * 8.0));
    out += kLevels[std::clamp(level, 0, 8)];
  }
  return out;
}

/// Renders a multi-row ASCII chart (height rows) of `values`, with an
/// optional horizontal `threshold` line drawn as '-'.
inline void PrintAsciiChart(const std::vector<double>& values, size_t height = 12,
                            size_t width = 96, double threshold = NAN) {
  if (values.empty()) return;
  width = std::min(width, values.size());
  const size_t bucket = (values.size() + width - 1) / width;
  std::vector<double> cols;
  for (size_t start = 0; start < values.size(); start += bucket) {
    double m = values[start];
    for (size_t i = start; i < std::min(values.size(), start + bucket); ++i) {
      m = std::max(m, values[i]);
    }
    cols.push_back(m);
  }
  double lo = *std::min_element(cols.begin(), cols.end());
  double hi = *std::max_element(cols.begin(), cols.end());
  if (!std::isnan(threshold)) {
    lo = std::min(lo, threshold);
    hi = std::max(hi, threshold);
  }
  const double span = hi - lo > 0 ? hi - lo : 1.0;
  for (size_t row = 0; row < height; ++row) {
    const double level = hi - span * static_cast<double>(row) / (height - 1);
    std::string line;
    const bool is_threshold_row =
        !std::isnan(threshold) &&
        std::abs(level - threshold) <= span / (2.0 * (height - 1));
    for (double c : cols) {
      if (c >= level) {
        line += "#";
      } else if (is_threshold_row) {
        line += "-";
      } else {
        line += " ";
      }
    }
    std::printf("  %10.3f |%s\n", level, line.c_str());
  }
}

/// Month tick ruler for one year of daily data, aligned to `width` columns.
inline void PrintMonthRuler(size_t n_days, size_t width = 96) {
  std::string ruler(std::min(width, n_days), ' ');
  const char* kMonths = "JFMAMJJASOND";
  for (int m = 0; m < 12; ++m) {
    const size_t day = static_cast<size_t>(m * 30.4);
    const size_t col = day * ruler.size() / n_days;
    if (col < ruler.size()) ruler[col] = kMonths[m];
  }
  std::printf("  %10s |%s|\n", "", ruler.c_str());
}

/// Standardizes every series of a corpus into a row matrix.
inline std::vector<std::vector<double>> StandardizedRows(const ts::Corpus& corpus) {
  std::vector<std::vector<double>> rows;
  rows.reserve(corpus.size());
  for (const auto& series : corpus.series()) {
    rows.push_back(dsp::Standardize(series.values));
  }
  return rows;
}

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Simple "--flag value" argument lookup with a default.
inline size_t ArgSize(int argc, char** argv, const std::string& flag, size_t def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return static_cast<size_t>(std::stoull(argv[i + 1]));
  }
  return def;
}

inline bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Minimal JSON value/object builder for the machine-readable BENCH_*.json
/// result files (ROADMAP: record the perf trajectory, not just stdout
/// tables). Insertion-ordered, no external deps; numbers print with enough
/// precision to round-trip doubles.
class Json {
 public:
  static Json Number(double v) {
    Json j;
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    j.repr_ = buffer;
    return j;
  }
  static Json Number(uint64_t v) {
    Json j;
    j.repr_ = std::to_string(v);
    return j;
  }
  static Json String(const std::string& s) {
    std::string escaped;
    escaped.reserve(s.size() + 2);
    escaped.push_back('"');
    for (char c : s) {
      switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        default: escaped.push_back(c);
      }
    }
    escaped.push_back('"');
    Json j;
    j.repr_ = std::move(escaped);
    return j;
  }
  static Json Object() {
    Json j;
    j.is_object_ = true;
    return j;
  }
  static Json Array() {
    Json j;
    j.is_array_ = true;
    return j;
  }

  Json& Add(const std::string& key, Json value) {
    members_.emplace_back(key, std::move(value));
    return *this;
  }
  Json& Add(const std::string& key, double v) { return Add(key, Number(v)); }
  Json& Add(const std::string& key, uint64_t v) { return Add(key, Number(v)); }
  Json& Add(const std::string& key, const char* v) {
    return Add(key, String(v));
  }
  Json& Push(Json value) {
    members_.emplace_back("", std::move(value));
    return *this;
  }

  std::string ToString(int indent = 0) const {
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    const std::string inner(static_cast<size_t>(indent + 1) * 2, ' ');
    if (!is_object_ && !is_array_) return repr_;
    std::string out = is_object_ ? "{" : "[";
    for (size_t i = 0; i < members_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += inner;
      if (is_object_) out += "\"" + members_[i].first + "\": ";
      out += members_[i].second.ToString(indent + 1);
    }
    if (!members_.empty()) out += "\n" + pad;
    out += is_object_ ? "}" : "]";
    return out;
  }

 private:
  std::string repr_;
  bool is_object_ = false;
  bool is_array_ = false;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Writes `json` to `path` (plus a trailing newline); exits on I/O failure
/// like every other bench fatal.
inline void WriteJsonFile(const std::string& path, const Json& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  const std::string text = json.ToString();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\n  wrote %s\n", path.c_str());
}

/// "--flag value" string lookup with a default, for JSON output paths.
inline std::string ArgString(int argc, char** argv, const std::string& flag,
                             const std::string& def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return def;
}

}  // namespace s2::bench

#endif  // S2_BENCH_BENCH_UTIL_H_
