// Automatic period mining across a corpus (Section 5): run the
// exponential-threshold period detector over every query and aggregate
// which periodicities dominate the workload — the kind of analysis the
// paper motivates for search-engine capacity planning ("enforce higher
// redundancy ... during the days that a higher query load is expected").
//
//   ./build/examples/period_miner [corpus_size]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "period/period_detector.h"
#include "querylog/corpus_generator.h"

using namespace s2;

namespace {

std::string FamilyOf(const std::string& name) {
  const size_t underscore = name.find('_');
  return underscore == std::string::npos ? name : name.substr(0, underscore);
}

// Buckets a period into a human label.
std::string PeriodBucket(double period) {
  if (period < 4.5) return "half-week (~3.5d)";
  if (period < 10) return "weekly (~7d)";
  if (period < 20) return "biweekly (~14d)";
  if (period < 45) return "monthly (~30d)";
  if (period < 150) return "quarterly";
  return "annual/trend";
}

}  // namespace

int main(int argc, char** argv) {
  const size_t corpus_size = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
  qlog::CorpusSpec spec;
  spec.num_series = corpus_size;
  spec.n_days = 1024;
  spec.seed = 55;
  std::printf("mining periods in %zu series ...\n", spec.num_series);
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) return 1;

  period::PeriodDetector detector;
  std::map<std::string, size_t> bucket_counts;
  std::map<std::string, std::map<std::string, size_t>> family_buckets;
  size_t with_periods = 0;
  for (const auto& series : corpus->series()) {
    auto hits = detector.Detect(series.values);
    if (!hits.ok()) continue;
    if (!hits->empty()) ++with_periods;
    const std::string family = FamilyOf(series.name);
    for (const auto& hit : *hits) {
      const std::string bucket = PeriodBucket(hit.period);
      ++bucket_counts[bucket];
      ++family_buckets[family][bucket];
    }
  }

  std::printf("\n%zu of %zu queries show at least one significant period\n",
              with_periods, corpus->size());
  std::printf("\ndominant periodicities across the workload:\n");
  std::vector<std::pair<std::string, size_t>> sorted(bucket_counts.begin(),
                                                     bucket_counts.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [bucket, count] : sorted) {
    std::printf("  %-20s %6zu hits  %s\n", bucket.c_str(), count,
                std::string(std::min<size_t>(50, count / 20), '#').c_str());
  }

  std::printf("\nper family:\n");
  for (const auto& [family, buckets] : family_buckets) {
    std::printf("  %-12s", family.c_str());
    for (const auto& [bucket, count] : buckets) {
      std::printf("  %s:%zu", bucket.c_str(), count);
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading: weekly archetypes drive the 7d and 3.5d harmonics, monthly "
      "archetypes the ~30d bucket — the signal a capacity planner would use "
      "to schedule per-class server redundancy.\n");
  return 0;
}
