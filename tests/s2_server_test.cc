#include "service/s2_server.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "querylog/corpus_generator.h"

namespace s2::service {
namespace {

core::S2Engine MakeEngine(size_t num_series = 96, size_t n_days = 256) {
  qlog::CorpusSpec spec;
  spec.num_series = num_series;
  spec.n_days = n_days;
  spec.seed = 11;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  auto engine = core::S2Engine::Build(std::move(corpus).ValueOrDie(), options);
  EXPECT_TRUE(engine.ok());
  return std::move(engine).ValueOrDie();
}

std::unique_ptr<S2Server> MakeServer(size_t threads = 4,
                                     size_t cache_capacity = 256,
                                     size_t queue_capacity = 256) {
  S2Server::Options options;
  options.scheduler.threads = threads;
  options.scheduler.queue_capacity = queue_capacity;
  options.cache_capacity = cache_capacity;
  return S2Server::Create(MakeEngine(), options);
}

QueryRequest Request(RequestKind kind, ts::SeriesId id, size_t k = 5) {
  QueryRequest request;
  request.kind = kind;
  request.id = id;
  request.k = k;
  return request;
}

TEST(S2ServerTest, ExecuteMatchesDirectEngineCalls) {
  auto server = MakeServer();
  const auto& engine = server->engine();
  for (ts::SeriesId id = 0; id < 10; ++id) {
    QueryResponse response = server->Execute(Request(RequestKind::kSimilarTo, id));
    ASSERT_TRUE(response.status.ok());
    auto direct = engine.SimilarTo(id, 5);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(response.neighbors.size(), direct->size());
    for (size_t i = 0; i < direct->size(); ++i) {
      EXPECT_EQ(response.neighbors[i].id, (*direct)[i].id);
      EXPECT_DOUBLE_EQ(response.neighbors[i].distance, (*direct)[i].distance);
    }
  }
}

TEST(S2ServerTest, AllRequestKindsSucceed) {
  auto server = MakeServer();
  for (RequestKind kind :
       {RequestKind::kSimilarTo, RequestKind::kSimilarToDtw,
        RequestKind::kPeriodsOf, RequestKind::kBurstsOf,
        RequestKind::kQueryByBurst}) {
    QueryResponse response = server->Execute(Request(kind, 3));
    EXPECT_TRUE(response.status.ok()) << RequestKindToString(kind) << ": "
                                      << response.status.ToString();
  }
}

TEST(S2ServerTest, BadIdPropagatesEngineError) {
  auto server = MakeServer();
  QueryResponse response =
      server->Execute(Request(RequestKind::kSimilarTo, 1u << 20));
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
}

TEST(S2ServerTest, CacheHitBypassesEngineEntirely) {
  auto server = MakeServer();
  const QueryRequest request = Request(RequestKind::kSimilarTo, 1);

  QueryResponse cold = server->Execute(request);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.cache_hit);

  // A cache hit must not touch the VP-tree or the sequence store: the
  // engine-call counter and the store's read counter stay frozen.
  const uint64_t engine_calls =
      server->metrics().counter("server_engine_calls")->value();
  const uint64_t store_reads = server->engine().source()->read_count();
  QueryResponse warm = server->Execute(request);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(server->metrics().counter("server_engine_calls")->value(),
            engine_calls);
  EXPECT_EQ(server->engine().source()->read_count(), store_reads);
  ASSERT_EQ(warm.neighbors.size(), cold.neighbors.size());
  for (size_t i = 0; i < warm.neighbors.size(); ++i) {
    EXPECT_EQ(warm.neighbors[i].id, cold.neighbors[i].id);
  }
  EXPECT_EQ(server->cache().hits(), 1u);
}

TEST(S2ServerTest, AddSeriesInvalidatesCache) {
  auto server = MakeServer();
  const QueryRequest request = Request(RequestKind::kSimilarTo, 0);
  ASSERT_TRUE(server->Execute(request).status.ok());
  ASSERT_TRUE(server->Execute(request).cache_hit);

  const size_t n = server->engine().corpus().at(0).size();
  Rng rng(123);
  ts::TimeSeries fresh;
  fresh.name = "freshly added";
  fresh.values.reserve(n);
  for (size_t i = 0; i < n; ++i) fresh.values.push_back(rng.Uniform(0.0, 50.0));
  auto id = server->AddSeries(std::move(fresh));
  ASSERT_TRUE(id.ok());

  QueryResponse after = server->Execute(request);
  EXPECT_FALSE(after.cache_hit);  // invalidated, recomputed
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(server->metrics().counter("cache_invalidations")->value(), 1u);
  // The new series is queryable.
  EXPECT_TRUE(server->Execute(Request(RequestKind::kSimilarTo, *id)).status.ok());
}

TEST(S2ServerTest, ConcurrentSubmissionsMatchSingleThreadedGroundTruth) {
  // Window sized to hold every submission: this test checks correctness of
  // concurrent answers, not backpressure.
  auto server =
      MakeServer(/*threads=*/4, /*cache_capacity=*/0, /*queue_capacity=*/4096);
  const auto& engine = server->engine();
  const size_t corpus_size = engine.corpus().size();

  // Ground truth, computed single-threaded before any concurrency.
  std::vector<std::vector<index::Neighbor>> expected(corpus_size);
  for (ts::SeriesId id = 0; id < corpus_size; ++id) {
    auto direct = engine.SimilarTo(id, 5);
    ASSERT_TRUE(direct.ok());
    expected[id] = std::move(direct).value();
  }

  constexpr int kRounds = 4;
  std::vector<RequestTicket> tickets;
  tickets.reserve(corpus_size * kRounds);
  std::vector<ts::SeriesId> ids;
  for (int round = 0; round < kRounds; ++round) {
    for (ts::SeriesId id = 0; id < corpus_size; ++id) {
      auto ticket = server->Submit(Request(RequestKind::kSimilarTo, id));
      ASSERT_TRUE(ticket.ok());
      tickets.push_back(std::move(*ticket));
      ids.push_back(id);
    }
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    QueryResponse response = tickets[i].Get();
    ASSERT_TRUE(response.status.ok());
    const std::vector<index::Neighbor>& truth = expected[ids[i]];
    ASSERT_EQ(response.neighbors.size(), truth.size());
    for (size_t j = 0; j < truth.size(); ++j) {
      EXPECT_EQ(response.neighbors[j].id, truth[j].id);
      EXPECT_DOUBLE_EQ(response.neighbors[j].distance, truth[j].distance);
    }
  }
}

TEST(S2ServerTest, ConcurrentMixedKindsAndIngestStayCoherent) {
  auto server = MakeServer(/*threads=*/4, /*cache_capacity=*/128);
  const size_t n = server->engine().corpus().at(0).size();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(7);
    for (int i = 0; i < 5 && !stop.load(); ++i) {
      ts::TimeSeries series;
      series.name = "ingest " + std::to_string(i);
      for (size_t j = 0; j < n; ++j) {
        series.values.push_back(rng.Uniform(0.0, 20.0));
      }
      ASSERT_TRUE(server->AddSeries(std::move(series)).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  const RequestKind kinds[] = {RequestKind::kSimilarTo, RequestKind::kPeriodsOf,
                               RequestKind::kBurstsOf,
                               RequestKind::kQueryByBurst};
  std::vector<RequestTicket> tickets;
  for (int i = 0; i < 200; ++i) {
    auto ticket = server->Submit(
        Request(kinds[i % 4], static_cast<ts::SeriesId>(i % 50)));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(*ticket));
  }
  for (RequestTicket& ticket : tickets) {
    EXPECT_TRUE(ticket.Get().status.ok());
  }
  stop.store(true);
  writer.join();
  server->Shutdown();
}

TEST(S2ServerTest, MetricsTextSnapshotContainsServingCounters) {
  auto server = MakeServer();
  auto ticket = server->Submit(Request(RequestKind::kSimilarTo, 2));
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(ticket->Get().status.ok());
  const std::string text = server->MetricsText();
  EXPECT_NE(text.find("server_accepted 1"), std::string::npos) << text;
  EXPECT_NE(text.find("server_completed 1"), std::string::npos) << text;
  EXPECT_NE(text.find("server_latency_p95_us"), std::string::npos) << text;
  EXPECT_NE(text.find("cache_misses 1"), std::string::npos) << text;
}

}  // namespace
}  // namespace s2::service
