file(REMOVE_RECURSE
  "CMakeFiles/burst_detector_test.dir/burst_detector_test.cc.o"
  "CMakeFiles/burst_detector_test.dir/burst_detector_test.cc.o.d"
  "burst_detector_test"
  "burst_detector_test.pdb"
  "burst_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
