#ifndef S2_DSP_MOVING_AVERAGE_H_
#define S2_DSP_MOVING_AVERAGE_H_

#include <vector>

#include "common/result.h"

namespace s2::dsp {

/// Trailing (causal) moving average with window `w`.
///
/// Output has the same length as the input; entry `i` is the mean of
/// `x[max(0, i-w+1) .. i]`, i.e. the window is clipped at the start of the
/// sequence so the early entries average over the available prefix. This is
/// the `MA_w` used by the paper's burst detector (Section 6.1).
///
/// Returns InvalidArgument if `w == 0` or `x` is empty.
Result<std::vector<double>> TrailingMovingAverage(const std::vector<double>& x,
                                                  size_t w);

/// Centered moving average with window `w` (clipped at both edges). Useful
/// for smoothing in visual/diagnostic output.
Result<std::vector<double>> CenteredMovingAverage(const std::vector<double>& x,
                                                  size_t w);

}  // namespace s2::dsp

#endif  // S2_DSP_MOVING_AVERAGE_H_
