#include "querylog/synthesizer.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "timeseries/calendar.h"

namespace s2::qlog {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

double WeeklyFactor(const QueryArchetype& a, int32_t day_index) {
  if (a.weekly.empty()) return 1.0;
  double factor = 1.0;
  const int dow = ts::DayOfWeek(day_index);
  for (const WeeklyComponent& c : a.weekly) {
    const double w = c.day_weights[static_cast<size_t>(dow)];
    factor *= 1.0 + c.amplitude * (w - 1.0);
  }
  return factor;
}

double SinusoidTerm(const QueryArchetype& a, int32_t day_index) {
  double sum = 0.0;
  for (const SinusoidComponent& c : a.sinusoids) {
    sum += c.amplitude * std::sin(kTwoPi * day_index / c.period_days + c.phase);
  }
  return sum;
}

double AnnualBurstTerm(const QueryArchetype& a, int32_t day_index) {
  if (a.annual_bursts.empty()) return 0.0;
  const int doy = ts::DayOfYear(day_index);
  const ts::Date date = ts::DayIndexToDate(day_index);
  const int year_len = ts::DaysInYear(date.year);
  double sum = 0.0;
  for (const AnnualBurstComponent& c : a.annual_bursts) {
    // Circular distance within the year so bumps near Jan 1 wrap correctly.
    double delta = doy - c.peak_day_of_year;
    if (delta > year_len / 2.0) delta -= year_len;
    if (delta < -year_len / 2.0) delta += year_len;
    if (c.sharp_drop && delta > c.width_days / 2.0) continue;
    sum += c.amplitude * std::exp(-delta * delta / (2.0 * c.width_days * c.width_days));
  }
  return sum;
}

double EventBurstTerm(const QueryArchetype& a, int32_t day_index) {
  double sum = 0.0;
  for (const EventBurstComponent& c : a.events) {
    const double delta = static_cast<double>(day_index) - c.day_index;
    if (delta < -c.rise_days || delta > 8.0 * c.decay_days) continue;
    if (delta < 0) {
      sum += c.amplitude * (1.0 + delta / c.rise_days);  // Linear ramp-up.
    } else {
      sum += c.amplitude * std::exp(-delta / c.decay_days);
    }
  }
  return sum;
}

}  // namespace

double IntensityOn(const QueryArchetype& a, int32_t day_index) {
  const double years = static_cast<double>(day_index) / 365.25;
  const double trend = 1.0 + a.trend.slope_per_year * years;
  const double multiplicative = WeeklyFactor(a, day_index) * std::max(0.0, trend);
  const double additive =
      SinusoidTerm(a, day_index) + AnnualBurstTerm(a, day_index) + EventBurstTerm(a, day_index);
  return std::max(0.0, a.base_rate * (multiplicative + additive));
}

Result<ts::TimeSeries> Synthesize(const QueryArchetype& a, int32_t start_day,
                                  size_t n_days, Rng* rng) {
  if (n_days == 0) return Status::InvalidArgument("Synthesize: n_days must be > 0");
  if (rng == nullptr) return Status::InvalidArgument("Synthesize: rng must not be null");

  ts::TimeSeries series;
  series.name = a.name;
  series.start_day = start_day;
  series.values.resize(n_days);

  double walk = 0.0;
  for (size_t i = 0; i < n_days; ++i) {
    const int32_t day = start_day + static_cast<int32_t>(i);
    double intensity = IntensityOn(a, day);
    if (a.random_walk_sigma > 0.0) {
      walk += rng->Normal(0.0, a.random_walk_sigma * a.base_rate);
      // Gentle mean reversion keeps the walk from dominating the signal.
      walk *= 0.995;
      intensity += walk;
    }
    intensity = std::max(0.0, intensity);
    double count;
    if (a.poisson_counts) {
      count = static_cast<double>(rng->Poisson(intensity));
    } else {
      count = intensity + rng->Normal(0.0, a.noise_sigma * a.base_rate);
    }
    series.values[i] = std::max(0.0, count);
  }
  return series;
}

}  // namespace s2::qlog
