#include "io/durable.h"

#include <cstring>

namespace s2::io::durable {

namespace {

struct Header {
  uint64_t generation = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
};

uint64_t HeaderChecksum(const Header& header, const void* payload) {
  uint64_t h = Fnv1a64(&header.generation, sizeof(header.generation));
  h = Fnv1a64(&header.payload_size, sizeof(header.payload_size), h);
  return Fnv1a64(payload, static_cast<size_t>(header.payload_size), h);
}

void EncodeHeader(const Header& header, char out[kGenHeaderBytes]) {
  std::memcpy(out, kGenMagic, sizeof(kGenMagic));
  std::memcpy(out + 8, &header.generation, 8);
  std::memcpy(out + 16, &header.payload_size, 8);
  std::memcpy(out + 24, &header.checksum, 8);
}

// One validated candidate file. `is_container` is false for legacy
// (headerless) files, whose whole content is the generation-0 payload.
struct Candidate {
  std::unique_ptr<File> file;
  Header header;
  bool is_container = false;
  std::string path;  // The physical path this candidate was opened from.
};

/// Opens and fully validates one candidate path. Returns NotFound when the
/// file is absent, Corruption when present but invalid.
Result<Candidate> Validate(Env* env, const std::string& path) {
  Candidate c;
  c.path = path;
  S2_ASSIGN_OR_RETURN(c.file, env->Open(path, OpenMode::kRead));
  S2_ASSIGN_OR_RETURN(uint64_t size, c.file->Size());
  char magic[8];
  if (size >= sizeof(magic)) {
    S2_RETURN_NOT_OK(ReadExactAt(c.file.get(), magic, sizeof(magic), 0));
  }
  if (size < sizeof(magic) ||
      std::memcmp(magic, kGenMagic, sizeof(magic)) != 0) {
    // Legacy/pre-container image: the whole file is the payload. Its own
    // format parser does the integrity checking.
    c.header.generation = 0;
    c.header.payload_size = size;
    c.is_container = false;
    return c;
  }
  if (size < kGenHeaderBytes) {
    return Status::Corruption("generation container truncated in header: " +
                              path);
  }
  char raw[kGenHeaderBytes];
  S2_RETURN_NOT_OK(ReadExactAt(c.file.get(), raw, sizeof(raw), 0));
  std::memcpy(&c.header.generation, raw + 8, 8);
  std::memcpy(&c.header.payload_size, raw + 16, 8);
  std::memcpy(&c.header.checksum, raw + 24, 8);
  if (c.header.payload_size != size - kGenHeaderBytes) {
    return Status::Corruption(
        "generation container size mismatch in " + path + ": header claims " +
        std::to_string(c.header.payload_size) + " payload bytes, file holds " +
        std::to_string(size - kGenHeaderBytes));
  }
  std::vector<char> payload(static_cast<size_t>(c.header.payload_size));
  if (!payload.empty()) {
    S2_RETURN_NOT_OK(ReadExactAt(c.file.get(), payload.data(), payload.size(),
                                 kGenHeaderBytes));
  }
  const uint64_t want = HeaderChecksum(c.header, payload.data());
  if (want != c.header.checksum) {
    return Status::Corruption("generation container checksum mismatch in " +
                              path);
  }
  c.is_container = true;
  return c;
}

/// The newest valid candidate among `<path>` and `<path>.tmp`. A left-over
/// tmp with a strictly higher generation means the crash happened after the
/// new generation was fully synced but before the rename — both states are
/// committed enough to serve.
Result<Candidate> BestCandidate(Env* env, const std::string& path) {
  Result<Candidate> main = Validate(env, path);
  Result<Candidate> tmp = Validate(env, path + ".tmp");
  const bool tmp_usable = tmp.ok() && tmp->is_container;
  if (main.ok()) {
    if (tmp_usable && tmp->header.generation > main->header.generation) {
      return tmp;
    }
    return main;
  }
  if (tmp_usable) return tmp;
  return main.status();
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

Status Commit(Env* env, const std::string& path, const void* payload,
              size_t payload_size, uint64_t generation) {
  Header header;
  header.generation = generation;
  header.payload_size = payload_size;
  header.checksum = HeaderChecksum(header, payload);
  char raw[kGenHeaderBytes];
  EncodeHeader(header, raw);

  const std::string tmp = path + ".tmp";
  // A left-over tmp may hold a newer committed generation that BestCandidate
  // is serving through an open handle. Unlink it before creating the new tmp
  // so that reader keeps its inode (POSIX unlink semantics; MemEnv handles
  // share the node the same way) — truncating in place would destroy the
  // bytes under the live reader.
  S2_RETURN_NOT_OK(env->Remove(tmp));
  {
    S2_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                        env->Open(tmp, OpenMode::kTruncate));
    S2_RETURN_NOT_OK(WriteExactAt(file.get(), raw, sizeof(raw), 0));
    if (payload_size > 0) {
      S2_RETURN_NOT_OK(
          WriteExactAt(file.get(), payload, payload_size, kGenHeaderBytes));
    }
    S2_RETURN_NOT_OK(file->Sync());
  }
  S2_RETURN_NOT_OK(env->Rename(tmp, path));
  // The rename is the commit point; sync the directory so the new entry
  // itself survives power loss.
  return env->SyncDir(path);
}

uint64_t CurrentGeneration(Env* env, const std::string& path) {
  Result<Candidate> best = BestCandidate(env, path);
  if (!best.ok()) return 0;
  return best->header.generation;
}

Status CommitNext(Env* env, const std::string& path,
                  const std::vector<char>& payload) {
  const uint64_t next = CurrentGeneration(env, path) + 1;
  return Commit(env, path, payload.data(), payload.size(), next);
}

Status LoadLatest(Env* env, const std::string& path, std::vector<char>* out,
                  uint64_t* generation_out) {
  S2_ASSIGN_OR_RETURN(Candidate best, BestCandidate(env, path));
  const uint64_t offset = best.is_container ? kGenHeaderBytes : 0;
  out->resize(static_cast<size_t>(best.header.payload_size));
  if (!out->empty()) {
    S2_RETURN_NOT_OK(
        ReadExactAt(best.file.get(), out->data(), out->size(), offset));
  }
  if (generation_out != nullptr) *generation_out = best.header.generation;
  return Status::OK();
}

Result<OpenInfo> OpenLatest(Env* env, const std::string& path) {
  S2_ASSIGN_OR_RETURN(Candidate best, BestCandidate(env, path));
  OpenInfo info;
  info.payload_offset = best.is_container ? kGenHeaderBytes : 0;
  info.payload_size = best.header.payload_size;
  info.generation = best.header.generation;
  info.resolved_path = std::move(best.path);
  info.file = std::move(best.file);
  return info;
}

}  // namespace s2::io::durable
