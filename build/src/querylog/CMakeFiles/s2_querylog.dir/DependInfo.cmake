
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/querylog/archetypes.cc" "src/querylog/CMakeFiles/s2_querylog.dir/archetypes.cc.o" "gcc" "src/querylog/CMakeFiles/s2_querylog.dir/archetypes.cc.o.d"
  "/root/repo/src/querylog/corpus_generator.cc" "src/querylog/CMakeFiles/s2_querylog.dir/corpus_generator.cc.o" "gcc" "src/querylog/CMakeFiles/s2_querylog.dir/corpus_generator.cc.o.d"
  "/root/repo/src/querylog/log_aggregator.cc" "src/querylog/CMakeFiles/s2_querylog.dir/log_aggregator.cc.o" "gcc" "src/querylog/CMakeFiles/s2_querylog.dir/log_aggregator.cc.o.d"
  "/root/repo/src/querylog/synthesizer.cc" "src/querylog/CMakeFiles/s2_querylog.dir/synthesizer.cc.o" "gcc" "src/querylog/CMakeFiles/s2_querylog.dir/synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/s2_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
