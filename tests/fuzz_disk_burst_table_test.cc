#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "burst/disk_burst_table.h"
#include "common/rng.h"
#include "fuzz_util.h"

namespace s2::burst {
namespace {

// Corruption fuzzing for the two-file disk burst store: mutated heap or
// index images must surface as Status from Open/Validate/FindOverlapping —
// never as a crash or out-of-bounds access.

void BuildStore(const std::string& prefix, s2::Rng* rng) {
  std::remove((prefix + ".heap").c_str());
  std::remove((prefix + ".idx").c_str());
  auto table = DiskBurstTable::Open(prefix, 16);
  ASSERT_TRUE(table.ok());
  for (uint32_t id = 0; id < 20; ++id) {
    std::vector<BurstRegion> regions;
    int32_t day = static_cast<int32_t>(rng->UniformInt(0, 50));
    for (int b = 0; b < 3; ++b) {
      const int32_t len = static_cast<int32_t>(rng->UniformInt(1, 10));
      regions.push_back(
          BurstRegion{day, day + len - 1, rng->Uniform(1.0, 5.0)});
      day += len + static_cast<int32_t>(rng->UniformInt(1, 20));
    }
    ASSERT_TRUE((*table)->Insert(id, regions, 0).ok());
  }
  ASSERT_TRUE((*table)->Flush().ok());
  ASSERT_TRUE((*table)->Validate().ok());
}

void ExerciseMutations(const std::string& prefix, const std::string& victim,
                       uint64_t seed) {
  s2::Rng rng(seed);
  const std::vector<char> image = fuzz::ReadFileBytes(victim);
  ASSERT_FALSE(image.empty());
  for (int round = 0; round < 120; ++round) {
    fuzz::WriteFileBytes(victim, fuzz::Mutate(image, &rng));
    auto table = DiskBurstTable::Open(prefix, 16);
    if (!table.ok()) {
      EXPECT_NE(table.status().code(), StatusCode::kOk);
      continue;
    }
    (void)(*table)->Validate();
    (void)(*table)->FindOverlapping(BurstRegion{0, 200, 1.0});
    (void)(*table)->QueryByBurst({BurstRegion{10, 40, 2.0}}, 3);
  }
  // Restore the pristine image so the caller can mutate the other file.
  fuzz::WriteFileBytes(victim, image);
}

TEST(FuzzDiskBurstTable, MutatedHeapNeverCrashes) {
  s2::Rng rng(0xB025713B);
  const std::string prefix = fuzz::TempPath("s2_fuzz_burst_heap");
  BuildStore(prefix, &rng);
  ExerciseMutations(prefix, prefix + ".heap", 0xAB5EED01);
  std::remove((prefix + ".heap").c_str());
  std::remove((prefix + ".idx").c_str());
}

TEST(FuzzDiskBurstTable, MutatedIndexNeverCrashes) {
  s2::Rng rng(0xB025713C);
  const std::string prefix = fuzz::TempPath("s2_fuzz_burst_idx");
  BuildStore(prefix, &rng);
  ExerciseMutations(prefix, prefix + ".idx", 0xAB5EED02);
  std::remove((prefix + ".heap").c_str());
  std::remove((prefix + ".idx").c_str());
}

TEST(FuzzDiskBurstTable, InflatedRecordCountIsCorruption) {
  s2::Rng rng(0xB025713D);
  const std::string prefix = fuzz::TempPath("s2_fuzz_burst_count");
  BuildStore(prefix, &rng);
  // Heap page 0: magic at 0, record count u64 at 8. Declare more records
  // than the heap pages can possibly hold.
  const std::string heap_path = prefix + ".heap";
  std::vector<char> image = fuzz::ReadFileBytes(heap_path);
  const uint64_t huge = 1ull << 32;
  std::memcpy(image.data() + 8, &huge, sizeof(huge));
  fuzz::WriteFileBytes(heap_path, image);

  auto table = DiskBurstTable::Open(prefix, 16);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kCorruption);
  std::remove(heap_path.c_str());
  std::remove((prefix + ".idx").c_str());
}

TEST(FuzzDiskBurstTable, ValidateDetectsHeapIndexDisagreement) {
  s2::Rng rng(0xB025713E);
  const std::string prefix = fuzz::TempPath("s2_fuzz_burst_agree");
  BuildStore(prefix, &rng);
  // Shift record 0's start date on the heap (page 1, offset 0: series u32,
  // offset 4: start i32) without touching the index.
  const std::string heap_path = prefix + ".heap";
  std::vector<char> image = fuzz::ReadFileBytes(heap_path);
  ASSERT_GE(image.size(), 2 * storage::kPageSize);
  int32_t start = 0;
  std::memcpy(&start, image.data() + storage::kPageSize + 4, sizeof(start));
  start += 1000;
  std::memcpy(image.data() + storage::kPageSize + 4, &start, sizeof(start));
  fuzz::WriteFileBytes(heap_path, image);

  auto table = DiskBurstTable::Open(prefix, 16);
  ASSERT_TRUE(table.ok());
  const Status status = (*table)->Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  std::remove(heap_path.c_str());
  std::remove((prefix + ".idx").c_str());
}

}  // namespace
}  // namespace s2::burst
