
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cc" "src/dsp/CMakeFiles/s2_dsp.dir/fft.cc.o" "gcc" "src/dsp/CMakeFiles/s2_dsp.dir/fft.cc.o.d"
  "/root/repo/src/dsp/moving_average.cc" "src/dsp/CMakeFiles/s2_dsp.dir/moving_average.cc.o" "gcc" "src/dsp/CMakeFiles/s2_dsp.dir/moving_average.cc.o.d"
  "/root/repo/src/dsp/periodogram.cc" "src/dsp/CMakeFiles/s2_dsp.dir/periodogram.cc.o" "gcc" "src/dsp/CMakeFiles/s2_dsp.dir/periodogram.cc.o.d"
  "/root/repo/src/dsp/stats.cc" "src/dsp/CMakeFiles/s2_dsp.dir/stats.cc.o" "gcc" "src/dsp/CMakeFiles/s2_dsp.dir/stats.cc.o.d"
  "/root/repo/src/dsp/wavelet.cc" "src/dsp/CMakeFiles/s2_dsp.dir/wavelet.cc.o" "gcc" "src/dsp/CMakeFiles/s2_dsp.dir/wavelet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
