
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/corpus_io.cc" "src/storage/CMakeFiles/s2_storage.dir/corpus_io.cc.o" "gcc" "src/storage/CMakeFiles/s2_storage.dir/corpus_io.cc.o.d"
  "/root/repo/src/storage/disk_bptree.cc" "src/storage/CMakeFiles/s2_storage.dir/disk_bptree.cc.o" "gcc" "src/storage/CMakeFiles/s2_storage.dir/disk_bptree.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/storage/CMakeFiles/s2_storage.dir/pager.cc.o" "gcc" "src/storage/CMakeFiles/s2_storage.dir/pager.cc.o.d"
  "/root/repo/src/storage/sequence_store.cc" "src/storage/CMakeFiles/s2_storage.dir/sequence_store.cc.o" "gcc" "src/storage/CMakeFiles/s2_storage.dir/sequence_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/s2_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
