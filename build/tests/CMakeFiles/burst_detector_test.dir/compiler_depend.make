# Empty compiler generated dependencies file for burst_detector_test.
# This may be replaced when dependencies are built.
