#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <utility>

namespace s2::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

// Iterative radix-2 Cooley-Tukey, in place. data->size() must be a power of 2.
void FftRadix2(std::vector<Complex>* data, FftDirection direction) {
  std::vector<Complex>& a = *data;
  const size_t n = a.size();
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  const double sign = direction == FftDirection::kForward ? -1.0 : 1.0;
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        Complex u = a[i + j];
        Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein's chirp-z transform for arbitrary N, expressed as a circular
// convolution of length m (a power of two >= 2N-1) evaluated with FftRadix2.
void FftBluestein(std::vector<Complex>* data, FftDirection direction) {
  std::vector<Complex>& x = *data;
  const size_t n = x.size();
  const double sign = direction == FftDirection::kForward ? -1.0 : 1.0;

  // Chirp factors w[k] = exp(sign * j * pi * k^2 / n), so that
  // X[k] = w[k] * sum_n (x[n] w[n]) conj(w[k-n]). Computing k^2 mod 2n keeps
  // the argument small for large n.
  std::vector<Complex> chirp(n);
  for (size_t k = 0; k < n; ++k) {
    const uint64_t k2 = (static_cast<uint64_t>(k) * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  size_t m = 1;
  while (m < 2 * n - 1) m <<= 1;

  std::vector<Complex> a(m, Complex(0, 0));
  std::vector<Complex> b(m, Complex(0, 0));
  for (size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (size_t k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(chirp[k]);

  FftRadix2(&a, FftDirection::kForward);
  FftRadix2(&b, FftDirection::kForward);
  for (size_t k = 0; k < m; ++k) a[k] *= b[k];
  FftRadix2(&a, FftDirection::kInverse);

  const double inv_m = 1.0 / static_cast<double>(m);
  for (size_t k = 0; k < n; ++k) x[k] = a[k] * inv_m * chirp[k];
}

}  // namespace

Status Fft(std::vector<Complex>* data, FftDirection direction) {
  if (data == nullptr || data->empty()) {
    return Status::InvalidArgument("Fft: input must be non-empty");
  }
  if (IsPowerOfTwo(data->size())) {
    FftRadix2(data, direction);
  } else {
    FftBluestein(data, direction);
  }
  return Status::OK();
}

Result<std::vector<Complex>> ForwardDft(const std::vector<double>& x) {
  if (x.empty()) return Status::InvalidArgument("ForwardDft: input must be non-empty");
  std::vector<Complex> spectrum(x.begin(), x.end());
  S2_RETURN_NOT_OK(Fft(&spectrum, FftDirection::kForward));
  const double norm = 1.0 / std::sqrt(static_cast<double>(x.size()));
  for (Complex& c : spectrum) c *= norm;
  return spectrum;
}

Result<std::vector<double>> InverseDftReal(const std::vector<Complex>& spectrum) {
  if (spectrum.empty()) {
    return Status::InvalidArgument("InverseDftReal: input must be non-empty");
  }
  std::vector<Complex> work = spectrum;
  S2_RETURN_NOT_OK(Fft(&work, FftDirection::kInverse));
  // ForwardDft scaled by 1/sqrt(N); the unnormalized inverse contributes a
  // factor of N, so dividing by sqrt(N) restores the original signal.
  const double norm = 1.0 / std::sqrt(static_cast<double>(work.size()));
  std::vector<double> x(work.size());
  for (size_t i = 0; i < work.size(); ++i) x[i] = work[i].real() * norm;
  return x;
}

std::vector<Complex> ForwardDftDirect(const std::vector<double>& x) {
  const size_t n = x.size();
  std::vector<Complex> spectrum(n);
  const double norm = 1.0 / std::sqrt(static_cast<double>(n));
  for (size_t k = 0; k < n; ++k) {
    Complex sum(0, 0);
    for (size_t i = 0; i < n; ++i) {
      const double angle = -2.0 * kPi * static_cast<double>(k) *
                           static_cast<double>(i) / static_cast<double>(n);
      sum += x[i] * Complex(std::cos(angle), std::sin(angle));
    }
    spectrum[k] = sum * norm;
  }
  return spectrum;
}

}  // namespace s2::dsp
