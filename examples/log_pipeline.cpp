// End-to-end pipeline from *raw* search-engine log records to the mining
// engine — the paper's full data path: "Using the query logs, we build a
// time series for each query word or phrase where the elements of the time
// series are the number of times that a query is issued on a day."
//
//   raw (timestamp, query) records
//     -> LogAggregator (streaming daily aggregation, volume cutoff)
//     -> Corpus -> persisted to disk (corpus_io)
//     -> reloaded -> S2Engine (similarity / periods / bursts)
//
//   ./build/examples/log_pipeline

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "core/s2_engine.h"
#include "querylog/archetypes.h"
#include "querylog/corpus_generator.h"
#include "querylog/log_aggregator.h"
#include "storage/corpus_io.h"
#include "timeseries/calendar.h"

using namespace s2;

int main() {
  Rng rng(314);
  const size_t n_days = 512;

  // 1. Produce a raw log stream for a handful of queries. A real deployment
  //    would feed its own log tail into the aggregator instead.
  qlog::LogAggregator aggregator;
  uint64_t total_records = 0;
  for (const auto& archetype :
       {qlog::MakeCinema(), qlog::MakeEaster(), qlog::MakeFullMoon(),
        qlog::MakeNordstrom(), qlog::MakeHalloween()}) {
    auto log = qlog::GenerateLog(archetype, 0, n_days, &rng);
    if (!log.ok()) {
      std::printf("log generation failed: %s\n", log.status().ToString().c_str());
      return 1;
    }
    total_records += log->size();
    if (auto status = aggregator.AddAll(*log); !status.ok()) {
      std::printf("aggregation failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  // A low-volume query that the cutoff should drop.
  qlog::QueryArchetype rare;
  rare.name = "obscure query";
  rare.base_rate = 0.2;
  auto rare_log = qlog::GenerateLog(rare, 0, n_days, &rng);
  if (rare_log.ok()) {
    total_records += rare_log->size();
    (void)aggregator.AddAll(*rare_log);
  }

  std::printf("aggregated %llu raw records into %zu distinct queries\n",
              static_cast<unsigned long long>(total_records),
              aggregator.num_queries());

  // 2. Materialize the daily-count corpus with a volume cutoff (the S2 tool
  //    works on the top sequences by volume), persist it, reload it.
  auto corpus = aggregator.BuildCorpus(0, static_cast<int32_t>(n_days) - 1,
                                       /*min_total_count=*/1000);
  if (!corpus.ok()) return 1;
  std::printf("corpus after volume cutoff: %zu series of %zu days\n",
              corpus->size(), corpus->at(0).size());

  const std::string path =
      (std::filesystem::temp_directory_path() / "s2_pipeline_corpus.bin").string();
  if (auto status = storage::WriteCorpus(path, *corpus); !status.ok()) return 1;
  auto reloaded = storage::ReadCorpus(path);
  if (!reloaded.ok()) return 1;
  std::printf("corpus persisted to %s and reloaded\n", path.c_str());

  // 3. Mine it.
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 2;
  auto engine = core::S2Engine::Build(std::move(*reloaded), options);
  if (!engine.ok()) {
    std::printf("engine build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  for (const char* name : {"cinema", "full moon"}) {
    auto id = engine->FindByName(name);
    if (!id.ok()) continue;
    auto periods = engine->FindPeriods(*id);
    if (!periods.ok() || periods->empty()) continue;
    std::printf("'%s': dominant period %.2f days\n", name,
                periods->front().period);
  }
  auto halloween = engine->FindByName("halloween");
  if (halloween.ok()) {
    auto bursts = engine->BurstsOf(*halloween, core::BurstHorizon::kLongTerm);
    if (bursts.ok() && !bursts->empty()) {
      std::printf("'halloween': first burst [%s .. %s]\n",
                  ts::FormatDayIndex(bursts->front().start).c_str(),
                  ts::FormatDayIndex(bursts->front().end).c_str());
    }
  }
  std::remove(path.c_str());
  return 0;
}
