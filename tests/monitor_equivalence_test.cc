// The acceptance bar for s2::monitor (ISSUE 6): the fired alert stream —
// ids, kinds, sequence numbers, trigger values — must be bit-identical
// across shard counts {1,2,3,8}, agree within 1e-6 between exact and
// incremental feature maintenance (bitwise in practice: evaluation reads
// only the committed raw window and the exactly-recomputed standardized
// row), and survive a crash-point sweep: subscriptions registered before
// the crash re-arm with their exact hysteresis state after WAL replay, and
// exactly the acknowledged alerts' sequence range stays retired.

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/s2_engine.h"
#include "io/fault_env.h"
#include "io/mem_env.h"
#include "monitor/subscription.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"

namespace s2::monitor {
namespace {

constexpr size_t kNumSeries = 24;
constexpr size_t kDays = 64;
constexpr uint64_t kSeed = 515;

ts::Corpus MakeCorpus() {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = kSeed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions() {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 4;
  return options;
}

service::S2Server::Options ServerOptions(size_t shards) {
  service::S2Server::Options options;
  options.scheduler.threads = 1;
  options.cache_capacity = 0;
  options.compaction_threshold = 0;  // Manual compaction only.
  options.shards = shards;
  return options;
}

/// Registers the standing mix every equivalence run watches: two burst
/// subscriptions, one periodicity tracker and one similarity watch whose
/// query is another series' raw row. Returns the assigned ids (0..3).
void SetupSubscriptions(service::S2Server* server, const ts::Corpus& corpus) {
  Subscription burst0;
  burst0.kind = SubscriptionKind::kBurstThreshold;
  burst0.series = 0;
  burst0.burst.window = 4;
  burst0.burst.enter_ratio = 1.3;
  burst0.burst.exit_ratio = 1.1;
  auto id = server->Subscribe(burst0);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 0u);

  Subscription burst5;
  burst5.kind = SubscriptionKind::kBurstThreshold;
  burst5.series = 5;
  burst5.burst.window = 6;
  burst5.burst.enter_ratio = 1.5;
  burst5.burst.exit_ratio = 1.2;
  id = server->Subscribe(burst5);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);

  Subscription periodic;
  periodic.kind = SubscriptionKind::kPeriodicityChange;
  periodic.series = 3;
  id = server->Subscribe(periodic);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 2u);

  // The query is the watched series' own current row: distance 0 arms the
  // watch silently inside the ball, and the first appends that reshape the
  // window push it out — a guaranteed kSimilarityLeave.
  Subscription similar;
  similar.kind = SubscriptionKind::kSimilarityWatch;
  similar.series = 7;
  similar.similarity.query = corpus.at(7).values;
  similar.similarity.radius = 2.0;
  id = server->Subscribe(similar);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 3u);
}

/// The deterministic append schedule: the four watched series take turns,
/// with the amplitude regime flipping every 16 steps so moving averages
/// (and standardized rows) swing across every subscription's thresholds.
/// A mid-schedule compaction checks alerts don't care about index tiers.
void DriveAppends(service::S2Server* server) {
  Rng rng(kSeed + 1);
  const ts::SeriesId targets[] = {0, 5, 3, 7};
  for (size_t step = 0; step < 96; ++step) {
    const ts::SeriesId id = targets[step % 4];
    const bool hot = (step / 16) % 2 == 1;
    // The generated corpus' daily counts sit in the low hundreds; the hot
    // regime has to clear them by an order of magnitude to move 4-to-6-day
    // moving averages across the enter ratios.
    const double value =
        hot ? rng.Uniform(3000.0, 5000.0) : rng.Uniform(0.0, 10.0);
    ASSERT_TRUE(server->AppendPoint(id, value).ok()) << "step " << step;
    if (step == 47) ASSERT_TRUE(server->Compact().ok());
  }
}

void ExpectSameAlerts(const std::vector<Alert>& want,
                      const std::vector<Alert>& got, const std::string& what,
                      double value_tolerance = 0.0) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    const std::string where = what + " alert " + std::to_string(i);
    EXPECT_EQ(want[i].seq, got[i].seq) << where;
    EXPECT_EQ(want[i].subscription, got[i].subscription) << where;
    EXPECT_EQ(want[i].kind, got[i].kind) << where;
    EXPECT_EQ(want[i].series, got[i].series) << where;
    EXPECT_EQ(want[i].day, got[i].day) << where;
    EXPECT_EQ(want[i].bin, got[i].bin) << where;
    if (value_tolerance == 0.0) {
      EXPECT_EQ(want[i].value, got[i].value) << where;
      EXPECT_EQ(want[i].threshold, got[i].threshold) << where;
    } else {
      EXPECT_NEAR(want[i].value, got[i].value, value_tolerance) << where;
      EXPECT_NEAR(want[i].threshold, got[i].threshold, value_tolerance) << where;
    }
  }
}

TEST(MonitorEquivalenceTest, AlertStreamIsBitIdenticalAcrossShardCounts) {
  std::vector<Alert> reference;
  for (const size_t shards : {1u, 2u, 3u, 8u}) {
    const ts::Corpus corpus = MakeCorpus();
    auto server = service::S2Server::Build(MakeCorpus(), EngineOptions(),
                                           ServerOptions(shards));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    SetupSubscriptions(server->get(), corpus);
    DriveAppends(server->get());

    const std::vector<Alert> alerts = (*server)->PollAlerts(10000);
    ASSERT_FALSE(alerts.empty()) << "schedule fired nothing at " << shards;
    const auto info = (*server)->monitor_info();
    EXPECT_EQ(info.active_subscriptions, 4u);
    EXPECT_EQ(info.next_seq, alerts.back().seq + 1);
    EXPECT_EQ(info.alerts_dropped, 0u);

    if (shards == 1) {
      reference = alerts;
      // The mix must actually exercise more than one subscription kind.
      bool burst = false, similarity = false;
      for (const Alert& alert : alerts) {
        burst |= alert.kind == AlertKind::kBurstBegin ||
                 alert.kind == AlertKind::kBurstEnd;
        similarity |= alert.kind == AlertKind::kSimilarityEnter ||
                      alert.kind == AlertKind::kSimilarityLeave;
      }
      EXPECT_TRUE(burst) << "no burst transitions fired";
      EXPECT_TRUE(similarity) << "no similarity transitions fired";
    } else {
      ExpectSameAlerts(reference, alerts,
                       "shards " + std::to_string(shards));
    }
  }
}

TEST(MonitorEquivalenceTest, ExactAndIncrementalMaintenanceAgree) {
  const ts::Corpus corpus = MakeCorpus();
  auto exact = service::S2Server::Build(MakeCorpus(), EngineOptions(),
                                        ServerOptions(1));
  ASSERT_TRUE(exact.ok());
  core::S2Engine::Options fast_options = EngineOptions();
  fast_options.stream.incremental_maintenance = true;
  auto fast =
      service::S2Server::Build(MakeCorpus(), fast_options, ServerOptions(1));
  ASSERT_TRUE(fast.ok());

  SetupSubscriptions(exact->get(), corpus);
  SetupSubscriptions(fast->get(), corpus);
  DriveAppends(exact->get());
  DriveAppends(fast->get());

  const std::vector<Alert> want = (*exact)->PollAlerts(10000);
  const std::vector<Alert> got = (*fast)->PollAlerts(10000);
  ASSERT_FALSE(want.empty());
  ExpectSameAlerts(want, got, "incremental", /*value_tolerance=*/1e-6);
}

// --- Crash-point sweep -----------------------------------------------------

/// The fixed verb schedule of the crash sweep. Executes verbs in order,
/// stopping at the first failure (the crash), and returns how many were
/// acknowledged — a shadow run replays exactly that prefix. Appends drive
/// series 0 across its burst thresholds twice, with the acknowledgement
/// landing between the two transition pairs so replay must re-fire the
/// unacked suffix and keep the acked range retired. ("Transition pairs":
/// each hot/cold swing fires a begin and an end.)
size_t DriveCrashSchedule(service::S2Server* server, const ts::Corpus& corpus,
                          size_t max_verbs) {
  size_t done = 0;
  // The prefix gate comes BEFORE the verb runs: a shadow replaying N verbs
  // must not execute (and silently discard) verb N+1.
  const auto verb = [&](const std::function<Status()>& fn) {
    if (done >= max_verbs || !fn().ok()) return false;
    ++done;
    return true;
  };

  Subscription burst;
  burst.kind = SubscriptionKind::kBurstThreshold;
  burst.series = 0;
  burst.burst.window = 4;
  burst.burst.enter_ratio = 1.25;
  burst.burst.exit_ratio = 1.1;
  if (!verb([&] { return server->Subscribe(burst).status(); })) return done;

  for (const double value : {2000.0, 2500.0, 2200.0}) {
    if (!verb([&] { return server->AppendPoint(0, value); })) return done;
  }

  Subscription similar;
  similar.kind = SubscriptionKind::kSimilarityWatch;
  similar.series = 7;
  similar.similarity.query = corpus.at(11).values;
  similar.similarity.radius = 9.0;
  if (!verb([&] { return server->Subscribe(similar).status(); })) return done;

  for (const double value : {1.0, 2.0, 1.0, 3.0}) {
    if (!verb([&] { return server->AppendPoint(0, value); })) return done;
  }

  if (!verb([&] {
        const std::vector<Alert> polled = server->PollAlerts(1000);
        return server->AckAlerts(polled.empty() ? 0 : polled.back().seq);
      })) {
    return done;
  }

  for (const double value : {1800.0, 2600.0}) {
    if (!verb([&] { return server->AppendPoint(0, value); })) return done;
  }
  return done;
}
constexpr size_t kCrashScheduleVerbs = 12;

std::vector<SubscriptionRegistry::Entry> Registrations(
    const service::S2Server& server) {
  return server.engine().monitor_registry().List();
}

TEST(MonitorEquivalenceTest, CrashSweepRearmsSubscriptionsAndKeepsAckedRange) {
  // Ops 1-2 are the monitor WAL's header write+sync, 3-4 the stream WAL's;
  // every verb below (subscribe, append, ack) is one logged record = one
  // write + one sync, so ops 5..28 sweep a crash into every verb.
  const ts::Corpus corpus = MakeCorpus();
  for (uint64_t crash_at = 5; crash_at <= 28; ++crash_at) {
    io::MemEnv base;
    io::FaultPlan plan;
    plan.crash_at_op = crash_at;
    io::FaultInjectingEnv wal_env(&base, plan);

    service::S2Server::Options wal_options = ServerOptions(1);
    wal_options.wal_path = "monitor_sweep.wal";
    wal_options.wal_env = &wal_env;

    size_t acknowledged = 0;
    {
      auto server = service::S2Server::Build(MakeCorpus(), EngineOptions(),
                                             wal_options);
      ASSERT_TRUE(server.ok()) << server.status().ToString();
      acknowledged =
          DriveCrashSchedule(server->get(), corpus, kCrashScheduleVerbs);
    }
    ASSERT_TRUE(wal_env.crashed()) << "crash_at " << crash_at;
    ASSERT_LT(acknowledged, kCrashScheduleVerbs) << "crash_at " << crash_at;
    wal_env.ClearCrash();

    auto revived = service::S2Server::Build(MakeCorpus(), EngineOptions(),
                                            wal_options);
    ASSERT_TRUE(revived.ok())
        << "crash_at " << crash_at << ": " << revived.status().ToString();

    // The shadow: a WAL-less server fed exactly the acknowledged prefix.
    auto shadow = service::S2Server::Build(MakeCorpus(), EngineOptions(),
                                           ServerOptions(1));
    ASSERT_TRUE(shadow.ok());
    ASSERT_EQ(DriveCrashSchedule(shadow->get(), corpus, acknowledged),
              acknowledged);

    const std::string what = "crash_at " + std::to_string(crash_at);
    const auto want = (*shadow)->monitor_info();
    const auto got = (*revived)->monitor_info();
    EXPECT_EQ(want.active_subscriptions, got.active_subscriptions) << what;
    EXPECT_EQ(want.next_seq, got.next_seq) << what;
    EXPECT_EQ(want.queue_depth, got.queue_depth) << what;
    EXPECT_EQ(want.any_acked, got.any_acked) << what;
    EXPECT_EQ(want.acked_upto, got.acked_upto) << what;
    EXPECT_EQ(want.alerts_fired, got.alerts_fired) << what;

    // Re-armed means *identical hysteresis state*, not just the same count:
    // every surviving subscription carries the engaged flag and tracked bin
    // it had at the crash.
    const auto want_subs = Registrations(**shadow);
    const auto got_subs = Registrations(**revived);
    ASSERT_EQ(want_subs.size(), got_subs.size()) << what;
    for (size_t i = 0; i < want_subs.size(); ++i) {
      EXPECT_EQ(want_subs[i].sub.id, got_subs[i].sub.id) << what;
      EXPECT_EQ(want_subs[i].sub.kind, got_subs[i].sub.kind) << what;
      EXPECT_EQ(want_subs[i].sub.series, got_subs[i].sub.series) << what;
      EXPECT_EQ(want_subs[i].engaged, got_subs[i].engaged) << what;
      EXPECT_EQ(want_subs[i].bin, got_subs[i].bin) << what;
    }

    // The unacknowledged suffix of the alert stream re-fires with the same
    // sequence numbers; the acknowledged range stays retired.
    ExpectSameAlerts((*shadow)->PollAlerts(1000), (*revived)->PollAlerts(1000),
                     what);
  }

  // Sanity: the full schedule (no crash) fires on both sides of the ack, so
  // the sweep genuinely covers "acked range retired, suffix re-fired".
  auto full = service::S2Server::Build(MakeCorpus(), EngineOptions(),
                                       ServerOptions(1));
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(DriveCrashSchedule(full->get(), corpus, kCrashScheduleVerbs),
            kCrashScheduleVerbs);
  const auto info = (*full)->monitor_info();
  EXPECT_TRUE(info.any_acked);
  EXPECT_GT(info.alerts_fired, info.alerts_acked);
  EXPECT_GT(info.queue_depth, 0u);
}

}  // namespace
}  // namespace s2::monitor
