// Burst exploration over a multi-year corpus: detect bursts for every
// query, store them in the relational burst table, then interactively walk
// "query-by-burst" chains — the paper's important-news-discovery use case
// ("world trade center" -> "pentagon attack", Section 6 / Figure 19).
//
//   ./build/examples/burst_explorer

#include <cstdio>

#include "common/rng.h"
#include "core/s2_engine.h"
#include "querylog/archetypes.h"
#include "querylog/corpus_generator.h"
#include "querylog/synthesizer.h"
#include "timeseries/calendar.h"

using namespace s2;

namespace {

void Explore(const core::S2Engine& engine, const char* query, int depth) {
  auto id = engine.FindByName(query);
  if (!id.ok()) return;
  std::printf("\n[%d] %s\n", depth, query);
  auto bursts = engine.BurstsOf(*id, core::BurstHorizon::kLongTerm);
  if (bursts.ok()) {
    for (const auto& b : *bursts) {
      std::printf("     burst [%s .. %s] height %+.2f\n",
                  ts::FormatDayIndex(b.start).c_str(),
                  ts::FormatDayIndex(b.end).c_str(), b.avg_value);
    }
  }
  auto matches = engine.QueryByBurst(*id, 3, core::BurstHorizon::kLongTerm);
  if (!matches.ok()) return;
  for (const auto& m : *matches) {
    std::printf("     -> co-bursting: %-32s BSim %.3f\n",
                engine.corpus().at(m.series_id).name.c_str(), m.bsim);
  }
  // Follow the strongest edge one level down.
  if (depth < 2 && !matches->empty()) {
    Explore(engine, engine.corpus().at(matches->front().series_id).name.c_str(),
            depth + 1);
  }
}

}  // namespace

int main() {
  Rng rng(2001);
  const size_t n_days = 1096;  // 2000-2002.
  ts::Corpus corpus;
  auto add = [&](const qlog::QueryArchetype& a) {
    auto series = qlog::Synthesize(a, 0, n_days, &rng);
    if (series.ok()) corpus.Add(std::move(series).ValueOrDie());
  };

  // A news cluster around one shared event.
  const int32_t event = ts::DateToDayIndex({2001, 9, 11});
  auto wtc = qlog::MakeWorldTradeCenter(event);
  add(wtc);
  auto pentagon = wtc;
  pentagon.name = "pentagon attack";
  pentagon.events[0].amplitude *= 0.8;
  add(pentagon);
  auto nostradamus = wtc;
  nostradamus.name = "nostradamus prediction";
  nostradamus.events[0].amplitude *= 0.5;
  nostradamus.events[0].decay_days = 10;
  add(nostradamus);

  // Seasonal clusters.
  add(qlog::MakeChristmas());
  add(qlog::MakeHalloween());
  add(qlog::MakeEaster());
  add(qlog::MakeFlowers());

  // Background.
  qlog::CorpusSpec spec;
  spec.num_series = 300;
  spec.n_days = n_days;
  spec.seed = 7;
  auto filler = qlog::GenerateCorpus(spec);
  if (filler.ok()) {
    for (const auto& series : filler->series()) corpus.Add(series);
  }

  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.long_burst.min_avg_value = 0.5;  // Suppress noise micro-bursts.
  options.long_burst.min_length = 5;
  auto engine = core::S2Engine::Build(std::move(corpus), options);
  if (!engine.ok()) {
    std::printf("build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("burst store: %zu records, %zu bytes (vs %zu KiB of raw data)\n",
              engine->burst_table(core::BurstHorizon::kLongTerm).size(),
              engine->burst_table(core::BurstHorizon::kLongTerm).StorageBytes(),
              engine->corpus().size() * n_days * sizeof(double) / 1024);

  Explore(*engine, "world trade center", 0);
  Explore(*engine, "christmas", 0);
  Explore(*engine, "flowers", 0);
  return 0;
}
