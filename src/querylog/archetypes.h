#ifndef S2_QUERYLOG_ARCHETYPES_H_
#define S2_QUERYLOG_ARCHETYPES_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "querylog/components.h"

namespace s2::qlog {

/// Named archetypes reproducing the demand shapes of specific queries the
/// paper discusses. These drive the figure-level benchmarks.
///
/// Each factory returns a fully-parameterized recipe; pass it to
/// `Synthesize()` to obtain daily counts.

/// "cinema" (Fig. 1): strong Friday/Saturday weekend peaks, 52 per year.
QueryArchetype MakeCinema();

/// "easter" (Figs. 2, 15): gradual build-up over the spring months with an
/// immediate drop after the holiday.
QueryArchetype MakeEaster();

/// "elvis" (Fig. 3): sharp spike every Aug 16 (death anniversary).
QueryArchetype MakeElvis();

/// "full moon" (Figs. 13, 16): ~29.5-day lunar periodicity.
QueryArchetype MakeFullMoon();

/// "nordstrom" (Fig. 13): retail weekly cycle plus a holiday-season swell.
QueryArchetype MakeNordstrom();

/// "dudley moore" (Fig. 13): aperiodic background with one news spike at
/// `event_day` (the actor's death).
QueryArchetype MakeDudleyMoore(int32_t event_day);

/// "halloween" (Fig. 14): October/November burst.
QueryArchetype MakeHalloween();

/// "christmas" (Fig. 19): December seasonal burst.
QueryArchetype MakeChristmas();

/// "flowers" (Fig. 16): bursts at Valentine's Day (Feb 14) and Mother's Day
/// (~May 12).
QueryArchetype MakeFlowers();

/// "hurricane" (Fig. 19): late-summer hurricane-season bursts.
QueryArchetype MakeHurricane();

/// "world trade center" (Fig. 19): massive one-off news burst at
/// `event_day` (2001-09-11 in the paper's data).
QueryArchetype MakeWorldTradeCenter(int32_t event_day);

/// Families of randomized archetypes used to populate large corpora. Each
/// draws amplitudes/phases/anchors from `rng` so that no two corpus series
/// are identical while family members stay mutually similar.
QueryArchetype MakeRandomWeekly(const std::string& name, Rng* rng);
QueryArchetype MakeRandomMonthly(const std::string& name, Rng* rng);
QueryArchetype MakeRandomSeasonal(const std::string& name, Rng* rng);
QueryArchetype MakeRandomEvent(const std::string& name, int32_t span_start,
                               int32_t span_days, Rng* rng);
QueryArchetype MakeRandomAperiodic(const std::string& name, Rng* rng);

}  // namespace s2::qlog

#endif  // S2_QUERYLOG_ARCHETYPES_H_
