# Empty compiler generated dependencies file for s2_period.
# This may be replaced when dependencies are built.
