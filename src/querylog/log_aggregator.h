#ifndef S2_QUERYLOG_LOG_AGGREGATOR_H_
#define S2_QUERYLOG_LOG_AGGREGATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "querylog/components.h"
#include "timeseries/time_series.h"

namespace s2::qlog {

/// One raw search-engine log record: a query string issued at a point in
/// time. This is the paper's input format ("Using the query logs, we build a
/// time series for each query word or phrase where the elements of the time
/// series are the number of times that a query is issued on a day").
struct LogRecord {
  int64_t timestamp_seconds = 0;  ///< Seconds since day 0 (2000-01-01 00:00).
  std::string query;
};

/// Seconds in a day.
inline constexpr int64_t kSecondsPerDay = 86400;

/// Streaming aggregation of raw log records into daily-count time series.
///
/// Records may arrive in any order; the aggregator keeps one day-indexed
/// counter map per distinct query string and materializes a dense `Corpus`
/// on demand. This is the storage-efficient, privacy-preserving aggregate
/// the paper advocates retaining instead of the raw log.
class LogAggregator {
 public:
  LogAggregator() = default;

  /// Ingests one record. Negative timestamps are rejected.
  Status Add(const LogRecord& record);

  /// Ingests a batch.
  Status AddAll(const std::vector<LogRecord>& records);

  /// Number of distinct query strings seen.
  size_t num_queries() const { return counts_.size(); }

  /// Total records ingested.
  uint64_t num_records() const { return num_records_; }

  /// Daily counts of one query over [start_day, end_day] (inclusive), zeros
  /// for silent days. NotFound if the query never appeared.
  Result<ts::TimeSeries> SeriesFor(const std::string& query, int32_t start_day,
                                   int32_t end_day) const;

  /// Materializes a corpus over [start_day, end_day] with one series per
  /// distinct query whose total count is at least `min_total_count` (the
  /// paper's S2 tool works on the "top 80000+ sequences" — a volume cutoff).
  /// Series appear in lexicographic query order.
  Result<ts::Corpus> BuildCorpus(int32_t start_day, int32_t end_day,
                                 uint64_t min_total_count) const;

 private:
  std::unordered_map<std::string, std::map<int32_t, uint32_t>> counts_;
  std::unordered_map<std::string, uint64_t> totals_;
  uint64_t num_records_ = 0;
};

/// Generates a raw log stream for `archetype` over `n_days` starting at
/// `start_day`: for each day, a Poisson-distributed number of records with
/// uniform intra-day timestamps. Useful for end-to-end pipeline tests and
/// demos; real deployments would `Add` records from their own log tail.
Result<std::vector<LogRecord>> GenerateLog(const QueryArchetype& archetype,
                                           int32_t start_day, size_t n_days,
                                           Rng* rng);

}  // namespace s2::qlog

#endif  // S2_QUERYLOG_LOG_AGGREGATOR_H_
