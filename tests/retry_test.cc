#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "resilience/retry.h"

namespace s2::resilience {
namespace {

using std::chrono::microseconds;

Retrier NoSleepRetrier(RetryPolicy policy) {
  return Retrier(policy, [](microseconds) {});
}

TEST(RetryTest, IsRetryableClassification) {
  EXPECT_TRUE(IsRetryable(Status::TransientIo("eintr")));
  EXPECT_TRUE(IsRetryable(Status::Unavailable("overloaded")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::IoError("disk on fire")));
  EXPECT_FALSE(IsRetryable(Status::Corruption("bad bytes")));
  EXPECT_FALSE(IsRetryable(Status::NotFound("no file")));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("bad k")));
}

TEST(RetryTest, SucceedsFirstTryWithoutRetry) {
  Retrier retrier = NoSleepRetrier(RetryPolicy{});
  int calls = 0;
  const Status status = retrier.Run([&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retrier.stats().attempts, 1u);
  EXPECT_EQ(retrier.stats().retries, 0u);
  EXPECT_EQ(retrier.stats().giveups, 0u);
}

TEST(RetryTest, RetriesTransientUntilSuccess) {
  Retrier retrier = NoSleepRetrier(RetryPolicy{.max_attempts = 5});
  int calls = 0;
  const Status status = retrier.Run([&] {
    return ++calls < 3 ? Status::TransientIo("blip") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retrier.stats().attempts, 3u);
  EXPECT_EQ(retrier.stats().retries, 2u);
  EXPECT_EQ(retrier.stats().giveups, 0u);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  Retrier retrier = NoSleepRetrier(RetryPolicy{.max_attempts = 3});
  int calls = 0;
  const Status status = retrier.Run([&] {
    ++calls;
    return Status::TransientIo("always failing");
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoTransient);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retrier.stats().giveups, 1u);
}

TEST(RetryTest, DoesNotRetryHardErrors) {
  Retrier retrier = NoSleepRetrier(RetryPolicy{.max_attempts = 5});
  int calls = 0;
  const Status status = retrier.Run([&] {
    ++calls;
    return Status::Corruption("wrong bytes");
  });
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retrier.stats().retries, 0u);
}

TEST(RetryTest, BackoffDoublesAndCaps) {
  RetryPolicy policy;
  policy.base_backoff = microseconds(100);
  policy.max_backoff = microseconds(450);
  policy.jitter = 0.0;  // Exact values.
  Retrier retrier = NoSleepRetrier(policy);
  EXPECT_EQ(retrier.NextBackoff(0), microseconds(100));
  EXPECT_EQ(retrier.NextBackoff(1), microseconds(200));
  EXPECT_EQ(retrier.NextBackoff(2), microseconds(400));
  EXPECT_EQ(retrier.NextBackoff(3), microseconds(450));  // Capped.
  EXPECT_EQ(retrier.NextBackoff(10), microseconds(450));
}

TEST(RetryTest, JitterStaysWithinBand) {
  RetryPolicy policy;
  policy.base_backoff = microseconds(1000);
  policy.max_backoff = microseconds(1000);
  policy.jitter = 0.25;
  Retrier retrier = NoSleepRetrier(policy);
  for (int i = 0; i < 100; ++i) {
    const auto backoff = retrier.NextBackoff(0);
    EXPECT_GE(backoff, microseconds(750));
    EXPECT_LE(backoff, microseconds(1250));
  }
}

TEST(RetryTest, SleeperReceivesEveryBackoff) {
  std::vector<microseconds> sleeps;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  Retrier retrier(policy, [&](microseconds d) { sleeps.push_back(d); });
  (void)retrier.Run([] { return Status::TransientIo("x"); });
  ASSERT_EQ(sleeps.size(), 3u);  // max_attempts - 1 sleeps.
  EXPECT_EQ(sleeps[0], microseconds(100));
  EXPECT_EQ(sleeps[1], microseconds(200));
  EXPECT_EQ(sleeps[2], microseconds(400));
}

TEST(RetryTest, RunWithRetryReturnsValue) {
  Retrier retrier = NoSleepRetrier(RetryPolicy{.max_attempts = 3});
  int calls = 0;
  Result<int> result = RunWithRetry<int>(retrier, [&]() -> Result<int> {
    if (++calls < 2) return Status::TransientIo("blip");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, RunWithRetryPropagatesFinalError) {
  Retrier retrier = NoSleepRetrier(RetryPolicy{.max_attempts = 2});
  Result<int> result = RunWithRetry<int>(
      retrier, []() -> Result<int> { return Status::TransientIo("down"); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoTransient);
}

}  // namespace
}  // namespace s2::resilience
