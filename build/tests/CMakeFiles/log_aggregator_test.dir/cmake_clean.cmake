file(REMOVE_RECURSE
  "CMakeFiles/log_aggregator_test.dir/log_aggregator_test.cc.o"
  "CMakeFiles/log_aggregator_test.dir/log_aggregator_test.cc.o.d"
  "log_aggregator_test"
  "log_aggregator_test.pdb"
  "log_aggregator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
