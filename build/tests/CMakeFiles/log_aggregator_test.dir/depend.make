# Empty dependencies file for log_aggregator_test.
# This may be replaced when dependencies are built.
