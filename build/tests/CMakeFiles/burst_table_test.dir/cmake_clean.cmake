file(REMOVE_RECURSE
  "CMakeFiles/burst_table_test.dir/burst_table_test.cc.o"
  "CMakeFiles/burst_table_test.dir/burst_table_test.cc.o.d"
  "burst_table_test"
  "burst_table_test.pdb"
  "burst_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
