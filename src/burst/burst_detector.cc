#include "burst/burst_detector.h"

#include "dsp/moving_average.h"
#include "dsp/stats.h"

namespace s2::burst {

Result<BurstDetector::Trace> BurstDetector::DetectWithTrace(
    const std::vector<double>& x) const {
  if (x.size() < options_.window) {
    return Status::InvalidArgument("BurstDetector: sequence shorter than window");
  }
  const std::vector<double> z = options_.standardize ? dsp::Standardize(x) : x;
  S2_ASSIGN_OR_RETURN(std::vector<double> ma,
                      dsp::TrailingMovingAverage(z, options_.window));
  const double cutoff = dsp::Mean(ma) + options_.cutoff_stds * dsp::StdDev(ma);

  Trace trace;
  trace.cutoff = cutoff;

  // Compact consecutive over-cutoff days into [start, end, avg] triplets.
  int32_t run_start = -1;
  double run_sum = 0.0;
  auto flush = [&](int32_t end_inclusive) {
    if (run_start < 0) return;
    BurstRegion region;
    region.start = run_start;
    region.end = end_inclusive;
    region.avg_value = run_sum / static_cast<double>(region.length());
    if (region.avg_value >= options_.min_avg_value &&
        region.length() >= options_.min_length) {
      trace.regions.push_back(region);
    }
    run_start = -1;
    run_sum = 0.0;
  };
  for (size_t i = 0; i < ma.size(); ++i) {
    if (ma[i] > cutoff) {
      if (run_start < 0) run_start = static_cast<int32_t>(i);
      run_sum += z[i];
    } else {
      flush(static_cast<int32_t>(i) - 1);
    }
  }
  flush(static_cast<int32_t>(ma.size()) - 1);

  trace.moving_average = std::move(ma);
  return trace;
}

Result<std::vector<BurstRegion>> BurstDetector::Detect(
    const std::vector<double>& x) const {
  S2_ASSIGN_OR_RETURN(Trace trace, DetectWithTrace(x));
  return std::move(trace.regions);
}

}  // namespace s2::burst
