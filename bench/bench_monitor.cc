// Standing-query overhead benchmark: what a population of subscriptions
// costs the append path, per subscription kind.
//
//   ./build/bench/bench_monitor [--series 1024] [--days 256]
//                               [--appends 2000] [--watched 64]
//                               [--json BENCH_monitor.json]
//
// Every append to a watched series evaluates its subscriptions inline
// (DESIGN.md §9): burst and similarity subscriptions are O(window)/O(n)
// arithmetic, a periodicity subscription prices a full periodogram (one
// FFT) per append. The bench appends round-robin over `--watched` watched
// series — the worst case where every append pays evaluation — and prints
// appends/s against the unwatched baseline, plus the fired/dropped alert
// accounting. Results also land in a machine-readable JSON file so the
// perf trajectory across PRs has a recorded baseline.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/s2_engine.h"
#include "monitor/subscription.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"

using namespace s2;

namespace {

ts::Corpus MakeCorpus(size_t series, size_t days) {
  qlog::CorpusSpec spec;
  spec.num_series = series;
  spec.n_days = days;
  spec.seed = 20040613;  // SIGMOD'04.
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(corpus).ValueOrDie();
}

struct MonitorRow {
  const char* config = "";
  double appends_per_s = 0.0;
  double avg_us = 0.0;
  uint64_t evaluations = 0;
  uint64_t alerts_fired = 0;
  uint64_t alerts_dropped = 0;
};

enum class Mix { kNone, kBurst, kPeriod, kSimilarity, kMixed };

monitor::Subscription MakeSub(Mix mix, size_t ordinal, ts::SeriesId series,
                              const ts::Corpus& corpus) {
  monitor::Subscription sub;
  sub.series = series;
  Mix kind = mix;
  if (mix == Mix::kMixed) {
    const Mix kinds[] = {Mix::kBurst, Mix::kPeriod, Mix::kSimilarity};
    kind = kinds[ordinal % 3];
  }
  switch (kind) {
    case Mix::kBurst:
      sub.kind = monitor::SubscriptionKind::kBurstThreshold;
      sub.burst.window = 7;
      sub.burst.enter_ratio = 1.5;
      sub.burst.exit_ratio = 1.2;
      break;
    case Mix::kPeriod:
      sub.kind = monitor::SubscriptionKind::kPeriodicityChange;
      break;
    case Mix::kSimilarity:
      sub.kind = monitor::SubscriptionKind::kSimilarityWatch;
      sub.similarity.query = corpus.at(series).values;
      sub.similarity.radius = 2.0;
      break;
    default:
      break;
  }
  return sub;
}

MonitorRow RunAppends(const char* config, Mix mix, size_t series, size_t days,
                      size_t appends, size_t watched) {
  core::S2Engine::Options engine_options;
  engine_options.index.budget_c = 16;

  service::S2Server::Options server_options;
  server_options.scheduler.threads = 1;
  server_options.cache_capacity = 0;
  server_options.compaction_threshold = 0;

  const ts::Corpus corpus = MakeCorpus(series, days);
  auto server = service::S2Server::Build(MakeCorpus(series, days),
                                         engine_options, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server build failed: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }

  if (mix != Mix::kNone) {
    for (size_t i = 0; i < watched; ++i) {
      const auto id = static_cast<ts::SeriesId>(i % series);
      const auto sub = server->get()->Subscribe(MakeSub(mix, i, id, corpus));
      if (!sub.ok()) {
        std::fprintf(stderr, "subscribe failed: %s\n",
                     sub.status().ToString().c_str());
        std::exit(1);
      }
    }
  }

  // Round-robin over the *watched* prefix: every append evaluates (the
  // kNone baseline appends to the same ids, paying zero evaluation).
  Rng rng(13);
  MonitorRow row;
  row.config = config;
  bench::Timer timer;
  for (size_t i = 0; i < appends; ++i) {
    const auto id = static_cast<ts::SeriesId>(i % std::max<size_t>(watched, 1));
    // Alternating hot/cold regimes so thresholds actually cross and alert
    // pushes land inside the measured interval.
    const bool hot = (i / 64) % 2 == 1;
    const double value =
        hot ? rng.Uniform(3000.0, 5000.0) : rng.Uniform(0.0, 40.0);
    const Status status = server->get()->AppendPoint(id, value);
    if (!status.ok()) {
      std::fprintf(stderr, "append failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
    if ((i + 1) % 256 == 0) {
      const Status compacted = server->get()->Compact();
      if (!compacted.ok()) {
        std::fprintf(stderr, "compact failed: %s\n",
                     compacted.ToString().c_str());
        std::exit(1);
      }
    }
  }
  const double elapsed = timer.Seconds();
  row.appends_per_s = elapsed > 0 ? static_cast<double>(appends) / elapsed : 0;
  row.avg_us = elapsed * 1e6 / static_cast<double>(appends);

  const auto info = server->get()->monitor_info();
  row.evaluations = server->get()->alerts().stats().evaluations;
  row.alerts_fired = info.alerts_fired;
  row.alerts_dropped = info.alerts_dropped;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t series = bench::ArgSize(argc, argv, "--series", 1024);
  const size_t days = bench::ArgSize(argc, argv, "--days", 256);
  const size_t appends = bench::ArgSize(argc, argv, "--appends", 2000);
  const size_t watched = bench::ArgSize(argc, argv, "--watched", 64);
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_monitor.json");

  std::printf("bench_monitor: series=%zu days=%zu appends=%zu watched=%zu\n",
              series, days, appends, watched);

  bench::PrintHeader(
      "Append throughput vs standing-subscription mix (worst case: every "
      "append watched)");
  std::printf("  %-16s %12s %10s %12s %10s %10s\n", "config", "appends/s",
              "avg_us", "evaluations", "fired", "dropped");

  const struct {
    const char* name;
    Mix mix;
  } configs[] = {
      {"none", Mix::kNone},         {"burst", Mix::kBurst},
      {"period", Mix::kPeriod},     {"similarity", Mix::kSimilarity},
      {"mixed", Mix::kMixed},
  };

  bench::Json rows = bench::Json::Array();
  for (const auto& config : configs) {
    const MonitorRow row =
        RunAppends(config.name, config.mix, series, days, appends, watched);
    std::printf("  %-16s %12.1f %10.1f %12llu %10llu %10llu\n", row.config,
                row.appends_per_s, row.avg_us,
                static_cast<unsigned long long>(row.evaluations),
                static_cast<unsigned long long>(row.alerts_fired),
                static_cast<unsigned long long>(row.alerts_dropped));
    rows.Push(bench::Json::Object()
                  .Add("config", row.config)
                  .Add("appends_per_s", row.appends_per_s)
                  .Add("avg_us", row.avg_us)
                  .Add("evaluations", row.evaluations)
                  .Add("alerts_fired", row.alerts_fired)
                  .Add("alerts_dropped", row.alerts_dropped));
  }

  bench::WriteJsonFile(
      json_path,
      bench::Json::Object()
          .Add("bench", "bench_monitor")
          .Add("spec", bench::Json::Object()
                           .Add("series", static_cast<uint64_t>(series))
                           .Add("days", static_cast<uint64_t>(days))
                           .Add("appends", static_cast<uint64_t>(appends))
                           .Add("watched", static_cast<uint64_t>(watched)))
          .Add("append_throughput", std::move(rows)));
  return 0;
}
