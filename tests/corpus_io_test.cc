#include "storage/corpus_io.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "querylog/corpus_generator.h"

namespace s2::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CorpusIoTest, RoundTrip) {
  qlog::CorpusSpec spec;
  spec.num_series = 25;
  spec.n_days = 100;
  spec.seed = 9;
  auto corpus = qlog::GenerateCorpus(spec);
  ASSERT_TRUE(corpus.ok());

  const std::string path = TempPath("s2_corpus_roundtrip.bin");
  ASSERT_TRUE(WriteCorpus(path, *corpus).ok());
  auto loaded = ReadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), corpus->size());
  for (ts::SeriesId id = 0; id < corpus->size(); ++id) {
    EXPECT_EQ(loaded->at(id).name, corpus->at(id).name);
    EXPECT_EQ(loaded->at(id).start_day, corpus->at(id).start_day);
    EXPECT_EQ(loaded->at(id).values, corpus->at(id).values);
  }
  std::remove(path.c_str());
}

TEST(CorpusIoTest, EmptyCorpusRoundTrip) {
  const std::string path = TempPath("s2_corpus_empty.bin");
  ASSERT_TRUE(WriteCorpus(path, ts::Corpus()).ok());
  auto loaded = ReadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadCorpus("/no/such/dir/corpus.bin").status().code(),
            StatusCode::kNotFound);
}

TEST(CorpusIoTest, BadMagicRejected) {
  const std::string path = TempPath("s2_corpus_badmagic.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("BADMAGIC", 1, 8, f);
  std::fclose(f);
  EXPECT_EQ(ReadCorpus(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, TruncatedFileRejected) {
  qlog::CorpusSpec spec;
  spec.num_series = 4;
  spec.n_days = 50;
  auto corpus = qlog::GenerateCorpus(spec);
  ASSERT_TRUE(corpus.ok());
  const std::string path = TempPath("s2_corpus_trunc.bin");
  ASSERT_TRUE(WriteCorpus(path, *corpus).ok());
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_EQ(ReadCorpus(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, UnwritablePathIsIoError) {
  EXPECT_EQ(WriteCorpus("/no/such/dir/corpus.bin", ts::Corpus()).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace s2::storage
