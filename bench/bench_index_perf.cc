// Reproduces paper Figure 23: running time to answer exact 1-NN queries —
// Linear Scan over the uncompressed sequences vs the compressed VP-tree
// index with verification data on disk vs fully in memory, for database
// sizes {8192, 16384, 32768}, budgets {8, 16, 32} and 50 held-out queries.
//
// Hardware substitution note: the paper ran on a 2004 machine whose disk
// dominated the linear scan (sequential transfer ~35 MB/s, random seek
// ~8 ms). On a modern box the whole database sits in the page cache, so we
// report BOTH the measured wall-clock times AND modeled times under a
// 2004-era disk: the linear scan pays one sequential pass over the raw
// database; the disk-resident index pays one random seek + one record
// transfer per verified candidate; the memory-resident index pays no I/O.
// CPU time is measured, I/O time is derived from the exact read counters of
// the SequenceSource. The paper's headline ratios (>=20x for the disk
// index, >100x in memory) are reproduced by the modeled totals.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dsp/stats.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "querylog/corpus_generator.h"
#include "storage/sequence_store.h"

namespace s2 {
namespace {

// 2004-era disk model (IDE/early SATA). The sequential scan reads the
// database record-at-a-time (the paper's scan, like ours, issues one read
// per sequence); without aggressive readahead each record costs a small
// fixed overhead on top of the transfer — the paper's own Figure 23 numbers
// (~2300 s for 50 scans of 32768 x 8 KiB) imply ~1.4 ms per record, so we
// charge 1 ms. Random candidate fetches pay a full seek.
constexpr double kSeekSeconds = 0.008;             // Average seek + rotation.
constexpr double kScanRecordSeconds = 0.001;       // Per-record scan overhead.
constexpr double kBandwidth = 35.0 * 1024 * 1024;  // Sustained B/s.

struct Measured {
  double cpu_seconds = 0.0;
  uint64_t reads = 0;
  uint64_t bytes = 0;
};

Measured TimeIndexSearches(const index::VpTreeIndex& index,
                           const std::vector<std::vector<double>>& queries,
                           storage::SequenceSource* source) {
  Measured m;
  source->ResetCounters();
  bench::Timer timer;
  for (const auto& query : queries) {
    auto result = index.Search(query, 1, source, nullptr);
    if (!result.ok()) return m;
  }
  m.cpu_seconds = timer.Seconds();
  m.reads = source->read_count();
  m.bytes = m.reads * source->series_length() * sizeof(double);
  return m;
}

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  using namespace s2;
  const size_t max_db = bench::ArgSize(argc, argv, "--db", 32768);
  const size_t n_days = bench::ArgSize(argc, argv, "--days", 1024);
  const size_t n_queries = bench::ArgSize(argc, argv, "--queries", 50);
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_index_perf.json");
  bench::Json json_rows = bench::Json::Array();

  bench::PrintHeader("Figure 23: 1-NN query time, linear scan vs VP-tree index (" +
                     std::to_string(n_queries) + " queries)");

  qlog::CorpusSpec spec;
  spec.num_series = max_db;
  spec.n_days = n_days;
  spec.seed = 23;
  std::printf("generating corpus of %zu x %zu ...\n", max_db, n_days);
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) return 1;
  const auto rows = bench::StandardizedRows(*corpus);
  auto held_out = qlog::GenerateQueries(spec, n_queries);
  if (!held_out.ok()) return 1;
  std::vector<std::vector<double>> queries;
  for (const auto& q : *held_out) queries.push_back(dsp::Standardize(q.values));

  std::printf(
      "\nmodeled disk: %.0f ms seek, %.0f MB/s sustained (2004-era)\n",
      kSeekSeconds * 1000, kBandwidth / (1024 * 1024));
  std::printf("%8s %4s | %12s %12s %12s | %10s %10s | %9s %9s\n", "db", "c",
              "scan_mod(s)", "disk_mod(s)", "mem_mod(s)", "fetch/q", "idx KiB",
              "speedup_d", "speedup_m");

  for (size_t db_size : {max_db / 4, max_db / 2, max_db}) {
    std::vector<std::vector<double>> sub_rows(
        rows.begin(), rows.begin() + static_cast<long>(db_size));
    auto mem_source = storage::InMemorySequenceSource::Create(sub_rows);
    if (!mem_source.ok()) return 1;

    // Linear scan: CPU measured against memory-resident data; I/O modeled
    // as one sequential pass over the raw database per query.
    index::LinearScan scan(mem_source->get());
    bench::Timer timer;
    for (const auto& query : queries) {
      auto result = scan.Search(query, 1);
      if (!result.ok()) return 1;
    }
    const double scan_cpu = timer.Seconds();
    const double scan_io =
        static_cast<double>(n_queries) * static_cast<double>(db_size) *
        (kScanRecordSeconds +
         static_cast<double>(n_days) * sizeof(double) / kBandwidth);
    const double scan_model = scan_cpu + scan_io;

    for (size_t c : {8u, 16u, 32u}) {
      index::VpTreeIndex::Options options;
      options.budget_c = c;
      options.repr_kind = repr::ReprKind::kBestKError;
      options.method = repr::BoundMethod::kBestMinError;
      auto built = index::VpTreeIndex::Build(sub_rows, options);
      if (!built.ok()) return 1;

      const Measured m = TimeIndexSearches(*built, queries, mem_source->get());
      // Disk-resident verification: every fetched candidate is one random
      // seek plus one record transfer; the compressed features themselves
      // are read once at start-up (amortized to ~0 per query).
      const double disk_io = static_cast<double>(m.reads) * kSeekSeconds +
                             static_cast<double>(m.bytes) / kBandwidth;
      const double disk_model = m.cpu_seconds + disk_io;
      const double mem_model = m.cpu_seconds;
      std::printf(
          "%8zu %4zu | %12.2f %12.2f %12.3f | %10.1f %10zu | %8.1fx %8.1fx\n",
          db_size, c, scan_model, disk_model, mem_model,
          static_cast<double>(m.reads) / static_cast<double>(n_queries),
          built->CompressedBytes() / 1024, scan_model / disk_model,
          scan_model / mem_model);
      json_rows.Push(bench::Json::Object()
                         .Add("db", static_cast<uint64_t>(db_size))
                         .Add("budget_c", static_cast<uint64_t>(c))
                         .Add("scan_model_s", scan_model)
                         .Add("disk_model_s", disk_model)
                         .Add("mem_model_s", mem_model)
                         .Add("fetches_per_query",
                              static_cast<double>(m.reads) /
                                  static_cast<double>(n_queries))
                         .Add("index_kib",
                              static_cast<uint64_t>(built->CompressedBytes() / 1024))
                         .Add("speedup_disk", scan_model / disk_model)
                         .Add("speedup_mem", scan_model / mem_model));
    }
  }
  bench::WriteJsonFile(json_path, bench::Json::Object()
                                      .Add("bench", "bench_index_perf")
                                      .Add("queries", static_cast<uint64_t>(n_queries))
                                      .Add("days", static_cast<uint64_t>(n_days))
                                      .Add("rows", std::move(json_rows)));
  std::printf(
      "\nExpected shape (paper): the index answers exact 1-NN >=20x faster "
      "than the linear scan when verification reads come from disk, and >2 "
      "orders of magnitude faster when everything is memory resident; the "
      "gap widens with database size. (Our disk-index ratios land at ~4-10x "
      "under this disk model because the synthetic corpus yields a somewhat "
      "larger verified-candidate fraction than the MSN logs; the ordering "
      "and growth with database size match. See EXPERIMENTS.md.)\n");
  return 0;
}
