file(REMOVE_RECURSE
  "CMakeFiles/s2_engine_test.dir/s2_engine_test.cc.o"
  "CMakeFiles/s2_engine_test.dir/s2_engine_test.cc.o.d"
  "s2_engine_test"
  "s2_engine_test.pdb"
  "s2_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
