#include "diag/check.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace s2::diag {
namespace {

// The handler API is a plain function pointer, so captures go through a
// global. Each test clears it in the fixture.
std::vector<CheckFailure>* g_failures = nullptr;

void CaptureFailure(const CheckFailure& failure) {
  g_failures->push_back(failure);
}

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_failures = &failures_;
    previous_ = SetCheckFailureHandler(&CaptureFailure);
  }
  void TearDown() override {
    SetCheckFailureHandler(previous_);
    g_failures = nullptr;
  }
  std::vector<CheckFailure> failures_;
  CheckFailureHandler previous_ = nullptr;
};

TEST_F(CheckTest, PassingCheckReportsNothing) {
  S2_CHECK(1 + 1 == 2) << "never streamed";
  EXPECT_TRUE(failures_.empty());
}

TEST_F(CheckTest, FailingCheckReportsConditionAndMessage) {
  const int line_before = __LINE__;
  S2_CHECK(2 + 2 == 5) << "arithmetic " << 42;
  ASSERT_EQ(failures_.size(), 1u);
  const CheckFailure& failure = failures_.front();
  EXPECT_EQ(failure.condition, "2 + 2 == 5");
  EXPECT_EQ(failure.message, "arithmetic 42");
  EXPECT_FALSE(failure.is_dcheck);
  EXPECT_EQ(failure.location.line, line_before + 1);
  EXPECT_NE(std::string(failure.location.file).find("diag_test.cc"),
            std::string::npos);
}

TEST_F(CheckTest, FailureWithoutMessageStillReports) {
  S2_CHECK(false);
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_EQ(failures_.front().condition, "false");
  EXPECT_TRUE(failures_.front().message.empty());
}

TEST_F(CheckTest, ConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  S2_CHECK(++evaluations > 0) << "passes";
  EXPECT_EQ(evaluations, 1);
  S2_CHECK(++evaluations < 0) << "fails";
  EXPECT_EQ(evaluations, 2);
  EXPECT_EQ(failures_.size(), 1u);
}

TEST_F(CheckTest, MessageIsNotBuiltOnSuccess) {
  int streamed = 0;
  auto expensive = [&streamed]() {
    ++streamed;
    return "detail";
  };
  // The ternary short-circuits the whole stream expression on success.
  S2_CHECK(true) << expensive();
  EXPECT_EQ(streamed, 0);
  S2_CHECK(false) << expensive();
  EXPECT_EQ(streamed, 1);
}

TEST_F(CheckTest, CheckOkReportsStatusText) {
  S2_CHECK_OK(Status::OK());
  EXPECT_TRUE(failures_.empty());
  S2_CHECK_OK(Status::NotFound("missing thing"));
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_.front().message.find("missing thing"), std::string::npos);
}

TEST_F(CheckTest, CheckOkAcceptsResult) {
  Result<int> good = 7;
  S2_CHECK_OK(good);
  EXPECT_TRUE(failures_.empty());
  Result<int> bad = Status::Corruption("broken bytes");
  S2_CHECK_OK(bad);
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_.front().message.find("broken bytes"), std::string::npos);
}

TEST_F(CheckTest, DcheckTagsReportWhenEnabled) {
#if S2_DIAG_DCHECK_IS_ON
  S2_DCHECK(false) << "debug-only";
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_TRUE(failures_.front().is_dcheck);
#else
  int evaluations = 0;
  S2_DCHECK(++evaluations > 0) << "compiled away";
  EXPECT_EQ(evaluations, 0);  // Condition must not run in release builds.
  EXPECT_TRUE(failures_.empty());
#endif
}

TEST_F(CheckTest, FormatContainsAllParts) {
  const CheckFailure failure{
      SourceLocation{"pager.cc", 42, "Validate"}, "pin_count >= 0",
      "frame 3", false};
  const std::string text = FormatCheckFailure(failure);
  EXPECT_NE(text.find("pager.cc:42"), std::string::npos);
  EXPECT_NE(text.find("S2_CHECK(pin_count >= 0)"), std::string::npos);
  EXPECT_NE(text.find("Validate"), std::string::npos);
  EXPECT_NE(text.find("frame 3"), std::string::npos);
}

TEST_F(CheckTest, DcheckFormatUsesDcheckName) {
  const CheckFailure failure{SourceLocation{"a.cc", 1, "f"}, "x", "", true};
  EXPECT_NE(FormatCheckFailure(failure).find("S2_DCHECK(x)"),
            std::string::npos);
}

TEST_F(CheckTest, HandlerSwapReturnsPrevious) {
  // SetUp installed CaptureFailure; swapping again must hand it back.
  CheckFailureHandler current = SetCheckFailureHandler(nullptr);
  EXPECT_EQ(current, &CaptureFailure);
  SetCheckFailureHandler(&CaptureFailure);
}

}  // namespace
}  // namespace s2::diag
