#include "burst/burst_table.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "diag/validate.h"

namespace s2::burst {

void BurstTable::Insert(ts::SeriesId series_id,
                        const std::vector<BurstRegion>& regions, int32_t offset) {
  for (const BurstRegion& region : regions) {
    BurstRecord record;
    record.series_id = series_id;
    record.start = region.start + offset;
    record.end = region.end + offset;
    record.avg_value = region.avg_value;
    records_.push_back(record);
    start_index_.Insert(record.start,
                        static_cast<uint32_t>(records_.size() - 1));
  }
}

size_t BurstTable::EraseSeries(ts::SeriesId series_id) {
  const auto first = std::remove_if(
      records_.begin(), records_.end(),
      [series_id](const BurstRecord& r) { return r.series_id == series_id; });
  const size_t erased = static_cast<size_t>(records_.end() - first);
  if (erased == 0) return 0;
  records_.erase(first, records_.end());
  start_index_ = storage::BPlusTree<int32_t, uint32_t>();
  for (size_t i = 0; i < records_.size(); ++i) {
    start_index_.Insert(records_[i].start, static_cast<uint32_t>(i));
  }
  return erased;
}

std::vector<BurstRecord> BurstTable::FindOverlappingCounted(
    const BurstRegion& query, size_t* scanned) const {
  // Index scan: startDate <= query.end; residual filter: endDate >= query.start.
  std::vector<BurstRecord> out;
  start_index_.Scan(std::numeric_limits<int32_t>::min(), query.end,
                    [&](int32_t /*start*/, uint32_t record_idx) {
                      ++*scanned;
                      const BurstRecord& record = records_[record_idx];
                      if (record.end >= query.start) out.push_back(record);
                      return true;
                    });
  return out;
}

std::vector<BurstRecord> BurstTable::FindOverlapping(const BurstRegion& query) const {
  size_t scanned = 0;
  std::vector<BurstRecord> out = FindOverlappingCounted(query, &scanned);
  last_scanned_.store(scanned, std::memory_order_relaxed);
  return out;
}

std::vector<BurstMatch> BurstTable::QueryByBurst(
    const std::vector<BurstRegion>& query_bursts, size_t k,
    ts::SeriesId exclude) const {
  std::unordered_map<ts::SeriesId, double> scores;
  size_t scanned_total = 0;
  for (const BurstRegion& q : query_bursts) {
    const std::vector<BurstRecord> overlapping =
        FindOverlappingCounted(q, &scanned_total);
    for (const BurstRecord& record : overlapping) {
      if (record.series_id == exclude) continue;
      const BurstRegion b = record.region();
      const double intersect = Intersect(q, b);
      if (intersect == 0.0) continue;
      scores[record.series_id] += intersect * ValueSimilarity(q, b);
    }
  }
  last_scanned_.store(scanned_total, std::memory_order_relaxed);

  std::vector<BurstMatch> matches;
  matches.reserve(scores.size());
  for (const auto& [id, score] : scores) matches.push_back({id, score});
  std::sort(matches.begin(), matches.end(), [](const BurstMatch& a, const BurstMatch& b) {
    if (a.bsim != b.bsim) return a.bsim > b.bsim;
    return a.series_id < b.series_id;  // Deterministic order for ties.
  });
  if (k > 0 && matches.size() > k) matches.resize(k);
  return matches;
}

Status BurstTable::Validate() const {
  diag::Validator v("BurstTable");
  for (size_t i = 0; i < records_.size(); ++i) {
    const BurstRecord& record = records_[i];
    v.Check(record.series_id != ts::kInvalidSeriesId)
        << "record " << i << " has an invalid series id";
    v.Check(record.start <= record.end)
        << "record " << i << " has an inverted interval [" << record.start
        << ", " << record.end << "]";
    v.Check(std::isfinite(record.avg_value))
        << "record " << i << " has a non-finite average burst value";
  }

  // The index and the heap must agree exactly: one index entry per record,
  // keyed by its start date, scanned back in non-decreasing key order.
  S2_RETURN_NOT_OK(start_index_.Validate());
  std::vector<uint8_t> indexed(records_.size(), 0);
  int32_t prev_key = std::numeric_limits<int32_t>::min();
  start_index_.Scan(
      std::numeric_limits<int32_t>::min(), std::numeric_limits<int32_t>::max(),
      [&](int32_t key, uint32_t record_idx) {
        v.Check(key >= prev_key)
            << "index scan keys decrease at " << key << " after " << prev_key;
        prev_key = key;
        if (record_idx >= records_.size()) {
          v.AddViolation("index entry points past the record heap (record " +
                         std::to_string(record_idx) + " of " +
                         std::to_string(records_.size()) + ")");
          return true;
        }
        v.Check(indexed[record_idx] == 0)
            << "record " << record_idx << " indexed twice";
        indexed[record_idx] = 1;
        v.Check(records_[record_idx].start == key)
            << "index key " << key << " != record " << record_idx
            << " start date " << records_[record_idx].start;
        return true;
      });
  for (size_t i = 0; i < indexed.size(); ++i) {
    v.Check(indexed[i] != 0) << "record " << i << " missing from the index";
  }
  return v.ToStatus();
}

}  // namespace s2::burst
