// The acceptance bar for s2::ckpt at the serving layer: recovery from
// snapshot + WAL tail must equal a full-WAL replay of the same history —
// same corpus bytes, same standing-query hysteresis state, same alert
// queue, same subscription-id counter — at shard counts {1,2,3}, RAM- and
// disk-resident, exact and incremental stream maintenance, and even when
// the checkpoint was written under a different shard count than the
// recovery. A MemEnv crash sweep over the checkpoint commit path proves
// every write/sync/rename boundary leaves a recoverable family.

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint_store.h"
#include "io/fault_env.h"
#include "io/mem_env.h"
#include "monitor/subscription.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"
#include "shard/sharded_engine.h"
#include "fuzz_util.h"

namespace s2::service {
namespace {

constexpr size_t kNumSeries = 18;
constexpr size_t kDays = 64;

ts::Corpus MakeCorpus() {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = 811;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions(bool incremental) {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 4;
  options.stream.incremental_maintenance = incremental;
  return options;
}

S2Server::Options ServerOptions(io::Env* env, const std::string& wal,
                                size_t shards) {
  S2Server::Options options;
  options.scheduler.threads = 1;
  options.compaction_threshold = 0;
  options.shards = shards;
  options.wal_path = wal;
  options.wal_env = env;
  options.checkpoint_enabled = true;
  // Keep the full history on disk so a full-replay reference can still be
  // built after the checkpoint; GC behavior has its own tests.
  options.checkpoint_gc = false;
  options.wal_rotate_bytes = 256;
  return options;
}

std::unique_ptr<S2Server> MustBuild(const S2Server::Options& options,
                                    bool incremental) {
  auto server = S2Server::Build(MakeCorpus(),
                                EngineOptions(incremental), options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).ValueOrDie();
}

std::unique_ptr<S2Server> MustRecover(const S2Server::Options& options,
                                      bool incremental) {
  auto server = S2Server::Recover(MakeCorpus(),
                                  EngineOptions(incremental), options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).ValueOrDie();
}

const ts::TimeSeries& SeriesOf(S2Server* server, ts::SeriesId id) {
  if (server->is_sharded()) return *server->sharded().Series(id).value();
  return server->engine().corpus().at(id);
}

std::vector<monitor::SubscriptionRegistry::Entry> EntriesOf(S2Server* server) {
  std::vector<monitor::SubscriptionRegistry::Entry> entries;
  if (server->is_sharded()) {
    for (size_t s = 0; s < server->sharded().num_shards(); ++s) {
      const auto shard = server->sharded().shard(s).monitor_registry().List();
      entries.insert(entries.end(), shard.begin(), shard.end());
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.sub.id < b.sub.id; });
  } else {
    entries = server->engine().monitor_registry().List();
  }
  return entries;
}

/// The interleaved workload: subscriptions of all three kinds, appends
/// that cross burst thresholds, a durable ack, a compaction, and (when
/// `checkpoint_midway`) a coordinated checkpoint in the middle — so the
/// recovered state mixes snapshot-carried and tail-replayed verbs.
void DriveWorkload(S2Server* server, bool checkpoint_midway) {
  monitor::Subscription burst;
  burst.kind = monitor::SubscriptionKind::kBurstThreshold;
  burst.series = 0;
  burst.burst.window = 7;
  burst.burst.enter_ratio = 1.3;
  burst.burst.exit_ratio = 1.1;
  ASSERT_TRUE(server->Subscribe(burst).ok());
  monitor::Subscription period;
  period.kind = monitor::SubscriptionKind::kPeriodicityChange;
  period.series = 1;
  ASSERT_TRUE(server->Subscribe(period).ok());
  monitor::Subscription watch;
  watch.kind = monitor::SubscriptionKind::kSimilarityWatch;
  watch.series = 2;
  watch.similarity.radius = 1.0;
  watch.similarity.query = SeriesOf(server, 2).values;
  ASSERT_TRUE(server->Subscribe(watch).ok());

  // Hot streak on the burst-watched series: fires kBurstBegin, later ends.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server->AppendPoint(0, 5000.0 + 10 * i).ok());
    ASSERT_TRUE(server->AppendPoint(1, 3.0 * ((i % 7) == 0)).ok());
    ASSERT_TRUE(server->AppendPoint(2, 40.0 + i).ok());
    ASSERT_TRUE(server->AppendPoint(static_cast<ts::SeriesId>(3 + i % 5),
                                    7.0 + 0.25 * i)
                    .ok());
  }
  // Ack the fired prefix durably (acks are monitor-WAL verbs; delivery
  // itself is not, so the workload never Polls — both replays must agree
  // on every queue counter).
  const uint64_t fired = server->monitor_info().next_seq;
  if (fired > 2) ASSERT_TRUE(server->AckAlerts(fired - 2).ok());
  ASSERT_TRUE(server->Compact().ok());

  if (checkpoint_midway) {
    const Status checkpointed = server->Checkpoint();
    ASSERT_TRUE(checkpointed.ok()) << checkpointed.ToString();
  }

  // Tail verbs past the anchor: a fourth subscription, the streak's end,
  // and a retirement.
  monitor::Subscription late;
  late.kind = monitor::SubscriptionKind::kBurstThreshold;
  late.series = 3;
  late.burst.window = 5;
  late.burst.enter_ratio = 1.2;
  late.burst.exit_ratio = 1.05;
  auto late_id = server->Subscribe(late);
  ASSERT_TRUE(late_id.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server->AppendPoint(0, 1.0).ok());
    ASSERT_TRUE(server->AppendPoint(3, i < 5 ? 900.0 : 1.0).ok());
    ASSERT_TRUE(server->AppendPoint(2, 40.0 - i).ok());
  }
  ASSERT_TRUE(server->Unsubscribe(2).ok());  // The similarity watch.
}

/// Recovered-vs-reference equality. Corpus, registry, queue and counter
/// state are bitwise regardless of maintenance mode; derived features are
/// additionally compared through Euclidean k-NN, which the engine
/// contract keeps exact even under incremental maintenance.
void ExpectSameState(S2Server* want, S2Server* got) {
  for (ts::SeriesId id = 0; id < kNumSeries; ++id) {
    const ts::TimeSeries& a = SeriesOf(want, id);
    const ts::TimeSeries& b = SeriesOf(got, id);
    EXPECT_EQ(a.name, b.name) << "id " << id;
    EXPECT_EQ(a.start_day, b.start_day) << "id " << id;
    EXPECT_EQ(a.values, b.values) << "id " << id;
  }
  const auto want_entries = EntriesOf(want);
  const auto got_entries = EntriesOf(got);
  ASSERT_EQ(want_entries.size(), got_entries.size());
  for (size_t i = 0; i < want_entries.size(); ++i) {
    const auto& a = want_entries[i];
    const auto& b = got_entries[i];
    EXPECT_EQ(a.sub.id, b.sub.id);
    EXPECT_EQ(a.sub.kind, b.sub.kind);
    EXPECT_EQ(a.sub.series, b.sub.series);
    EXPECT_EQ(a.sub.burst.window, b.sub.burst.window);
    EXPECT_EQ(a.sub.similarity.query, b.sub.similarity.query);
    EXPECT_EQ(a.engaged, b.engaged) << "sub " << a.sub.id;
    EXPECT_EQ(a.bin, b.bin) << "sub " << a.sub.id;
  }
  const auto want_info = want->monitor_info();
  const auto got_info = got->monitor_info();
  EXPECT_EQ(want_info.active_subscriptions, got_info.active_subscriptions);
  EXPECT_EQ(want_info.queue_depth, got_info.queue_depth);
  EXPECT_EQ(want_info.next_seq, got_info.next_seq);
  EXPECT_EQ(want_info.acked_upto, got_info.acked_upto);
  EXPECT_EQ(want_info.any_acked, got_info.any_acked);
  EXPECT_EQ(want_info.alerts_fired, got_info.alerts_fired);
  EXPECT_EQ(want_info.alerts_dropped, got_info.alerts_dropped);
  EXPECT_EQ(want_info.alerts_acked, got_info.alerts_acked);

  // The un-acked queue drains identically.
  const auto want_alerts = want->PollAlerts(1000);
  const auto got_alerts = got->PollAlerts(1000);
  ASSERT_EQ(want_alerts.size(), got_alerts.size());
  for (size_t i = 0; i < want_alerts.size(); ++i) {
    EXPECT_EQ(want_alerts[i].seq, got_alerts[i].seq);
    EXPECT_EQ(want_alerts[i].subscription, got_alerts[i].subscription);
    EXPECT_EQ(want_alerts[i].kind, got_alerts[i].kind);
    EXPECT_EQ(want_alerts[i].series, got_alerts[i].series);
    EXPECT_EQ(want_alerts[i].day, got_alerts[i].day);
    EXPECT_EQ(want_alerts[i].value, got_alerts[i].value);
    EXPECT_EQ(want_alerts[i].threshold, got_alerts[i].threshold);
  }

  // The id counter recovered too: the next subscription gets the same id.
  monitor::Subscription probe;
  probe.kind = monitor::SubscriptionKind::kPeriodicityChange;
  probe.series = 5;
  auto want_id = want->Subscribe(probe);
  auto got_id = got->Subscribe(probe);
  ASSERT_TRUE(want_id.ok() && got_id.ok());
  EXPECT_EQ(*want_id, *got_id);

  // Euclidean k-NN over the recovered features (exact in every mode).
  for (ts::SeriesId id = 0; id < kNumSeries; id += 5) {
    QueryRequest request;
    request.kind = RequestKind::kSimilarTo;
    request.id = id;
    request.k = 5;
    const auto want_response = want->Execute(request);
    const auto got_response = got->Execute(request);
    ASSERT_TRUE(want_response.status.ok() && got_response.status.ok());
    ASSERT_EQ(want_response.neighbors.size(), got_response.neighbors.size());
    for (size_t i = 0; i < want_response.neighbors.size(); ++i) {
      EXPECT_EQ(want_response.neighbors[i].id, got_response.neighbors[i].id);
      EXPECT_EQ(want_response.neighbors[i].distance,
                got_response.neighbors[i].distance)
          << "id " << id << " rank " << i;
    }
  }
}

struct Topology {
  size_t shards;
  bool incremental;
  bool on_disk;
};

class CkptEquivalenceTest : public ::testing::TestWithParam<Topology> {};

TEST_P(CkptEquivalenceTest, SnapshotPlusTailEqualsFullReplay) {
  const Topology topo = GetParam();
  io::MemEnv mem;
  std::string wal = "ckpt_eq/wal";
  io::Env* env = &mem;
  std::filesystem::path dir;
  if (topo.on_disk) {
    dir = std::filesystem::temp_directory_path() /
          ("s2_ckpt_eq_" + std::to_string(topo.shards) +
           (topo.incremental ? "i" : "e"));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    wal = (dir / "wal").string();
    env = nullptr;  // io::Env::Default()
  }
  const S2Server::Options options = ServerOptions(env, wal, topo.shards);

  uint64_t total_appends = 0;
  uint64_t anchor = 0;
  {
    std::unique_ptr<S2Server> live = MustBuild(options, topo.incremental);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    DriveWorkload(live.get(), /*checkpoint_midway=*/true);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    total_appends = live->stream_info().append_count;
    anchor = live->checkpoint_info().anchor_appends;
    EXPECT_GT(anchor, 0u);
    EXPECT_LT(anchor, total_appends);
    live->Shutdown();
  }

  // Recovery loads the snapshot and replays only the tail...
  std::unique_ptr<S2Server> recovered = MustRecover(options, topo.incremental);
  EXPECT_TRUE(recovered->checkpoint_info().recovered_from_checkpoint);
  EXPECT_FALSE(recovered->checkpoint_info().recovered_from_fallback);
  EXPECT_EQ(recovered->checkpoint_info().recovery_anchor_appends, anchor);
  EXPECT_EQ(recovered->stream_info().replayed_records, total_appends - anchor);

  // ...while the reference replays the whole log from scratch.
  S2Server::Options full = options;
  full.checkpoint_enabled = false;
  std::unique_ptr<S2Server> replayed = MustBuild(full, topo.incremental);
  EXPECT_EQ(replayed->stream_info().replayed_records, total_appends);

  ExpectSameState(replayed.get(), recovered.get());
  if (topo.on_disk) std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, CkptEquivalenceTest,
    ::testing::Values(Topology{1, false, false}, Topology{2, false, false},
                      Topology{3, false, false}, Topology{1, true, false},
                      Topology{3, true, false}, Topology{1, false, true},
                      Topology{2, true, true}),
    [](const ::testing::TestParamInfo<Topology>& info) {
      return "shards" + std::to_string(info.param.shards) +
             (info.param.incremental ? "_incremental" : "_exact") +
             (info.param.on_disk ? "_disk" : "_ram");
    });

TEST(CkptRecoveryTest, CheckpointWrittenAtOneShardCountRecoversAtAnother) {
  // The snapshot stores the corpus in global id order, so the same
  // checkpoint family must recover bit-identically under any topology —
  // the per-shard checksum cross-check simply doesn't apply.
  io::MemEnv env;
  S2Server::Options at2 = ServerOptions(&env, "xtopo/wal", 2);
  {
    std::unique_ptr<S2Server> live = MustBuild(at2, false);
    DriveWorkload(live.get(), /*checkpoint_midway=*/true);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    live->Shutdown();
  }
  S2Server::Options full = at2;
  full.checkpoint_enabled = false;
  std::unique_ptr<S2Server> reference = MustBuild(full, false);
  for (size_t shards : {1u, 3u}) {
    SCOPED_TRACE("recover at " + std::to_string(shards) + " shards");
    S2Server::Options other = at2;
    other.shards = shards;
    std::unique_ptr<S2Server> recovered = MustRecover(other, false);
    EXPECT_TRUE(recovered->checkpoint_info().recovered_from_checkpoint);
    // PollAlerts/Subscribe probes in ExpectSameState mutate the reference,
    // so rebuild it per topology.
    std::unique_ptr<S2Server> fresh = MustBuild(full, false);
    ExpectSameState(fresh.get(), recovered.get());
  }
  (void)reference;
}

TEST(CkptRecoveryTest, CorruptNewestSnapshotFallsBackOneGeneration) {
  io::MemEnv env;
  const S2Server::Options options = ServerOptions(&env, "fb/wal", 1);
  {
    std::unique_ptr<S2Server> live = MustBuild(options, false);
    DriveWorkload(live.get(), /*checkpoint_midway=*/true);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    // A second checkpoint: generation 2 current, generation 1 fallback.
    ASSERT_TRUE(live->Checkpoint().ok());
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(live->AppendPoint(1, 2.0).ok());
    live->Shutdown();
  }
  // Damage generation 2's snapshot payload.
  {
    auto file = env.Open("fb/wal.ckpt.2", io::OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    char byte = 0;
    ASSERT_TRUE((*file)->ReadAt(&byte, 1, 80).ok());
    byte ^= 0x5a;
    ASSERT_TRUE((*file)->WriteAt(&byte, 1, 80).ok());
  }
  std::unique_ptr<S2Server> recovered = MustRecover(options, false);
  EXPECT_TRUE(recovered->checkpoint_info().recovered_from_checkpoint);
  EXPECT_TRUE(recovered->checkpoint_info().recovered_from_fallback);

  S2Server::Options full = options;
  full.checkpoint_enabled = false;
  std::unique_ptr<S2Server> replayed = MustBuild(full, false);
  ExpectSameState(replayed.get(), recovered.get());
}

TEST(CkptRecoveryTest, CheckpointCommitSurvivesACrashAtEveryBoundary) {
  // Store-level crash sweep: generation A committed cleanly, generation B
  // attempted under a crash plan. After "reboot" the family must load as
  // exactly A or B — never torn, never unloadable.
  const auto make_snapshot = [](uint32_t tag) {
    ckpt::EngineSnapshot snapshot;
    snapshot.anchor_appends = 10 * tag;
    snapshot.next_subscription_id = tag;
    ts::TimeSeries series;
    series.name = "s";
    series.start_day = static_cast<int32_t>(tag);
    series.values = {1.0 * tag, 2.0 * tag};
    snapshot.corpus.push_back(std::move(series));
    return snapshot;
  };
  fuzz::CrashSweep(
      [&](io::Env* env) {
        ckpt::CheckpointStore store(env, "sweep/base");
        ASSERT_TRUE(store.Commit(make_snapshot(1), 1, {}, {{0, 0}}, {{0, 0}},
                                 nullptr)
                        .ok());
      },
      [&](io::Env* env) {
        ckpt::CheckpointStore store(env, "sweep/base");
        return store.Commit(make_snapshot(2), 1, {}, {{0, 0}}, {{0, 0}},
                            nullptr);
      },
      [&](io::Env* env, bool definitely_b) {
        ckpt::CheckpointStore store(env, "sweep/base");
        auto loaded = store.Load();
        ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
        const uint64_t anchor = loaded->snapshot.anchor_appends;
        if (definitely_b) {
          EXPECT_EQ(anchor, 20u);
        } else {
          EXPECT_TRUE(anchor == 10 || anchor == 20) << anchor;
        }
        // GC after the crash must leave the loadable generation intact.
        ASSERT_TRUE(store.GarbageCollectSnapshots(loaded->manifest).ok());
        auto again = store.Load();
        ASSERT_TRUE(again.ok()) << again.status().ToString();
        EXPECT_EQ(again->snapshot.anchor_appends, anchor);
      });
}

}  // namespace
}  // namespace s2::service
