#ifndef S2_COMMON_RNG_H_
#define S2_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace s2 {

/// Deterministic random-number generator.
///
/// All randomness in the library (workload synthesis, sampling, benchmarks,
/// tests) flows through this wrapper so that every run is reproducible from
/// an explicit 64-bit seed. Not thread-safe; use one instance per thread.
class Rng {
 public:
  /// Creates a generator seeded with `seed`.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Normal (Gaussian) with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with rate `lambda` (mean 1/lambda).
  double Exponential(double lambda) {
    return std::exponential_distribution<double>(lambda)(engine_);
  }

  /// Poisson with the given mean.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Bernoulli trial: true with probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// A fresh seed suitable for constructing an independent child generator.
  uint64_t NextSeed() { return engine_(); }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// The underlying engine, for use with <algorithm> utilities.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace s2

#endif  // S2_COMMON_RNG_H_
