#include "service/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <thread>

#include <gtest/gtest.h>

namespace s2::service {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::promise<void> done;
  ASSERT_TRUE(pool.Submit([&done] { done.set_value(); }));
  done.get_future().wait();
}

TEST(ThreadPoolTest, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> gate{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      gate.fetch_add(1);
      // Hold every worker until all four tasks are in flight, forcing each
      // onto a distinct thread.
      while (gate.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Shutdown();
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  // The first task blocks the only worker so the rest stay queued.
  pool.Submit([&ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ran.fetch_add(1);
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();  // Graceful: everything already queued still runs.
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, DestructorJoinsWithoutExplicitShutdown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool drains and joins.
  EXPECT_EQ(ran.load(), 10);
}

}  // namespace
}  // namespace s2::service
