#ifndef S2_COMMON_STATUS_H_
#define S2_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace s2 {

/// Machine-readable classification of an error.
///
/// The library does not throw exceptions across public API boundaries;
/// fallible operations return a `Status` (or a `Result<T>`, see result.h)
/// carrying one of these codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIoError = 5,
  kInternal = 6,
  // Serving-layer codes (src/service): admission control and request
  // lifecycle outcomes of the concurrent query server.
  kUnavailable = 7,       ///< Transient overload/shutdown; retrying may work.
  kDeadlineExceeded = 8,  ///< The request's deadline passed before completion.
  kCancelled = 9,         ///< The caller cancelled the request.
  // Diagnostics-layer code (src/diag): persistent state failed a structural
  // check — bad magic, out-of-range pointer, broken ordering invariant.
  // Unlike kIoError (the *transport* failed) this means the *bytes* are
  // wrong; retrying will not help and the image should be quarantined.
  kCorruption = 10,
  // I/O-layer code (src/io): the transport failed in a way that is expected
  // to be temporary — an interrupted syscall (EINTR), a would-block
  // (EAGAIN), an injected transient fault. Unlike kIoError, retrying the
  // same operation has a real chance of succeeding; resilience::RetryPolicy
  // keys off this code (see IsRetryable below).
  kIoTransient = 11,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK or an error code plus message.
///
/// `Status` is cheap to copy in the OK case (a single pointer compare against
/// null); error states allocate a small shared state. Typical use:
///
/// ```
/// Status s = store.Open(path);
/// if (!s.ok()) return s;
/// ```
///
/// The class itself is `[[nodiscard]]`: every function returning a `Status`
/// must have its result checked (or explicitly discarded with a `(void)`
/// cast). Combined with `-Werror=unused-result` this makes silently dropped
/// errors a compile failure.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// `StatusCode::kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message);

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status TransientIo(std::string message) {
    return Status(StatusCode::kIoTransient, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// The error code (`kOk` when `ok()`).
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message (empty when `ok()`).
  const std::string& message() const;

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Two statuses are equal when their codes and messages are equal.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null iff OK. shared_ptr keeps Status copyable without re-allocating.
  std::shared_ptr<const State> state_;
};

/// True when retrying the failed operation has a real chance of succeeding:
/// the error is an overloaded-but-alive server (`kUnavailable`) or a
/// transient transport fault (`kIoTransient`). Hard I/O errors, corruption
/// and semantic errors (bad argument, not found, ...) are not retryable —
/// re-running the same operation would deterministically fail again.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIoTransient;
}

}  // namespace s2

/// Propagates a non-OK `Status` from the current function.
#define S2_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::s2::Status _s2_status = (expr);          \
    if (!_s2_status.ok()) return _s2_status;   \
  } while (false)

#endif  // S2_COMMON_STATUS_H_
