#include "repr/bounds.h"

#include <cmath>
#include <numbers>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/stats.h"
#include "querylog/corpus_generator.h"

namespace s2::repr {
namespace {

std::vector<double> RandomWalk(size_t n, Rng* rng) {
  std::vector<double> x(n);
  double v = 0.0;
  for (size_t i = 0; i < n; ++i) {
    v += rng->Normal(0, 1);
    x[i] = v;
  }
  return dsp::Standardize(x);
}

std::vector<double> PeriodicMix(size_t n, Rng* rng) {
  std::vector<double> x(n);
  const double p1 = rng->Uniform(3, 40);
  const double p2 = rng->Uniform(3, 40);
  const double a1 = rng->Uniform(0.5, 3);
  const double a2 = rng->Uniform(0.5, 3);
  const double phase1 = rng->Uniform(0, 2 * std::numbers::pi);
  const double phase2 = rng->Uniform(0, 2 * std::numbers::pi);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = a1 * std::sin(2 * std::numbers::pi * t / p1 + phase1) +
           a2 * std::sin(2 * std::numbers::pi * t / p2 + phase2) +
           rng->Normal(0, 0.4);
  }
  return dsp::Standardize(x);
}

HalfSpectrum SpectrumOf(const std::vector<double>& x) {
  auto s = HalfSpectrum::FromSeries(x);
  EXPECT_TRUE(s.ok());
  return std::move(s).ValueOrDie();
}

ReprKind KindFor(BoundMethod method) {
  switch (method) {
    case BoundMethod::kGemini:
      return ReprKind::kFirstKMiddle;
    case BoundMethod::kWang:
      return ReprKind::kFirstKError;
    case BoundMethod::kBestMin:
      return ReprKind::kBestKMiddle;
    case BoundMethod::kBestError:
    case BoundMethod::kBestMinError:
    case BoundMethod::kBestMinErrorLiteral:
    case BoundMethod::kBestMinErrorWaterfill:
      return ReprKind::kBestKError;
  }
  return ReprKind::kBestKError;
}

// ---------------------------------------------------------------------------
// Property suite: every sound method must bracket the true distance on
// randomized data of several signal classes, lengths and budgets.
// ---------------------------------------------------------------------------

using SandwichParam = std::tuple<BoundMethod, size_t /*n*/, size_t /*c*/>;

class BoundsSandwichTest : public ::testing::TestWithParam<SandwichParam> {};

TEST_P(BoundsSandwichTest, LowerAndUpperBracketTrueDistance) {
  const auto [method, n, c] = GetParam();
  const ReprKind kind = KindFor(method);
  Rng rng(static_cast<uint64_t>(n * 1000 + c));
  const double tol = 1e-7;

  for (int trial = 0; trial < 60; ++trial) {
    const bool periodic = trial % 2 == 0;
    const std::vector<double> a =
        periodic ? PeriodicMix(n, &rng) : RandomWalk(n, &rng);
    const std::vector<double> b =
        trial % 3 == 0 ? RandomWalk(n, &rng) : PeriodicMix(n, &rng);
    const HalfSpectrum query = SpectrumOf(a);
    const HalfSpectrum target = SpectrumOf(b);
    auto compressed = CompressedSpectrum::Compress(target, kind, c);
    ASSERT_TRUE(compressed.ok());
    auto bounds = ComputeBounds(query, *compressed, method);
    ASSERT_TRUE(bounds.ok());

    const double truth = *dsp::Euclidean(a, b);
    EXPECT_LE(bounds->lower, truth + tol)
        << BoundMethodToString(method) << " trial " << trial << " n=" << n
        << " c=" << c;
    if (std::isfinite(bounds->upper)) {
      EXPECT_GE(bounds->upper, truth - tol)
          << BoundMethodToString(method) << " trial " << trial;
    }
    EXPECT_LE(bounds->lower, bounds->upper + tol);
    EXPECT_GE(bounds->lower, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSoundMethods, BoundsSandwichTest,
    ::testing::Combine(
        ::testing::Values(BoundMethod::kGemini, BoundMethod::kWang,
                          BoundMethod::kBestMin, BoundMethod::kBestError,
                          BoundMethod::kBestMinError,
                          BoundMethod::kBestMinErrorWaterfill),
        ::testing::Values(128u, 365u, 1024u),
        ::testing::Values(8u, 16u, 32u)));

// ---------------------------------------------------------------------------
// Tightness-ordering properties.
// ---------------------------------------------------------------------------

struct PreparedPair {
  std::vector<double> a;
  std::vector<double> b;
  double truth;
};

std::vector<PreparedPair> MakePairs(size_t n, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<PreparedPair> pairs;
  for (size_t i = 0; i < count; ++i) {
    PreparedPair p;
    p.a = PeriodicMix(n, &rng);
    p.b = i % 2 == 0 ? PeriodicMix(n, &rng) : RandomWalk(n, &rng);
    p.truth = *dsp::Euclidean(p.a, p.b);
    pairs.push_back(std::move(p));
  }
  return pairs;
}

DistanceBounds BoundsFor(const PreparedPair& p, BoundMethod method, size_t c) {
  const HalfSpectrum query = SpectrumOf(p.a);
  auto compressed =
      CompressedSpectrum::Compress(SpectrumOf(p.b), KindFor(method), c);
  EXPECT_TRUE(compressed.ok());
  auto bounds = ComputeBounds(query, *compressed, method);
  EXPECT_TRUE(bounds.ok());
  return *bounds;
}

TEST(BoundsOrderingTest, BestMinErrorDominatesBestMinAndBestError) {
  // BestMinError uses strictly more information than either BestMin or
  // BestError, so its bracket must never be looser.
  const auto pairs = MakePairs(365, 40, 101);
  for (const PreparedPair& p : pairs) {
    const DistanceBounds combined = BoundsFor(p, BoundMethod::kBestMinError, 16);
    const DistanceBounds error_only = BoundsFor(p, BoundMethod::kBestError, 16);
    EXPECT_GE(combined.lower, error_only.lower - 1e-9);
    EXPECT_LE(combined.upper, error_only.upper + 1e-9);
  }
}

TEST(BoundsOrderingTest, WaterfillUpperIsTightestSound) {
  const auto pairs = MakePairs(365, 40, 102);
  for (const PreparedPair& p : pairs) {
    const DistanceBounds combined = BoundsFor(p, BoundMethod::kBestMinError, 16);
    const DistanceBounds waterfill =
        BoundsFor(p, BoundMethod::kBestMinErrorWaterfill, 16);
    EXPECT_LE(waterfill.upper, combined.upper + 1e-7);
    EXPECT_GE(waterfill.upper, p.truth - 1e-7);
  }
}

TEST(BoundsOrderingTest, MoreCoefficientsTightenBoundsOnAverage) {
  const auto pairs = MakePairs(1024, 30, 103);
  for (BoundMethod method :
       {BoundMethod::kWang, BoundMethod::kBestMinError}) {
    double lb8 = 0.0;
    double lb32 = 0.0;
    double ub8 = 0.0;
    double ub32 = 0.0;
    for (const PreparedPair& p : pairs) {
      const DistanceBounds small = BoundsFor(p, method, 8);
      const DistanceBounds large = BoundsFor(p, method, 32);
      lb8 += small.lower;
      lb32 += large.lower;
      ub8 += small.upper;
      ub32 += large.upper;
    }
    EXPECT_GE(lb32, lb8) << BoundMethodToString(method);
    EXPECT_LE(ub32, ub8) << BoundMethodToString(method);
  }
}

TEST(BoundsOrderingTest, BestMethodsBeatFirstMethodsOnPeriodicData) {
  // The paper's headline: on periodic sequences the best-coefficient lower
  // bounds are cumulatively tighter than the first-coefficient ones.
  const auto pairs = MakePairs(1024, 50, 104);
  double cumulative_wang = 0.0;
  double cumulative_bme = 0.0;
  double cumulative_truth = 0.0;
  for (const PreparedPair& p : pairs) {
    cumulative_wang += BoundsFor(p, BoundMethod::kWang, 16).lower;
    cumulative_bme += BoundsFor(p, BoundMethod::kBestMinError, 16).lower;
    cumulative_truth += p.truth;
  }
  EXPECT_GT(cumulative_bme, cumulative_wang);
  EXPECT_LE(cumulative_bme, cumulative_truth);
}

// ---------------------------------------------------------------------------
// Edge cases and validation.
// ---------------------------------------------------------------------------

TEST(BoundsValidationTest, IncompatibleMethodRejected) {
  Rng rng(7);
  const HalfSpectrum s = SpectrumOf(PeriodicMix(64, &rng));
  auto gem = CompressedSpectrum::Compress(s, ReprKind::kFirstKMiddle, 4);
  ASSERT_TRUE(gem.ok());
  EXPECT_FALSE(ComputeBounds(s, *gem, BoundMethod::kWang).ok());
  EXPECT_FALSE(ComputeBounds(s, *gem, BoundMethod::kBestMin).ok());
  EXPECT_FALSE(ComputeBounds(s, *gem, BoundMethod::kBestMinError).ok());
  EXPECT_TRUE(ComputeBounds(s, *gem, BoundMethod::kGemini).ok());
}

TEST(BoundsValidationTest, LengthMismatchRejected) {
  Rng rng(8);
  const HalfSpectrum a = SpectrumOf(PeriodicMix(64, &rng));
  const HalfSpectrum b = SpectrumOf(PeriodicMix(128, &rng));
  auto compressed = CompressedSpectrum::Compress(b, ReprKind::kBestKError, 8);
  ASSERT_TRUE(compressed.ok());
  EXPECT_FALSE(ComputeBounds(a, *compressed, BoundMethod::kBestMinError).ok());
}

TEST(BoundsValidationTest, SelfDistanceBracketsZero) {
  Rng rng(9);
  const std::vector<double> x = PeriodicMix(256, &rng);
  const HalfSpectrum s = SpectrumOf(x);
  for (BoundMethod method :
       {BoundMethod::kWang, BoundMethod::kBestError, BoundMethod::kBestMinError,
        BoundMethod::kBestMinErrorWaterfill}) {
    auto compressed = CompressedSpectrum::Compress(s, KindFor(method), 16);
    ASSERT_TRUE(compressed.ok());
    auto bounds = ComputeBounds(s, *compressed, method);
    ASSERT_TRUE(bounds.ok());
    EXPECT_NEAR(bounds->lower, 0.0, 1e-7) << BoundMethodToString(method);
    EXPECT_GE(bounds->upper, 0.0);
  }
}

TEST(BoundsValidationTest, GeminiUpperIsInfinite) {
  Rng rng(10);
  const HalfSpectrum s = SpectrumOf(PeriodicMix(64, &rng));
  auto gem = CompressedSpectrum::Compress(s, ReprKind::kFirstKMiddle, 4);
  ASSERT_TRUE(gem.ok());
  auto bounds = ComputeBounds(s, *gem, BoundMethod::kGemini);
  ASSERT_TRUE(bounds.ok());
  EXPECT_TRUE(std::isinf(bounds->upper));
}

TEST(BoundsValidationTest, MethodNamesAreStable) {
  EXPECT_EQ(BoundMethodToString(BoundMethod::kGemini), "GEMINI");
  EXPECT_EQ(BoundMethodToString(BoundMethod::kBestMinError), "BestMinError");
}

// The literal Figure 9 pseudocode is close to the sound variant on typical
// data (its corner cases are rare); verify it runs and roughly agrees, and
// document (not assert) soundness.
TEST(BoundsLiteralTest, LiteralVariantComputesAndIsClose) {
  const auto pairs = MakePairs(365, 20, 105);
  for (const PreparedPair& p : pairs) {
    const DistanceBounds sound = BoundsFor(p, BoundMethod::kBestMinError, 16);
    const DistanceBounds literal =
        BoundsFor(p, BoundMethod::kBestMinErrorLiteral, 16);
    EXPECT_NEAR(literal.lower, sound.lower, 0.6 * (1.0 + sound.lower));
    EXPECT_GT(literal.upper, 0.0);
  }
}

// Realistic end-to-end check on synthesized query-log data.
TEST(BoundsIntegrationTest, QueryLogCorpusSandwich) {
  qlog::CorpusSpec spec;
  spec.num_series = 40;
  spec.n_days = 512;
  spec.seed = 77;
  auto corpus = qlog::GenerateCorpus(spec);
  ASSERT_TRUE(corpus.ok());
  auto queries = qlog::GenerateQueries(spec, 5);
  ASSERT_TRUE(queries.ok());
  for (const auto& query : *queries) {
    const std::vector<double> qz = dsp::Standardize(query.values);
    const HalfSpectrum qs = SpectrumOf(qz);
    for (const auto& member : corpus->series()) {
      const std::vector<double> mz = dsp::Standardize(member.values);
      auto compressed =
          CompressedSpectrum::Compress(SpectrumOf(mz), ReprKind::kBestKError, 16);
      ASSERT_TRUE(compressed.ok());
      auto bounds = ComputeBounds(qs, *compressed, BoundMethod::kBestMinError);
      ASSERT_TRUE(bounds.ok());
      const double truth = *dsp::Euclidean(qz, mz);
      EXPECT_LE(bounds->lower, truth + 1e-7);
      EXPECT_GE(bounds->upper, truth - 1e-7);
    }
  }
}

}  // namespace
}  // namespace s2::repr
