#include "storage/pager.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

namespace s2::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class PagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("s2_pager_" +
                     std::string(::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name()) +
                     ".db");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PagerTest, OpenValidates) {
  EXPECT_FALSE(Pager::Open(path_, 1).ok());
  EXPECT_FALSE(Pager::Open("/no/such/dir/pager.db", 4).ok());
}

TEST_F(PagerTest, AllocateAndFetch) {
  auto pager = Pager::Open(path_, 4);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->num_pages(), 0u);

  char* data = nullptr;
  auto id = (*pager)->Allocate(&data);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  ASSERT_NE(data, nullptr);
  // New pages arrive zeroed.
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(data[i], 0);
  std::memcpy(data, "hello", 5);
  ASSERT_TRUE((*pager)->Unpin(*id, /*dirty=*/true).ok());

  auto fetched = (*pager)->Fetch(*id);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(std::memcmp(*fetched, "hello", 5), 0);
  ASSERT_TRUE((*pager)->Unpin(*id, false).ok());
}

TEST_F(PagerTest, FetchOutOfRange) {
  auto pager = Pager::Open(path_, 4);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->Fetch(0).status().code(), StatusCode::kOutOfRange);
}

TEST_F(PagerTest, UnpinValidation) {
  auto pager = Pager::Open(path_, 4);
  ASSERT_TRUE(pager.ok());
  char* data = nullptr;
  auto id = (*pager)->Allocate(&data);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*pager)->Unpin(*id, true).ok());
  // Double unpin is an error.
  EXPECT_FALSE((*pager)->Unpin(*id, false).ok());
  // Unpin of a page that was never fetched.
  EXPECT_FALSE((*pager)->Unpin(999, false).ok());
}

TEST_F(PagerTest, EvictionWritesBackDirtyPages) {
  auto pager = Pager::Open(path_, 2);
  ASSERT_TRUE(pager.ok());
  // Create 6 pages, each stamped with its id, with a 2-frame pool.
  for (uint32_t p = 0; p < 6; ++p) {
    char* data = nullptr;
    auto id = (*pager)->Allocate(&data);
    ASSERT_TRUE(id.ok());
    std::memcpy(data, &p, sizeof(p));
    ASSERT_TRUE((*pager)->Unpin(*id, true).ok());
  }
  // Read them all back; every page must carry its stamp despite evictions.
  for (uint32_t p = 0; p < 6; ++p) {
    auto data = (*pager)->Fetch(p);
    ASSERT_TRUE(data.ok());
    uint32_t stamp = 0;
    std::memcpy(&stamp, *data, sizeof(stamp));
    EXPECT_EQ(stamp, p);
    ASSERT_TRUE((*pager)->Unpin(p, false).ok());
  }
  EXPECT_GT((*pager)->disk_writes(), 0u);
  EXPECT_GT((*pager)->disk_reads(), 0u);
}

TEST_F(PagerTest, PinnedPagesAreNotEvicted) {
  auto pager = Pager::Open(path_, 2);
  ASSERT_TRUE(pager.ok());
  char* a = nullptr;
  char* b = nullptr;
  auto id_a = (*pager)->Allocate(&a);
  auto id_b = (*pager)->Allocate(&b);
  ASSERT_TRUE(id_a.ok());
  ASSERT_TRUE(id_b.ok());
  // Both frames pinned: a third page cannot be brought in.
  char* c = nullptr;
  EXPECT_EQ((*pager)->Allocate(&c).status().code(), StatusCode::kInternal);
  ASSERT_TRUE((*pager)->Unpin(*id_a, false).ok());
  // Now there is a victim.
  auto id_c = (*pager)->Allocate(&c);
  EXPECT_TRUE(id_c.ok());
  ASSERT_TRUE((*pager)->Unpin(*id_b, false).ok());
  ASSERT_TRUE((*pager)->Unpin(*id_c, false).ok());
}

TEST_F(PagerTest, PersistenceAcrossReopen) {
  {
    auto pager = Pager::Open(path_, 4);
    ASSERT_TRUE(pager.ok());
    char* data = nullptr;
    auto id = (*pager)->Allocate(&data);
    ASSERT_TRUE(id.ok());
    std::memcpy(data, "durable", 7);
    ASSERT_TRUE((*pager)->Unpin(*id, true).ok());
    ASSERT_TRUE((*pager)->FlushAll().ok());
  }
  auto reopened = Pager::Open(path_, 4);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_pages(), 1u);
  auto data = (*reopened)->Fetch(0);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::memcmp(*data, "durable", 7), 0);
  ASSERT_TRUE((*reopened)->Unpin(0, false).ok());
}

TEST_F(PagerTest, CacheHitAccounting) {
  auto pager = Pager::Open(path_, 4);
  ASSERT_TRUE(pager.ok());
  char* data = nullptr;
  auto id = (*pager)->Allocate(&data);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*pager)->Unpin(*id, true).ok());
  (*pager)->ResetCounters();
  for (int i = 0; i < 10; ++i) {
    auto fetched = (*pager)->Fetch(*id);
    ASSERT_TRUE(fetched.ok());
    ASSERT_TRUE((*pager)->Unpin(*id, false).ok());
  }
  EXPECT_EQ((*pager)->cache_hits(), 10u);
  EXPECT_EQ((*pager)->disk_reads(), 0u);
}

TEST_F(PagerTest, ValidatePassesThroughNormalUse) {
  auto pager = Pager::Open(path_, 2);
  ASSERT_TRUE(pager.ok());
  EXPECT_TRUE((*pager)->Validate().ok());
  char* data = nullptr;
  auto id = (*pager)->Allocate(&data);
  ASSERT_TRUE(id.ok());
  // Valid while a page is pinned, after unpin, and after eviction traffic.
  EXPECT_TRUE((*pager)->Validate().ok());
  ASSERT_TRUE((*pager)->Unpin(*id, true).ok());
  for (uint32_t p = 0; p < 5; ++p) {
    char* extra = nullptr;
    ASSERT_TRUE((*pager)->Allocate(&extra).ok());
    ASSERT_TRUE((*pager)->Unpin(p + 1, true).ok());
  }
  EXPECT_TRUE((*pager)->Validate().ok());
  ASSERT_TRUE((*pager)->FlushAll().ok());
  EXPECT_TRUE((*pager)->Validate().ok());
}

TEST_F(PagerTest, ValidateDetectsExternalTruncation) {
  auto pager = Pager::Open(path_, 2);
  ASSERT_TRUE(pager.ok());
  for (uint32_t p = 0; p < 4; ++p) {
    char* data = nullptr;
    ASSERT_TRUE((*pager)->Allocate(&data).ok());
    ASSERT_TRUE((*pager)->Unpin(p, true).ok());
  }
  ASSERT_TRUE((*pager)->FlushAll().ok());
  // Chop one page off the file behind the pager's back.
  std::filesystem::resize_file(path_, 3 * kPageSize);
  const Status status = (*pager)->Validate();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(PagerTest, NonAlignedFileRejected) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("partial", 1, 7, f);
  std::fclose(f);
  EXPECT_EQ(Pager::Open(path_, 4).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace s2::storage
