#include "common/rng.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace s2 {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform(0, 1) == b.Uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalRoughMoments) {
  Rng rng(9);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RngTest, PoissonRoughMean) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(50.0));
  EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(RngTest, BernoulliRoughRate) {
  Rng rng(11);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, NextSeedProducesIndependentChildren) {
  Rng parent(13);
  Rng child_a(parent.NextSeed());
  Rng child_b(parent.NextSeed());
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.Uniform(0, 1) == child_b.Uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace s2
