# Empty dependencies file for bench_burst.
# This may be replaced when dependencies are built.
