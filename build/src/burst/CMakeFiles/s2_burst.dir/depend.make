# Empty dependencies file for s2_burst.
# This may be replaced when dependencies are built.
