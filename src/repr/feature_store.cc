#include "repr/feature_store.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "io/durable.h"
#include "io/serial.h"

namespace s2::repr {

namespace {

constexpr char kMagic[8] = {'S', '2', 'F', 'E', 'A', 'T', '0', '1'};

uint8_t KindToByte(ReprKind kind) { return static_cast<uint8_t>(kind); }

Result<ReprKind> KindFromByte(uint8_t byte) {
  switch (byte) {
    case 0:
      return ReprKind::kFirstKMiddle;
    case 1:
      return ReprKind::kFirstKError;
    case 2:
      return ReprKind::kBestKMiddle;
    case 3:
      return ReprKind::kBestKError;
  }
  return Status::Corruption("feature store: unknown representation kind");
}

}  // namespace

Status WriteFeatures(const std::string& path,
                     const std::vector<CompressedSpectrum>& features,
                     io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  io::BufferFile buffer;
  S2_RETURN_NOT_OK(io::WriteExact(&buffer, kMagic, sizeof(kMagic)));
  S2_RETURN_NOT_OK(io::WriteScalar<uint64_t>(&buffer, features.size()));
  for (const CompressedSpectrum& feature : features) {
    S2_RETURN_NOT_OK(WriteFeatureRecord(&buffer, feature));
  }
  return io::durable::CommitNext(env, path, std::move(buffer).TakeBytes());
}

Status WriteFeatureRecord(io::File* f, const CompressedSpectrum& feature) {
  if (feature.positions().size() > std::numeric_limits<uint16_t>::max()) {
    return Status::InvalidArgument("WriteFeatureRecord: too many positions");
  }
  S2_RETURN_NOT_OK(io::WriteScalar(f, KindToByte(feature.kind())));
  S2_RETURN_NOT_OK(
      io::WriteScalar<uint8_t>(f, static_cast<uint8_t>(feature.basis())));
  S2_RETURN_NOT_OK(io::WriteScalar(f, feature.n()));
  S2_RETURN_NOT_OK(io::WriteScalar<uint16_t>(
      f, static_cast<uint16_t>(feature.positions().size())));
  for (uint32_t position : feature.positions()) {
    S2_RETURN_NOT_OK(
        io::WriteScalar<uint16_t>(f, static_cast<uint16_t>(position)));
  }
  for (const Complex& coeff : feature.coeffs()) {
    S2_RETURN_NOT_OK(io::WriteScalar(f, coeff.real()));
    S2_RETURN_NOT_OK(io::WriteScalar(f, coeff.imag()));
  }
  S2_RETURN_NOT_OK(io::WriteScalar(f, feature.error()));
  S2_RETURN_NOT_OK(io::WriteScalar(f, feature.min_power()));
  return Status::OK();
}

Result<CompressedSpectrum> ReadFeatureRecord(io::File* f) {
  uint8_t kind_byte = 0;
  uint8_t basis_byte = 0;
  uint32_t n = 0;
  uint16_t position_count = 0;
  if (!io::ReadScalar(f, &kind_byte).ok() ||
      !io::ReadScalar(f, &basis_byte).ok() || !io::ReadScalar(f, &n).ok() ||
      !io::ReadScalar(f, &position_count).ok()) {
    return Status::Corruption("ReadFeatureRecord: truncated feature header");
  }
  S2_ASSIGN_OR_RETURN(ReprKind kind, KindFromByte(kind_byte));
  if (basis_byte > 1) {
    return Status::Corruption("ReadFeatureRecord: unknown basis");
  }
  const Basis basis = static_cast<Basis>(basis_byte);

  std::vector<uint32_t> positions(position_count);
  for (uint16_t p = 0; p < position_count; ++p) {
    uint16_t position = 0;
    if (!io::ReadScalar(f, &position).ok()) {
      return Status::Corruption("ReadFeatureRecord: truncated positions");
    }
    positions[p] = position;
  }
  std::vector<Complex> coeffs(position_count);
  for (uint16_t p = 0; p < position_count; ++p) {
    double re = 0;
    double im = 0;
    if (!io::ReadScalar(f, &re).ok() || !io::ReadScalar(f, &im).ok()) {
      return Status::Corruption("ReadFeatureRecord: truncated coefficients");
    }
    coeffs[p] = Complex(re, im);
  }
  double error = 0;
  double min_power = 0;
  if (!io::ReadScalar(f, &error).ok() || !io::ReadScalar(f, &min_power).ok()) {
    return Status::Corruption("ReadFeatureRecord: truncated footer");
  }
  // NaN error / infinite min_power round-trip through FromParts defaults.
  if (std::isnan(error)) error = 0.0;
  if (std::isinf(min_power)) min_power = 0.0;
  return CompressedSpectrum::FromParts(kind, n, std::move(positions),
                                       std::move(coeffs), error, min_power, basis);
}

Result<std::vector<CompressedSpectrum>> ReadFeatures(const std::string& path,
                                                     io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  std::vector<char> bytes;
  S2_RETURN_NOT_OK(io::durable::LoadLatest(env, path, &bytes));
  io::BufferFile file(std::move(bytes));
  const uint64_t file_size = file.bytes().size();

  char magic[sizeof(kMagic)];
  uint64_t count = 0;
  if (file_size < sizeof(kMagic) + sizeof(uint64_t)) {
    return Status::Corruption("ReadFeatures: truncated header in " + path);
  }
  S2_RETURN_NOT_OK(io::ReadExact(&file, magic, sizeof(magic)));
  S2_RETURN_NOT_OK(io::ReadScalar(&file, &count));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("ReadFeatures: bad magic in " + path);
  }
  // Bound the declared count by the bytes actually present, so a corrupt
  // header cannot trigger a huge reserve. The smallest possible record is
  // its fixed header plus the two footer doubles.
  constexpr uint64_t kMinRecordBytes = 2 * sizeof(uint8_t) + sizeof(uint32_t) +
                                       sizeof(uint16_t) + 2 * sizeof(double);
  const uint64_t remaining = file_size - sizeof(kMagic) - sizeof(uint64_t);
  if (count > remaining / kMinRecordBytes) {
    return Status::Corruption("ReadFeatures: feature count " +
                              std::to_string(count) +
                              " exceeds the file size in " + path);
  }

  std::vector<CompressedSpectrum> features;
  features.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    S2_ASSIGN_OR_RETURN(CompressedSpectrum feature, ReadFeatureRecord(&file));
    features.push_back(std::move(feature));
  }
  return features;
}

}  // namespace s2::repr
