#include "period/period_detector.h"

#include <algorithm>
#include <cmath>

#include "dsp/periodogram.h"
#include "dsp/stats.h"

namespace s2::period {

double PeriodDetector::Threshold(const std::vector<double>& periodogram) const {
  if (periodogram.size() <= 1) return 0.0;
  // Mean over the non-DC bins; DC is ~0 after standardization and would
  // otherwise bias the exponential fit.
  double sum = 0.0;
  for (size_t k = 1; k < periodogram.size(); ++k) sum += periodogram[k];
  const double mu = sum / static_cast<double>(periodogram.size() - 1);
  return -mu * std::log(options_.false_alarm_probability);
}

Result<std::vector<PeriodHit>> PeriodDetector::Detect(
    const std::vector<double>& x) const {
  if (x.size() < 4) {
    return Status::InvalidArgument("PeriodDetector: sequence too short");
  }
  if (options_.false_alarm_probability <= 0.0 ||
      options_.false_alarm_probability >= 1.0) {
    return Status::InvalidArgument(
        "PeriodDetector: false_alarm_probability must be in (0, 1)");
  }

  const std::vector<double> z = dsp::Standardize(x);
  S2_ASSIGN_OR_RETURN(std::vector<double> psd, dsp::PeriodogramOf(z));
  const double threshold = Threshold(psd);
  const double n = static_cast<double>(x.size());
  const double max_period = options_.max_period_fraction * n;

  std::vector<PeriodHit> hits;
  for (size_t k = 1; k < psd.size(); ++k) {
    if (psd[k] <= threshold) continue;
    const double period = dsp::BinToPeriod(k, x.size());
    if (max_period > 0.0 && period > max_period) continue;
    PeriodHit hit;
    hit.period = period;
    hit.frequency = static_cast<double>(k) / n;
    hit.power = psd[k];
    hit.bin = k;
    hits.push_back(hit);
  }
  std::sort(hits.begin(), hits.end(),
            [](const PeriodHit& a, const PeriodHit& b) { return a.power > b.power; });
  if (options_.max_periods > 0 && hits.size() > options_.max_periods) {
    hits.resize(options_.max_periods);
  }
  return hits;
}

}  // namespace s2::period
