file(REMOVE_RECURSE
  "libs2_querylog.a"
)
