file(REMOVE_RECURSE
  "CMakeFiles/mvp_tree_test.dir/mvp_tree_test.cc.o"
  "CMakeFiles/mvp_tree_test.dir/mvp_tree_test.cc.o.d"
  "mvp_tree_test"
  "mvp_tree_test.pdb"
  "mvp_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvp_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
