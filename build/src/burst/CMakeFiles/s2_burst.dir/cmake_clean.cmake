file(REMOVE_RECURSE
  "CMakeFiles/s2_burst.dir/burst_detector.cc.o"
  "CMakeFiles/s2_burst.dir/burst_detector.cc.o.d"
  "CMakeFiles/s2_burst.dir/burst_similarity.cc.o"
  "CMakeFiles/s2_burst.dir/burst_similarity.cc.o.d"
  "CMakeFiles/s2_burst.dir/burst_table.cc.o"
  "CMakeFiles/s2_burst.dir/burst_table.cc.o.d"
  "CMakeFiles/s2_burst.dir/disk_burst_table.cc.o"
  "CMakeFiles/s2_burst.dir/disk_burst_table.cc.o.d"
  "libs2_burst.a"
  "libs2_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
