#ifndef S2_DIAG_VALIDATE_H_
#define S2_DIAG_VALIDATE_H_

#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace s2::diag {

/// Shared substrate of the `Validate()` structural validators (VP/MVP-tree,
/// B+-trees, pager, sequence store, burst tables).
///
/// A validator is named after the structure it checks and collects precise
/// violation messages:
///
/// ```
/// diag::Validator v("DiskBPlusTree");
/// v.Check(key_prev <= key) << "page " << id << " slot " << i
///                          << ": keys out of order";
/// return v.ToStatus();  // OK, or Corruption("DiskBPlusTree: page 7 ...")
/// ```
///
/// The stream after `Check` is only materialized when the condition fails,
/// so clean validation runs allocate nothing per check. All violations (up
/// to a cap) are reported in one `Status`, which lets tests assert on the
/// *exact* violation text and operators see every broken invariant at once.
class Validator {
 public:
  /// Message collector for one failing check; no-op for passing checks.
  class Proxy {
   public:
    explicit Proxy(Validator* owner)
        : owner_(owner),
          stream_(owner != nullptr ? new std::ostringstream : nullptr) {}
    ~Proxy() {
      if (owner_ != nullptr) owner_->AddViolation(stream_->str());
    }
    Proxy(Proxy&&) = delete;
    Proxy& operator=(Proxy&&) = delete;

    template <typename T>
    Proxy& operator<<(const T& value) {
      if (stream_ != nullptr) *stream_ << value;
      return *this;
    }

   private:
    Validator* owner_;
    std::unique_ptr<std::ostringstream> stream_;
  };

  explicit Validator(std::string_view structure) : structure_(structure) {}

  /// Records a violation when `condition` is false; stream the description
  /// of what broke (it is dropped when the condition holds).
  Proxy Check(bool condition) { return Proxy(condition ? nullptr : this); }

  /// Records a violation unconditionally.
  void AddViolation(std::string detail);

  /// True while no violation has been recorded.
  bool ok() const { return violation_count_ == 0; }

  /// Violations recorded so far (capped at `kMaxViolations`; the count is
  /// exact even beyond the cap).
  const std::vector<std::string>& violations() const { return violations_; }
  size_t violation_count() const { return violation_count_; }

  /// OK when clean; otherwise `Corruption("<structure>: v1; v2; ...")`.
  Status ToStatus() const;

  /// Most violations kept verbatim; later ones only counted.
  static constexpr size_t kMaxViolations = 8;

 private:
  std::string structure_;
  std::vector<std::string> violations_;
  size_t violation_count_ = 0;
};

/// Canonical single-violation corruption status: "<structure>: <detail>".
Status CorruptionError(std::string_view structure, std::string_view detail);

}  // namespace s2::diag

#endif  // S2_DIAG_VALIDATE_H_
