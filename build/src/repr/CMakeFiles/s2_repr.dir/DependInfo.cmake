
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repr/bounds.cc" "src/repr/CMakeFiles/s2_repr.dir/bounds.cc.o" "gcc" "src/repr/CMakeFiles/s2_repr.dir/bounds.cc.o.d"
  "/root/repo/src/repr/compressed.cc" "src/repr/CMakeFiles/s2_repr.dir/compressed.cc.o" "gcc" "src/repr/CMakeFiles/s2_repr.dir/compressed.cc.o.d"
  "/root/repo/src/repr/feature_store.cc" "src/repr/CMakeFiles/s2_repr.dir/feature_store.cc.o" "gcc" "src/repr/CMakeFiles/s2_repr.dir/feature_store.cc.o.d"
  "/root/repo/src/repr/half_spectrum.cc" "src/repr/CMakeFiles/s2_repr.dir/half_spectrum.cc.o" "gcc" "src/repr/CMakeFiles/s2_repr.dir/half_spectrum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/s2_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
