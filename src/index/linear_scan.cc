#include "index/linear_scan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "dsp/stats.h"
#include "simd/simd.h"

namespace s2::index {

namespace {
// Rows fetched per GetBatch: large enough that a disk-backed source turns
// the scan into spanning sequential reads, small enough that the flat
// buffer stays cache-resident while the distance kernel walks it.
constexpr size_t kScanBatch = 16;
}  // namespace

Result<std::vector<Neighbor>> LinearScan::Search(const std::vector<double>& query,
                                                 size_t k) const {
  if (k == 0) return Status::InvalidArgument("LinearScan: k must be > 0");
  if (query.size() != source_->series_length()) {
    return Status::InvalidArgument("LinearScan: query length mismatch");
  }
  BestList best(k);
  const size_t n = source_->num_series();
  const size_t len = source_->series_length();
  std::vector<double> flat;
  for (size_t base = 0; base < n; base += kScanBatch) {
    const size_t count = std::min(kScanBatch, n - base);
    S2_RETURN_NOT_OK(source_->GetBatch(static_cast<ts::SeriesId>(base), count,
                                       &flat));
    for (size_t r = 0; r < count; ++r) {
      const double* row = flat.data() + r * len;
      if (r + 1 < count) simd::PrefetchRead(row + len);
      const double threshold = best.Threshold();
      const double abandon_sq = std::isinf(threshold)
                                    ? std::numeric_limits<double>::infinity()
                                    : threshold * threshold;
      const double dist_sq = dsp::SquaredEuclideanEarlyAbandon(
          query.data(), row, len, abandon_sq);
      // Squared-domain gate: the result is <= abandon_sq exactly when it
      // is the complete squared distance, so abandoned partials never
      // reach the list (see dsp::SquaredEuclideanEarlyAbandon).
      if (dist_sq <= abandon_sq) {
        best.Offer(static_cast<ts::SeriesId>(base + r), std::sqrt(dist_sq));
      }
    }
  }
  return std::move(best).Take();
}

}  // namespace s2::index
