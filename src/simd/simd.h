#ifndef S2_SIMD_SIMD_H_
#define S2_SIMD_SIMD_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/status.h"

/// Portable vectorized kernels with runtime dispatch (DESIGN.md §12).
///
/// Every function here computes one *canonical* result defined by a fixed
/// blocked reduction order (see kernels_inl.h): four logical accumulator
/// lanes, element j contributing to lane j mod 4, early-abandon checks at
/// 16-element boundaries, and the final reduction tree (l0+l2)+(l1+l3).
/// The scalar fallback implements that exact order with plain doubles, so
/// every backend — scalar, SSE2, AVX2, NEON — produces bit-identical
/// output for identical input. Kernel translation units are compiled with
/// -ffp-contract=off so no backend silently fuses multiply-add.
///
/// Dispatch resolves once (lazily) from CPUID plus the S2_SIMD environment
/// variable ("off"/"scalar", "sse2", "avx2", "neon", "auto"; unknown or
/// unavailable values fall back to scalar). Tests and benchmarks may pin a
/// backend with SetIsa(); engines may override per-process via
/// core::S2Engine::Options::simd -> Configure().
namespace s2::simd {

enum class Isa {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Human-readable backend name ("scalar", "sse2", "avx2", "neon").
const char* IsaName(Isa isa);

/// The backend currently answering kernel calls.
Isa ActiveIsa();

/// Every backend compiled into this binary AND supported by this CPU,
/// scalar always included.
std::vector<Isa> AvailableIsas();

/// Pin dispatch to one backend. Unavailable if it was not compiled in or
/// the CPU lacks it. Intended for tests/benches; call while no kernels are
/// in flight (the switch itself is atomic, but in-flight callers may have
/// already resolved the old table — results are still bit-identical).
Status SetIsa(Isa isa);

/// Apply a textual mode: "" or "auto" re-resolves from CPUID + S2_SIMD,
/// "off"/"scalar" force the scalar backend, "sse2"/"avx2"/"neon" pin that
/// backend (Unavailable if absent). Anything else is InvalidArgument.
Status Configure(std::string_view mode);

/// Drop any pin and re-resolve from CPUID + S2_SIMD on next use.
void ResetDispatch();

// --- Dispatched kernels (canonical blocked order, see above) ---

/// Sum of x[0..n).
double Sum(const double* x, size_t n);

/// Sum of squares of x[0..n) (signal energy).
double SumSq(const double* x, size_t n);

/// Sum of (x[i] - mean)^2 — the two-pass centered variance numerator.
double CenteredSumSq(const double* x, size_t n, double mean);

/// Sum of (a[i] - b[i])^2 — squared Euclidean distance.
double SumSqDiff(const double* a, const double* b, size_t n);

/// Squared Euclidean distance with early abandoning: after every 16
/// elements the partial sum is reduced and compared against `limit_sq`
/// (strictly greater abandons). Returns either the complete canonical sum
/// or the canonical partial sum at the abandoning 16-element boundary; the
/// partial sums are themselves part of the canonical spec, so abandoned
/// return values are bit-identical across backends too. The result is
/// <= limit_sq if and only if it is the complete sum, which is what makes
/// squared-domain gating at call sites exact (index/vp_tree.cc).
double SumSqDiffAbandon(const double* a, const double* b, size_t n,
                        double limit_sq);

/// Squared LB_Keogh envelope distance with the same 16-element abandoning
/// contract as SumSqDiffAbandon. Clamp is branchless compare-select:
/// (c>upper ? c-upper : 0) and (lower>c ? lower-c : 0), each squared and
/// accumulated separately — NaN candidates contribute 0, matching the
/// branchy scalar reference.
double LbKeoghSqAbandon(const double* lower, const double* upper,
                        const double* candidate, size_t n, double limit_sq);

/// out[i] = (x[i] - mean) / stddev. Caller handles stddev == 0.
void Standardize(const double* x, size_t n, double mean, double stddev,
                 double* out);

/// Sliding-DFT update over `bins` interleaved complex values:
///   reim[i] = twiddle[i] * (reim[i] + delta)   (delta added to re only)
/// using the naive complex product re' = re*cr - im*ci,
/// im' = im*cr + re*ci (no Annex-G infinity recovery), which every
/// backend reproduces exactly.
void SlideComplexBins(double* reim, const double* twiddles_reim, size_t bins,
                      double delta);

/// Best-effort read prefetch hint; no-op where unsupported.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

}  // namespace s2::simd

#endif  // S2_SIMD_SIMD_H_
