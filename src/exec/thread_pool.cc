#include "exec/thread_pool.h"

#include <utility>

namespace s2::exec {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    sync::MutexLock lock(&mu_);
    if (stopping_) return false;
    tasks_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

void ThreadPool::Shutdown() {
  {
    sync::MutexLock lock(&mu_);
    if (stopping_) {
      // Shutdown already ran (or is running on another thread); workers are
      // joined exactly once below, so second callers just return.
      return;
    }
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::queue_depth() const {
  sync::MutexLock lock(&mu_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::MutexLock lock(&mu_);
      // Predicate inline, not a lambda: see CondVar's header note on
      // -Wthread-safety and wait predicates.
      while (!stopping_ && tasks_.empty()) cv_.Wait(&mu_);
      if (tasks_.empty()) return;  // stopping_ and fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    try {
      task();
    } catch (...) {
      // Contract rule 3: contain, count, keep serving. A worker must never
      // take the whole process down (std::terminate) because one task threw.
      tasks_aborted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace s2::exec
