#include "index/knn.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "timeseries/time_series.h"

namespace s2::index {
namespace {

TEST(BestListTest, EmptyThresholdIsInfinite) {
  BestList list(3);
  EXPECT_TRUE(std::isinf(list.Threshold()));
  EXPECT_FALSE(list.Full());
  EXPECT_TRUE(list.items().empty());
}

TEST(BestListTest, KeepsAscendingOrder) {
  BestList list(5);
  for (double d : {3.0, 1.0, 4.0, 1.5, 2.0}) list.Offer(0, d);
  ASSERT_EQ(list.items().size(), 5u);
  for (size_t i = 1; i < list.items().size(); ++i) {
    EXPECT_LE(list.items()[i - 1].distance, list.items()[i].distance);
  }
  EXPECT_DOUBLE_EQ(list.Threshold(), 4.0);
  EXPECT_TRUE(list.Full());
}

TEST(BestListTest, EvictsWorstWhenFull) {
  BestList list(2);
  list.Offer(1, 5.0);
  list.Offer(2, 3.0);
  list.Offer(3, 1.0);  // Evicts 5.0.
  ASSERT_EQ(list.items().size(), 2u);
  EXPECT_EQ(list.items()[0].id, 3u);
  EXPECT_EQ(list.items()[1].id, 2u);
  EXPECT_DOUBLE_EQ(list.Threshold(), 3.0);
}

TEST(BestListTest, RejectsWorseThanThreshold) {
  BestList list(2);
  list.Offer(1, 1.0);
  list.Offer(2, 2.0);
  list.Offer(3, 2.0);  // Equal to the threshold: rejected.
  list.Offer(4, 9.0);
  ASSERT_EQ(list.items().size(), 2u);
  EXPECT_EQ(list.items()[1].id, 2u);
}

TEST(BestListTest, KOneBehavesLikeRunningMin) {
  BestList list(1);
  for (double d : {7.0, 3.0, 5.0, 2.0, 6.0}) {
    list.Offer(static_cast<ts::SeriesId>(d), d);
  }
  ASSERT_EQ(list.items().size(), 1u);
  EXPECT_DOUBLE_EQ(list.items()[0].distance, 2.0);
}

TEST(BestListTest, InfiniteDistancesHandled) {
  BestList list(2);
  const double inf = std::numeric_limits<double>::infinity();
  list.Offer(1, inf);
  list.Offer(2, inf);
  list.Offer(3, 1.0);
  ASSERT_EQ(list.items().size(), 2u);
  EXPECT_DOUBLE_EQ(list.items()[0].distance, 1.0);
}

TEST(BestListTest, TakeMovesItemsOut) {
  BestList list(3);
  list.Offer(1, 2.0);
  list.Offer(2, 1.0);
  std::vector<Neighbor> taken = std::move(list).Take();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].id, 2u);
  EXPECT_EQ(taken[1].id, 1u);
}

TEST(CorpusTest, AddAndLookup) {
  ts::Corpus corpus;
  EXPECT_TRUE(corpus.empty());
  const ts::SeriesId a = corpus.Add({"alpha", 0, {1.0, 2.0}});
  const ts::SeriesId b = corpus.Add({"beta", 5, {3.0, 4.0}});
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(corpus.at(a).name, "alpha");
  EXPECT_EQ(corpus.at(b).start_day, 5);
  auto found = corpus.Get(1);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->name, "beta");
  EXPECT_EQ(corpus.Get(2).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace s2::index
