#ifndef S2_SERVICE_SCHEDULER_H_
#define S2_SERVICE_SCHEDULER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <string_view>
#include <vector>

#include "burst/burst_table.h"
#include "common/result.h"
#include "core/s2_engine.h"
#include "index/knn.h"
#include "period/period_detector.h"
#include "exec/thread_pool.h"
#include "service/metrics.h"
#include "timeseries/time_series.h"

namespace s2::service {

/// The serving layer's pool is the shared executor from s2::exec (also used
/// by shard::ShardedEngine); the alias keeps existing service call sites.
using ThreadPool = exec::ThreadPool;

/// The request types the serving layer accepts — one per S2Engine read
/// capability (paper Section 7.5: the S2 tool's period / similarity / burst
/// functionalities).
enum class RequestKind {
  kSimilarTo,
  kSimilarToDtw,
  kPeriodsOf,
  kBurstsOf,
  kQueryByBurst,
  /// Approximate-first similarity with a per-query quality bound
  /// (DESIGN.md §13); knobs in QueryRequest::recall_target /
  /// max_candidates.
  kApproxKnn,
};

/// Number of RequestKind values (sizes the per-kind metric arrays).
inline constexpr size_t kNumRequestKinds = 6;

/// Stable lowercase name of a request kind (used in metric names).
std::string_view RequestKindToString(RequestKind kind);

/// A typed query against the serving layer.
struct QueryRequest {
  RequestKind kind = RequestKind::kSimilarTo;
  ts::SeriesId id = ts::kInvalidSeriesId;
  /// Neighbor/match count for similarity and query-by-burst kinds.
  size_t k = 10;
  /// Burst horizon for kBurstsOf / kQueryByBurst.
  core::BurstHorizon horizon = core::BurstHorizon::kLongTerm;
  /// Soft deadline measured from submission; zero means "no deadline". A
  /// request still queued when its deadline passes fails with
  /// DeadlineExceeded instead of executing (execution itself is never
  /// interrupted mid-flight).
  std::chrono::milliseconds timeout{0};
  /// Approximate-tier quality knobs (kApproxKnn; also the opt-in that lets
  /// a kSimilarTo request degrade to the approximate tier — see
  /// S2Server::Options::degrade_to_approx). Both zero = server defaults.
  double recall_target = 0.0;
  size_t max_candidates = 0;
};

/// The answer to a QueryRequest. Exactly one payload vector is populated,
/// matching the request kind; the others stay empty.
struct QueryResponse {
  Status status;
  std::vector<index::Neighbor> neighbors;        ///< kSimilarTo / kSimilarToDtw
  std::vector<period::PeriodHit> periods;        ///< kPeriodsOf
  std::vector<burst::BurstRegion> bursts;        ///< kBurstsOf
  std::vector<burst::BurstMatch> burst_matches;  ///< kQueryByBurst
  /// True when the answer came from the result cache (no engine work).
  bool cache_hit = false;
  /// True when the primary (indexed) path failed on infrastructure trouble
  /// and the answer was produced by the exact RAM fallback instead. Degraded
  /// answers are exact but slower, and are never cached.
  bool degraded = false;
  /// True when `neighbors` came from the approximate tier (kApproxKnn, or a
  /// kSimilarTo degraded through it); `quality` then carries the bound.
  /// Approximate answers are cached only under approximate cache keys — an
  /// exact request can never be served one.
  bool approximate = false;
  /// Per-query quality bound; meaningful only when `approximate` is true.
  approx::QualityBound quality;
  /// Wall time spent executing (queue wait excluded; 0 for cache hits
  /// measured below timer resolution).
  std::chrono::microseconds latency{0};
};

/// Handle to an admitted request: a future for the response plus a
/// best-effort cancellation flag. `Cancel` prevents execution if the
/// request is still queued; a request already running completes normally.
class RequestTicket {
 public:
  RequestTicket() = default;

  /// Blocks until the response is ready.
  QueryResponse Get() { return future_.get(); }

  /// True while the response has not been retrieved.
  bool valid() const { return future_.valid(); }

  /// Non-blocking readiness probe.
  bool Ready() const {
    return future_.valid() &&
           future_.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }

  /// Requests cancellation. Queued requests fail with Cancelled; running
  /// requests are unaffected.
  void Cancel() {
    if (cancelled_ != nullptr) cancelled_->store(true, std::memory_order_relaxed);
  }

 private:
  friend class Scheduler;
  std::future<QueryResponse> future_;
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// Admission control + dispatch for the serving layer.
///
/// The scheduler owns a fixed-size ThreadPool and a bounded admission
/// window: at most `queue_capacity` requests may be in flight (queued or
/// executing). Excess submissions are rejected immediately with
/// Unavailable — backpressure the caller can act on, instead of an
/// ever-growing queue. Each admitted request is executed by the injected
/// handler on a pool thread; deadlines and cancellation are checked when a
/// worker picks the request up.
///
/// Metrics (when a registry is supplied):
///   server_accepted / server_rejected / server_completed
///   server_expired  / server_cancelled
///   server_requests_<kind>
///   server_latency  (histogram over handler execution time)
class Scheduler {
 public:
  struct Options {
    size_t threads = 4;
    /// Maximum in-flight (admitted, not yet completed) requests.
    size_t queue_capacity = 256;
  };

  /// `handler` runs on pool threads and must be thread-safe; it produces
  /// the response for one request. `metrics` may be null (no accounting);
  /// when given, it must outlive the scheduler.
  Scheduler(const Options& options, std::function<QueryResponse(const QueryRequest&)> handler,
            MetricsRegistry* metrics);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  ~Scheduler();

  /// Admits a request. Fails with Unavailable when the in-flight window is
  /// full or the scheduler is shut down.
  Result<RequestTicket> Submit(const QueryRequest& request);

  /// Graceful shutdown: rejects new work, drains everything admitted (every
  /// outstanding future is fulfilled), joins the workers. Idempotent.
  void Shutdown();

  /// Requests admitted and not yet completed.
  size_t in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::function<QueryResponse(const QueryRequest&)> handler_;

  // Metric handles, pre-registered so the hot path never touches the
  // registry mutex. All null when metrics_ is null.
  Counter* accepted_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* completed_ = nullptr;
  Counter* expired_ = nullptr;
  Counter* cancelled_count_ = nullptr;
  std::array<Counter*, kNumRequestKinds> kind_counters_{};
  LatencyHistogram* latency_ = nullptr;

  std::atomic<size_t> in_flight_{0};
  std::atomic<bool> shutdown_{false};
  ThreadPool pool_;
};

}  // namespace s2::service

#endif  // S2_SERVICE_SCHEDULER_H_
