#ifndef S2_BURST_BURST_DETECTOR_H_
#define S2_BURST_BURST_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace s2::burst {

/// A compacted burst region: the paper's `[startDate, endDate, avgValue]`
/// triplet (Section 6.2). Dates are sample offsets into the analyzed
/// sequence; the burst spans `[start, end]` inclusive.
struct BurstRegion {
  int32_t start = 0;
  int32_t end = 0;
  double avg_value = 0.0;

  /// Burst length `|B| = endDate - startDate + 1`.
  int32_t length() const { return end - start + 1; }

  friend bool operator==(const BurstRegion& a, const BurstRegion& b) {
    return a.start == b.start && a.end == b.end && a.avg_value == b.avg_value;
  }
};

/// Moving-average burst detection (paper Section 6.1):
///
///   1. MA_w = trailing moving average of length w,
///   2. cutoff = mean(MA_w) + x * std(MA_w),
///   3. burst days = { i : MA_w(i) > cutoff },
///
/// followed by compaction of consecutive burst days into triplets. Input is
/// standardized internally (the paper standardizes before burst features are
/// extracted); `avg_value` is the mean *standardized* value over the region,
/// making burst heights comparable across queries of different volume.
class BurstDetector {
 public:
  struct Options {
    size_t window = 30;        ///< MA length: 30 = long-term, 7 = short-term.
    double cutoff_stds = 1.5;  ///< `x`; typical values 1.5 - 2.
    bool standardize = true;   ///< Z-normalize before detection.
    /// Minimum region height: discard compacted regions whose average
    /// (standardized) value is below this. The paper's plain cutoff is
    /// relative to std(MA_w); for sequences whose moving average is nearly
    /// flat (e.g. purely weekly demand) that std is tiny and noise wiggles
    /// produce many spurious micro-bursts, which inflate BSim in
    /// query-by-burst. 0 reproduces the paper verbatim; ~0.5 is a practical
    /// guard that cannot affect genuine bursts (whose standardized height
    /// is >> 1).
    double min_avg_value = 0.0;
    /// Minimum region length in days. A weekly demand pattern makes a
    /// 30-day moving average ripple slightly (windows contain 4 or 5
    /// weekend peaks), which yields a spurious 1-day "burst" every week;
    /// requiring a few days of persistence removes those while leaving
    /// genuine long-term bursts (weeks long) untouched. 1 reproduces the
    /// paper verbatim.
    int32_t min_length = 1;
  };

  /// Long-term preset (w = 30), per the paper's database configuration.
  static BurstDetector LongTerm() { return BurstDetector(Options{30, 1.5, true}); }
  /// Short-term preset (w = 7).
  static BurstDetector ShortTerm() { return BurstDetector(Options{7, 1.5, true}); }

  BurstDetector() = default;
  explicit BurstDetector(Options options) : options_(options) {}

  /// Detects and compacts bursts in `x`. Returns InvalidArgument for inputs
  /// shorter than the window.
  Result<std::vector<BurstRegion>> Detect(const std::vector<double>& x) const;

  /// Diagnostic variant also exposing the moving average and the cutoff
  /// (used by the figure benches that plot them).
  struct Trace {
    std::vector<double> moving_average;
    double cutoff = 0.0;
    std::vector<BurstRegion> regions;
  };
  Result<Trace> DetectWithTrace(const std::vector<double>& x) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace s2::burst

#endif  // S2_BURST_BURST_DETECTOR_H_
