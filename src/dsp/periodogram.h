#ifndef S2_DSP_PERIODOGRAM_H_
#define S2_DSP_PERIODOGRAM_H_

#include <vector>

#include "common/result.h"
#include "dsp/fft.h"

namespace s2::dsp {

/// Power spectral density estimate (the periodogram) of a full normalized
/// spectrum: `P(k) = ||X(k)||^2` for `k = 0 .. floor(N/2)`.
///
/// Only the first half of the spectrum is meaningful for real signals
/// (Nyquist); bin k corresponds to frequency k/N and period N/k. Bin 0 is the
/// DC component, which is ~0 for standardized sequences.
std::vector<double> Periodogram(const std::vector<Complex>& spectrum);

/// Convenience overload: computes the normalized DFT of `x` first.
Result<std::vector<double>> PeriodogramOf(const std::vector<double>& x);

/// The period (in samples) represented by periodogram bin `k` of an N-point
/// transform: `N / k`. Bin 0 has no finite period; returns +infinity.
double BinToPeriod(size_t k, size_t n);

}  // namespace s2::dsp

#endif  // S2_DSP_PERIODOGRAM_H_
