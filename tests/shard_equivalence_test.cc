// Differential/property layer for s2::shard: a ShardedEngine must be
// *shard-count invisible* — for every query verb, every shard count, and
// every seed, its answers are bit-identical to one S2Engine over the whole
// corpus (ids, distances, periods, bursts, burst scores). This is the
// executable form of the scatter-gather exactness argument in
// sharded_engine.h: shared-radius pruning only discards candidates that
// provably cannot reach the global top-k, and the merge reassembles the
// global answer from exact per-shard distances.

#include "shard/sharded_engine.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/s2_engine.h"
#include "io/mem_env.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"

namespace s2::shard {
namespace {

constexpr size_t kNumSeries = 72;
constexpr size_t kDays = 128;
constexpr size_t kK = 7;
const size_t kShardCounts[] = {1, 2, 3, 8};
const uint64_t kSeeds[] = {11, 47, 2026};

ts::Corpus MakeCorpus(uint64_t seed) {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions() {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 4;
  return options;
}

core::S2Engine MakeSingle(uint64_t seed) {
  auto engine = core::S2Engine::Build(MakeCorpus(seed), EngineOptions());
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

ShardedEngine MakeSharded(uint64_t seed, size_t num_shards) {
  ShardedEngine::Options options;
  options.num_shards = num_shards;
  options.engine = EngineOptions();
  auto engine = ShardedEngine::Build(MakeCorpus(seed), options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

// Bit-identical: EXPECT_EQ on doubles on purpose — the merge must surface
// the *same floating-point value* the single engine computed, not merely a
// close one. Both paths run the identical sequential-order distance code on
// identical inputs, so exact equality is the correct bar.
void ExpectSameNeighbors(const std::vector<index::Neighbor>& single,
                         const std::vector<index::Neighbor>& sharded,
                         const std::string& what) {
  ASSERT_EQ(single.size(), sharded.size()) << what;
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].id, sharded[i].id) << what << " rank " << i;
    EXPECT_EQ(single[i].distance, sharded[i].distance) << what << " rank " << i;
  }
}

void ExpectSameMatches(const std::vector<burst::BurstMatch>& single,
                       const std::vector<burst::BurstMatch>& sharded,
                       const std::string& what) {
  ASSERT_EQ(single.size(), sharded.size()) << what;
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].series_id, sharded[i].series_id) << what << " rank " << i;
    EXPECT_EQ(single[i].bsim, sharded[i].bsim) << what << " rank " << i;
  }
}

TEST(ShardEquivalenceTest, SimilarToIsShardCountInvisible) {
  for (uint64_t seed : kSeeds) {
    core::S2Engine single = MakeSingle(seed);
    for (size_t shards : kShardCounts) {
      ShardedEngine sharded = MakeSharded(seed, shards);
      ASSERT_EQ(sharded.size(), kNumSeries);
      for (ts::SeriesId id = 0; id < kNumSeries; id += 5) {
        auto expected = single.SimilarTo(id, kK);
        ASSERT_TRUE(expected.ok());
        ShardedEngine::QueryStats stats;
        auto actual = sharded.SimilarTo(id, kK, &stats);
        ASSERT_TRUE(actual.ok()) << actual.status().ToString();
        ExpectSameNeighbors(*expected, *actual,
                            "seed " + std::to_string(seed) + " shards " +
                                std::to_string(shards) + " id " +
                                std::to_string(id));
        EXPECT_EQ(stats.fanout, sharded.num_shards());
      }
    }
  }
}

TEST(ShardEquivalenceTest, SimilarToSeriesIsShardCountInvisible) {
  for (uint64_t seed : kSeeds) {
    core::S2Engine single = MakeSingle(seed);
    qlog::CorpusSpec spec;
    spec.num_series = kNumSeries;
    spec.n_days = kDays;
    spec.seed = seed;
    auto queries = qlog::GenerateQueries(spec, 4);
    ASSERT_TRUE(queries.ok());
    for (size_t shards : kShardCounts) {
      ShardedEngine sharded = MakeSharded(seed, shards);
      for (const ts::TimeSeries& query : *queries) {
        auto expected = single.SimilarToSeries(query.values, kK);
        ASSERT_TRUE(expected.ok());
        auto actual = sharded.SimilarToSeries(query.values, kK);
        ASSERT_TRUE(actual.ok()) << actual.status().ToString();
        ExpectSameNeighbors(*expected, *actual,
                            "external query, seed " + std::to_string(seed) +
                                " shards " + std::to_string(shards));
      }
    }
  }
}

TEST(ShardEquivalenceTest, SimilarToDtwIsShardCountInvisible) {
  // DTW is the most expensive verb; one seed and fewer probes keep the test
  // quick while still covering every shard count.
  const uint64_t seed = kSeeds[0];
  core::S2Engine single = MakeSingle(seed);
  for (size_t shards : kShardCounts) {
    ShardedEngine sharded = MakeSharded(seed, shards);
    for (ts::SeriesId id = 0; id < kNumSeries; id += 17) {
      auto expected = single.SimilarToDtw(id, kK);
      ASSERT_TRUE(expected.ok());
      auto actual = sharded.SimilarToDtw(id, kK);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      ExpectSameNeighbors(*expected, *actual,
                          "dtw shards " + std::to_string(shards) + " id " +
                              std::to_string(id));
    }
  }
}

TEST(ShardEquivalenceTest, ExactFallbacksAreShardCountInvisible) {
  const uint64_t seed = kSeeds[1];
  core::S2Engine single = MakeSingle(seed);
  for (size_t shards : kShardCounts) {
    ShardedEngine sharded = MakeSharded(seed, shards);
    for (ts::SeriesId id = 0; id < kNumSeries; id += 23) {
      auto expected = single.SimilarToExact(id, kK);
      ASSERT_TRUE(expected.ok());
      auto actual = sharded.SimilarToExact(id, kK);
      ASSERT_TRUE(actual.ok());
      ExpectSameNeighbors(*expected, *actual, "exact euclid");

      auto expected_dtw = single.SimilarToDtwExact(id, kK);
      ASSERT_TRUE(expected_dtw.ok());
      auto actual_dtw = sharded.SimilarToDtwExact(id, kK);
      ASSERT_TRUE(actual_dtw.ok());
      ExpectSameNeighbors(*expected_dtw, *actual_dtw, "exact dtw");
    }
  }
}

TEST(ShardEquivalenceTest, PeriodsAndBurstsRouteToTheOwnerUnchanged) {
  for (uint64_t seed : kSeeds) {
    core::S2Engine single = MakeSingle(seed);
    for (size_t shards : {size_t{3}, size_t{8}}) {
      ShardedEngine sharded = MakeSharded(seed, shards);
      for (ts::SeriesId id = 0; id < kNumSeries; id += 11) {
        auto expected_periods = single.FindPeriods(id);
        auto actual_periods = sharded.FindPeriods(id);
        ASSERT_TRUE(expected_periods.ok());
        ASSERT_TRUE(actual_periods.ok());
        ASSERT_EQ(expected_periods->size(), actual_periods->size());
        for (size_t i = 0; i < expected_periods->size(); ++i) {
          EXPECT_EQ((*expected_periods)[i].period, (*actual_periods)[i].period);
          EXPECT_EQ((*expected_periods)[i].power, (*actual_periods)[i].power);
        }
        for (core::BurstHorizon horizon :
             {core::BurstHorizon::kLongTerm, core::BurstHorizon::kShortTerm}) {
          auto expected_bursts = single.BurstsOf(id, horizon);
          auto actual_bursts = sharded.BurstsOf(id, horizon);
          ASSERT_TRUE(expected_bursts.ok());
          ASSERT_TRUE(actual_bursts.ok());
          ASSERT_EQ(expected_bursts->size(), actual_bursts->size());
          for (size_t i = 0; i < expected_bursts->size(); ++i) {
            EXPECT_EQ((*expected_bursts)[i].start, (*actual_bursts)[i].start);
            EXPECT_EQ((*expected_bursts)[i].end, (*actual_bursts)[i].end);
            EXPECT_EQ((*expected_bursts)[i].avg_value,
                      (*actual_bursts)[i].avg_value);
          }
        }
      }
    }
  }
}

TEST(ShardEquivalenceTest, QueryByBurstIsShardCountInvisible) {
  for (uint64_t seed : kSeeds) {
    core::S2Engine single = MakeSingle(seed);
    for (size_t shards : kShardCounts) {
      ShardedEngine sharded = MakeSharded(seed, shards);
      for (ts::SeriesId id = 0; id < kNumSeries; id += 13) {
        auto expected =
            single.QueryByBurst(id, kK, core::BurstHorizon::kLongTerm);
        ASSERT_TRUE(expected.ok());
        auto actual = sharded.QueryByBurst(id, kK, core::BurstHorizon::kLongTerm);
        ASSERT_TRUE(actual.ok());
        ExpectSameMatches(*expected, *actual,
                          "qbb seed " + std::to_string(seed) + " shards " +
                              std::to_string(shards) + " id " +
                              std::to_string(id));
      }
    }
  }
}

TEST(ShardEquivalenceTest, FindByNameResolvesLikeTheSingleCatalog) {
  const uint64_t seed = kSeeds[0];
  core::S2Engine single = MakeSingle(seed);
  ShardedEngine sharded = MakeSharded(seed, 3);
  for (ts::SeriesId id = 0; id < kNumSeries; id += 9) {
    const std::string& name = single.corpus().at(id).name;
    auto expected = single.FindByName(name);
    auto actual = sharded.FindByName(name);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(*expected, *actual) << name;
  }
  EXPECT_FALSE(sharded.FindByName("no_such_query").ok());
}

TEST(ShardEquivalenceTest, AddSeriesKeepsEquivalenceAndBalance) {
  const uint64_t seed = kSeeds[2];
  core::S2Engine single = MakeSingle(seed);
  ShardedEngine sharded = MakeSharded(seed, 3);

  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = seed;
  auto extra = qlog::GenerateQueries(spec, 6);
  ASSERT_TRUE(extra.ok());
  for (const ts::TimeSeries& series : *extra) {
    auto single_id = single.AddSeries(series);
    auto sharded_id = sharded.AddSeries(series);
    ASSERT_TRUE(single_id.ok());
    ASSERT_TRUE(sharded_id.ok());
    // Global ids stay dense and aligned with the single engine's.
    EXPECT_EQ(*single_id, *sharded_id);
  }
  ASSERT_TRUE(sharded.ValidateInvariants().ok());

  // Least-loaded routing from a round-robin start keeps shards balanced.
  size_t min_size = sharded.shard(0).corpus().size();
  size_t max_size = min_size;
  for (size_t s = 1; s < sharded.num_shards(); ++s) {
    min_size = std::min(min_size, sharded.shard(s).corpus().size());
    max_size = std::max(max_size, sharded.shard(s).corpus().size());
  }
  EXPECT_LE(max_size - min_size, 1u);

  // Queries over the grown corpus still match, including for the new ids.
  for (ts::SeriesId id : {ts::SeriesId{0}, ts::SeriesId{kNumSeries},
                          ts::SeriesId{kNumSeries + 5}}) {
    auto expected = single.SimilarTo(id, kK);
    auto actual = sharded.SimilarTo(id, kK);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    ExpectSameNeighbors(*expected, *actual, "post-add id " + std::to_string(id));
  }
}

TEST(ShardEquivalenceTest, AddSeriesPlacementIsDeterministicWithLowestShardTies) {
  // Pins the least-loaded tie-break documented in ShardedEngine::AddSeries:
  // on equal load the *lowest* shard id wins, so placement is a pure
  // function of the AddSeries sequence. 72 series over 3 shards start out
  // at 24 apiece, so each wave of three adds must sweep shards 0, 1, 2 in
  // that order. If this test breaks, so does WAL replay onto a rebuilt
  // sharded server (replay assumes ids resolve to the same owners).
  const uint64_t seed = kSeeds[0];
  ShardedEngine sharded = MakeSharded(seed, 3);
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = seed;
  auto extra = qlog::GenerateQueries(spec, 7);
  ASSERT_TRUE(extra.ok());

  const uint32_t want_shard[] = {0, 1, 2, 0, 1, 2, 0};
  for (size_t i = 0; i < extra->size(); ++i) {
    auto id = sharded.AddSeries((*extra)[i]);
    ASSERT_TRUE(id.ok());
    auto placement = sharded.PlacementOf(*id);
    ASSERT_TRUE(placement.ok());
    EXPECT_EQ(placement->shard, want_shard[i]) << "add " << i;
  }

  // Replaying the identical sequence into a second engine reproduces every
  // placement bit-for-bit — nothing about routing depends on hidden state.
  ShardedEngine replayed = MakeSharded(seed, 3);
  for (const ts::TimeSeries& series : *extra) {
    ASSERT_TRUE(replayed.AddSeries(series).ok());
  }
  ASSERT_EQ(replayed.size(), sharded.size());
  for (ts::SeriesId id = 0; id < sharded.size(); ++id) {
    auto a = sharded.PlacementOf(id);
    auto b = replayed.PlacementOf(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->shard, b->shard) << "id " << id;
    EXPECT_EQ(a->local, b->local) << "id " << id;
  }
}

TEST(ShardEquivalenceTest, ServerAnswersMatchAcrossTopologies) {
  // The same invisibility must hold one layer up, through S2Server::Build.
  const uint64_t seed = kSeeds[1];
  service::S2Server::Options single_options;
  single_options.scheduler.threads = 1;
  service::S2Server::Options sharded_options = single_options;
  sharded_options.shards = 4;
  auto single = service::S2Server::Build(MakeCorpus(seed), EngineOptions(),
                                         single_options);
  auto sharded = service::S2Server::Build(MakeCorpus(seed), EngineOptions(),
                                          sharded_options);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(sharded.ok());
  EXPECT_FALSE((*single)->is_sharded());
  EXPECT_TRUE((*sharded)->is_sharded());
  for (service::RequestKind kind :
       {service::RequestKind::kSimilarTo, service::RequestKind::kSimilarToDtw,
        service::RequestKind::kPeriodsOf, service::RequestKind::kBurstsOf,
        service::RequestKind::kQueryByBurst}) {
    service::QueryRequest request;
    request.kind = kind;
    request.id = 3;
    request.k = kK;
    service::QueryResponse a = (*single)->Execute(request);
    service::QueryResponse b = (*sharded)->Execute(request);
    ASSERT_TRUE(a.status.ok()) << a.status.ToString();
    ASSERT_TRUE(b.status.ok()) << b.status.ToString();
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
      EXPECT_EQ(a.neighbors[i].distance, b.neighbors[i].distance);
    }
    ASSERT_EQ(a.periods.size(), b.periods.size());
    ASSERT_EQ(a.bursts.size(), b.bursts.size());
    ASSERT_EQ(a.burst_matches.size(), b.burst_matches.size());
    for (size_t i = 0; i < a.burst_matches.size(); ++i) {
      EXPECT_EQ(a.burst_matches[i].series_id, b.burst_matches[i].series_id);
      EXPECT_EQ(a.burst_matches[i].bsim, b.burst_matches[i].bsim);
    }
  }
  // Sharded execution exported fan-out metrics.
  EXPECT_GT((*sharded)->metrics().counter("server_shard_fanout")->value(), 0u);
}

TEST(ShardEquivalenceTest, DiskResidentShardsStayEquivalent) {
  const uint64_t seed = kSeeds[0];
  core::S2Engine single = MakeSingle(seed);
  io::MemEnv env;
  ShardedEngine::Options options;
  options.num_shards = 3;
  options.engine = EngineOptions();
  options.engine.disk_store_path = "equiv_store.bin";
  options.engine.env = &env;
  auto sharded = ShardedEngine::Build(MakeCorpus(seed), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  for (ts::SeriesId id = 0; id < kNumSeries; id += 19) {
    auto expected = single.SimilarTo(id, kK);
    auto actual = sharded->SimilarTo(id, kK);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ExpectSameNeighbors(*expected, *actual, "disk-resident shards");
  }
}

}  // namespace
}  // namespace s2::shard
