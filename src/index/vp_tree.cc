#include "index/vp_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstring>
#include <memory>
#include <numeric>
#include <unordered_set>

#include "common/rng.h"
#include "diag/validate.h"
#include "io/durable.h"
#include "io/serial.h"
#include "repr/feature_store.h"
#include "repr/row_matrix.h"
#include "dsp/stats.h"
#include "simd/simd.h"

namespace s2::index {

namespace {

// Exact Euclidean distance used during construction (uncompressed data).
double ExactDistance(const double* a, const double* b, size_t n) {
  return std::sqrt(dsp::SquaredEuclidean(a, b, n));
}

double ExactDistance(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  return ExactDistance(a.data(), b.data(), n);
}

}  // namespace

struct VpTreeIndex::Builder {
  // Contiguous SoA copy of the input rows: one allocation, fixed stride,
  // rows the vectorized distance kernel can stream with prefetch.
  const repr::RowMatrix& rows;
  const VpTreeIndex::Options& options;
  const std::vector<repr::HalfSpectrum>& spectra;
  std::vector<VpTreeIndex::Node>* nodes;
  Rng rng;

  Builder(const repr::RowMatrix& r,
          const VpTreeIndex::Options& o,
          const std::vector<repr::HalfSpectrum>& s,
          std::vector<VpTreeIndex::Node>* n)
      : rows(r), options(o), spectra(s), nodes(n), rng(o.seed) {}

  Result<repr::CompressedSpectrum> CompressOf(ts::SeriesId id) {
    if (options.energy_fraction > 0.0) {
      return repr::CompressedSpectrum::CompressToEnergy(spectra[id],
                                                        options.energy_fraction);
    }
    return repr::CompressedSpectrum::Compress(spectra[id], options.repr_kind,
                                              options.budget_c);
  }

  // The paper's vantage-point heuristic: among sampled candidates pick the
  // one with the highest standard deviation of distances to the others ("an
  // analogue of the largest eigenvector in SVD decomposition").
  ts::SeriesId PickVantage(const std::vector<ts::SeriesId>& ids) {
    const size_t n_cands = std::min(options.vantage_candidates, ids.size());
    const size_t n_probe = std::min(options.deviation_sample, ids.size());
    ts::SeriesId best_id = ids.front();
    double best_dev = -1.0;
    for (size_t c = 0; c < n_cands; ++c) {
      const ts::SeriesId cand =
          ids[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
      std::vector<double> dists;
      dists.reserve(n_probe);
      for (size_t p = 0; p < n_probe; ++p) {
        const ts::SeriesId other =
            ids[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
        if (other == cand) continue;
        dists.push_back(
            ExactDistance(rows.row(cand), rows.row(other), rows.row_length()));
      }
      const double dev = dsp::StdDev(dists);
      if (dev > best_dev) {
        best_dev = dev;
        best_id = cand;
      }
    }
    return best_id;
  }

  Result<int32_t> BuildNode(std::vector<ts::SeriesId> ids) {
    if (ids.size() <= options.leaf_size) {
      VpTreeIndex::Node node;
      node.leaf = true;
      node.bucket.reserve(ids.size());
      for (ts::SeriesId id : ids) {
        S2_ASSIGN_OR_RETURN(repr::CompressedSpectrum compressed, CompressOf(id));
        node.bucket.push_back({id, std::move(compressed)});
      }
      nodes->push_back(std::move(node));
      return static_cast<int32_t>(nodes->size() - 1);
    }

    const ts::SeriesId vp = PickVantage(ids);

    // Exact distances to the vantage point; the vantage point is compressed
    // only after the split is decided.
    struct DistEntry {
      ts::SeriesId id;
      double dist;
    };
    std::vector<DistEntry> entries;
    entries.reserve(ids.size() - 1);
    const double* vp_row = rows.row(vp);
    for (size_t i = 0; i < ids.size(); ++i) {
      const ts::SeriesId id = ids[i];
      if (id == vp) continue;
      if (i + 1 < ids.size()) simd::PrefetchRead(rows.row(ids[i + 1]));
      entries.push_back(
          {id, ExactDistance(vp_row, rows.row(id), rows.row_length())});
    }

    const size_t mid = entries.size() / 2;
    std::nth_element(entries.begin(), entries.begin() + static_cast<ptrdiff_t>(mid),
                     entries.end(),
                     [](const DistEntry& a, const DistEntry& b) {
                       return a.dist < b.dist;
                     });
    const double median = entries[mid].dist;

    std::vector<ts::SeriesId> left_ids;
    std::vector<ts::SeriesId> right_ids;
    left_ids.reserve(mid);
    right_ids.reserve(entries.size() - mid);
    for (size_t i = 0; i < entries.size(); ++i) {
      (i < mid ? left_ids : right_ids).push_back(entries[i].id);
    }

    S2_ASSIGN_OR_RETURN(repr::CompressedSpectrum compressed, CompressOf(vp));

    // Reserve this node's slot before recursing so child ids are stable.
    nodes->push_back(VpTreeIndex::Node{});
    const int32_t node_id = static_cast<int32_t>(nodes->size() - 1);

    int32_t left = -1;
    int32_t right = -1;
    if (!left_ids.empty()) {
      S2_ASSIGN_OR_RETURN(left, BuildNode(std::move(left_ids)));
    }
    if (!right_ids.empty()) {
      S2_ASSIGN_OR_RETURN(right, BuildNode(std::move(right_ids)));
    }

    VpTreeIndex::Node& node = (*nodes)[static_cast<size_t>(node_id)];
    node.leaf = false;
    node.vantage = {vp, std::move(compressed)};
    node.median = median;
    node.left = left;
    node.right = right;
    return node_id;
  }
};

Result<VpTreeIndex> VpTreeIndex::Build(const std::vector<std::vector<double>>& rows,
                                       const Options& options) {
  if (rows.empty()) return Status::InvalidArgument("VpTreeIndex: empty input");
  const size_t length = rows.front().size();
  if (length == 0) return Status::InvalidArgument("VpTreeIndex: empty sequences");
  for (const auto& row : rows) {
    if (row.size() != length) {
      return Status::InvalidArgument("VpTreeIndex: ragged input rows");
    }
  }
  if (options.leaf_size == 0) {
    return Status::InvalidArgument("VpTreeIndex: leaf_size must be > 0");
  }

  std::vector<repr::HalfSpectrum> spectra;
  spectra.reserve(rows.size());
  for (const auto& row : rows) {
    S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                        repr::HalfSpectrum::FromSeriesInBasis(row, options.basis));
    spectra.push_back(std::move(spectrum));
  }

  std::vector<Node> nodes;
  const repr::RowMatrix matrix = repr::RowMatrix::FromRows(rows);
  Builder builder(matrix, options, spectra, &nodes);
  std::vector<ts::SeriesId> ids(rows.size());
  std::iota(ids.begin(), ids.end(), 0u);
  S2_ASSIGN_OR_RETURN(int32_t root, builder.BuildNode(std::move(ids)));

  return VpTreeIndex(options, std::move(nodes), root, rows.size(),
                     static_cast<uint32_t>(length));
}

Result<VpTreeIndex> VpTreeIndex::CreateEmpty(const Options& options,
                                             uint32_t series_length) {
  if (series_length == 0) {
    return Status::InvalidArgument("VpTreeIndex: empty sequences");
  }
  if (options.leaf_size == 0) {
    return Status::InvalidArgument("VpTreeIndex: leaf_size must be > 0");
  }
  return VpTreeIndex(options, {}, /*root=*/-1, /*num_objects=*/0, series_length);
}

void VpTreeIndex::SearchNode(int32_t node_id, const repr::HalfSpectrum& query,
                             std::vector<Candidate>* candidates,
                             BestList* upper_bounds, SearchStats* stats,
                             SharedRadius* shared) const {
  if (node_id < 0) return;
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  ++stats->nodes_visited;

  // Cross-shard pruning: another partition's published radius already
  // upper-bounds the global k-th distance, so every prune below compares
  // against the tighter of it and the local k-th upper bound. Publishing is
  // sound in the other direction too: a full local upper-bound list is
  // witnessed by k real objects of this partition, so its threshold
  // upper-bounds the global k-th distance as well.
  if (node.leaf) {
    for (const Entry& entry : node.bucket) {
      auto bounds = repr::ComputeBounds(query, entry.repr, options_.method);
      if (!bounds.ok()) continue;  // Cannot happen for a well-formed index.
      ++stats->bound_computations;
      candidates->push_back({entry.id, bounds->lower, bounds->upper});
      upper_bounds->Offer(entry.id, bounds->upper);
    }
    if (shared != nullptr && upper_bounds->Full()) {
      shared->Tighten(upper_bounds->Threshold());
    }
    return;
  }

  auto bounds = repr::ComputeBounds(query, node.vantage.repr, options_.method);
  if (!bounds.ok()) return;
  ++stats->bound_computations;
  if (!node.vantage_deleted) {
    candidates->push_back({node.vantage.id, bounds->lower, bounds->upper});
    upper_bounds->Offer(node.vantage.id, bounds->upper);
    if (shared != nullptr && upper_bounds->Full()) {
      shared->Tighten(upper_bounds->Threshold());
    }
  }

  const double lb = bounds->lower;
  const double ub = bounds->upper;
  const double mu = node.median;

  // The annulus heuristic: visit first the child whose distance region
  // overlaps [LB, UB] the most (Section 4.1).
  bool left_first = true;
  if (options_.guided_traversal && std::isfinite(ub)) {
    const double left_overlap = std::max(0.0, std::min(ub, mu) - lb);
    const double right_overlap = std::max(0.0, ub - std::max(lb, mu));
    left_first = left_overlap >= right_overlap;
  }

  // Prune rules (triangle inequality through the vantage point):
  //   every object in the left subtree is within mu of the VP, so its
  //   distance to Q is at least LB - mu; skip left when that exceeds the
  //   best-so-far upper bound. Symmetrically skip right when mu - UB does.
  // With a shared radius the comparison is against the tighter of the local
  // threshold and the cross-partition bound, re-read at visit time because
  // both improve as the traversal proceeds.
  auto visit_subtree = [&](int32_t child, double subtree_lb) {
    const double local = upper_bounds->Threshold();
    double limit = local;
    if (shared != nullptr) limit = std::min(limit, shared->load());
    if (subtree_lb <= limit) {
      SearchNode(child, query, candidates, upper_bounds, stats, shared);
    } else if (subtree_lb <= local) {
      ++stats->shared_radius_prunes;  // Only the shared bound made the cut.
    }
  };
  auto visit_left = [&] { visit_subtree(node.left, lb - mu); };
  auto visit_right = [&] { visit_subtree(node.right, mu - ub); };
  if (left_first) {
    visit_left();
    visit_right();
  } else {
    visit_right();
    visit_left();
  }
}

Result<std::vector<VpTreeIndex::Candidate>> VpTreeIndex::CollectCandidates(
    const std::vector<double>& query, size_t k, SearchStats* stats,
    SharedRadius* shared) const {
  if (query.size() != series_length_) {
    return Status::InvalidArgument("VpTreeIndex: query length mismatch");
  }
  if (k == 0) return Status::InvalidArgument("VpTreeIndex: k must be > 0");
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                      repr::HalfSpectrum::FromSeriesInBasis(query, options_.basis));
  std::vector<Candidate> candidates;
  BestList upper_bounds(k);
  SearchNode(root_, spectrum, &candidates, &upper_bounds, stats, shared);

  // SUB filter: no object whose lower bound exceeds the k-th smallest upper
  // bound can be a k-nearest neighbor — and under scatter-gather, none
  // beyond the shared radius can be in the *global* top-k either.
  double sub = upper_bounds.Threshold();
  if (shared != nullptr) {
    const double remote = shared->load();
    if (remote < sub) {
      sub = remote;
      ++stats->shared_radius_prunes;  // The filter itself got tighter.
    }
  }
  std::erase_if(candidates, [sub](const Candidate& c) { return c.lower > sub; });
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.lower < b.lower; });
  stats->candidates_surviving = candidates.size();
  return candidates;
}

Result<std::vector<Neighbor>> VpTreeIndex::Search(const std::vector<double>& query,
                                                  size_t k,
                                                  storage::SequenceSource* source,
                                                  SearchStats* stats,
                                                  SharedRadius* shared) const {
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (source == nullptr) {
    return Status::InvalidArgument("VpTreeIndex: source must not be null");
  }
  S2_ASSIGN_OR_RETURN(std::vector<Candidate> candidates,
                      CollectCandidates(query, k, stats, shared));

  // Verification in ascending lower-bound order with early termination.
  // Under scatter-gather the stop/abandon threshold is additionally clamped
  // to the shared radius; a distance computed against that clamp may be a
  // truncated partial value, so it is only Offered when provably complete
  // (strictly below the clamp used to abandon it).
  BestList best(k);
  for (const Candidate& candidate : candidates) {
    const double local = best.Threshold();
    double threshold = local;
    if (shared != nullptr) threshold = std::min(threshold, shared->load());
    if (best.Full() && candidate.lower > local) break;
    if (candidate.lower > threshold) {
      // Beyond the shared radius: cannot enter the global top-k. Later
      // candidates may still be needed for the *local* exact list when the
      // caller is a plain search, but under shared pruning we only owe the
      // global-plausible subset — skip, do not break (the shared radius is
      // not monotone in candidate.lower order guarantees).
      ++stats->shared_radius_prunes;
      continue;
    }
    S2_ASSIGN_OR_RETURN(std::vector<double> row, source->Get(candidate.id));
    ++stats->full_retrievals;
    const double abandon_sq = std::isinf(threshold)
                                  ? std::numeric_limits<double>::infinity()
                                  : threshold * threshold;
    const double dist_sq = dsp::SquaredEuclideanEarlyAbandon(
        query.data(), row.data(), query.size(), abandon_sq);
    // Gate in the squared domain: the kernel's result is <= abandon_sq
    // exactly when it is the complete squared distance (abandoned partials
    // exceed the limit by construction), so truncated values can never
    // enter — even when `shared` is tighter than the local list. The old
    // sqrt-domain gate (`sqrt(sum) <= threshold`) could round an abandoned
    // partial down onto the threshold and break pruning exactness by an
    // ulp; comparing sums of squares is airtight.
    if (dist_sq <= abandon_sq) {
      best.Offer(candidate.id, std::sqrt(dist_sq));
      if (shared != nullptr && best.Full()) shared->Tighten(best.Threshold());
    }
  }
  return std::move(best).Take();
}

Result<repr::CompressedSpectrum> VpTreeIndex::CompressRow(
    const std::vector<double>& row) const {
  S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                      repr::HalfSpectrum::FromSeriesInBasis(row, options_.basis));
  if (options_.energy_fraction > 0.0) {
    return repr::CompressedSpectrum::CompressToEnergy(spectrum,
                                                      options_.energy_fraction);
  }
  return repr::CompressedSpectrum::Compress(spectrum, options_.repr_kind,
                                            options_.budget_c);
}

bool VpTreeIndex::ContainsId(ts::SeriesId id) const {
  for (const Node& node : nodes_) {
    if (node.leaf) {
      for (const Entry& entry : node.bucket) {
        if (entry.id == id) return true;
      }
    } else if (node.vantage.id == id && !node.vantage_deleted) {
      return true;
    }
  }
  return false;
}

Status VpTreeIndex::Insert(ts::SeriesId id, const std::vector<double>& row,
                           storage::SequenceSource* source) {
  if (row.size() != series_length_) {
    return Status::InvalidArgument("VpTreeIndex::Insert: row length mismatch");
  }
  if (source == nullptr) {
    return Status::InvalidArgument("VpTreeIndex::Insert: source must not be null");
  }
  if (ContainsId(id)) {
    return Status::AlreadyExists("VpTreeIndex::Insert: id already indexed");
  }

  // An empty index (CreateEmpty) grows its first leaf here.
  if (root_ < 0) {
    Node leaf;
    leaf.leaf = true;
    nodes_.push_back(std::move(leaf));
    root_ = static_cast<int32_t>(nodes_.size() - 1);
  }

  // Route by exact distance to each vantage point; the full vantage
  // representations are fetched from the store — except for tombstones with
  // a pinned row, whose store row may have changed since (see Remove).
  int32_t node_id = root_;
  while (!nodes_[static_cast<size_t>(node_id)].leaf) {
    Node& node = nodes_[static_cast<size_t>(node_id)];
    double dist = 0.0;
    if (node.vantage_deleted && !node.pinned_row.empty()) {
      dist = ExactDistance(row, node.pinned_row);
    } else {
      S2_ASSIGN_OR_RETURN(std::vector<double> vantage_row,
                          source->Get(node.vantage.id));
      dist = ExactDistance(row, vantage_row);
    }
    int32_t* child = dist < node.median ? &node.left : &node.right;
    if (*child < 0) {
      // Attach a fresh leaf on the empty side.
      Node leaf;
      leaf.leaf = true;
      nodes_.push_back(std::move(leaf));
      // nodes_ may have reallocated; re-resolve the parent before writing.
      Node& parent = nodes_[static_cast<size_t>(node_id)];
      child = dist < parent.median ? &parent.left : &parent.right;
      *child = static_cast<int32_t>(nodes_.size() - 1);
    }
    node_id = *child;
  }

  S2_ASSIGN_OR_RETURN(repr::CompressedSpectrum compressed, CompressRow(row));
  nodes_[static_cast<size_t>(node_id)].bucket.push_back(
      {id, std::move(compressed)});
  ++num_objects_;

  if (nodes_[static_cast<size_t>(node_id)].bucket.size() > 2 * options_.leaf_size) {
    S2_RETURN_NOT_OK(SplitLeaf(node_id, source));
  }
  return Status::OK();
}

Status VpTreeIndex::SplitLeaf(int32_t node_id, storage::SequenceSource* source) {
  // Fetch the bucket's full rows once.
  std::vector<Entry> bucket = std::move(nodes_[static_cast<size_t>(node_id)].bucket);
  nodes_[static_cast<size_t>(node_id)].bucket.clear();
  std::vector<std::vector<double>> rows;
  rows.reserve(bucket.size());
  for (const Entry& entry : bucket) {
    S2_ASSIGN_OR_RETURN(std::vector<double> full, source->Get(entry.id));
    rows.push_back(std::move(full));
  }

  // Vantage point: the member with the highest deviation of distances to
  // the others (the construction heuristic, computed exactly here since the
  // bucket is small).
  size_t vantage_slot = 0;
  double best_dev = -1.0;
  for (size_t cand = 0; cand < rows.size(); ++cand) {
    std::vector<double> dists;
    dists.reserve(rows.size() - 1);
    for (size_t other = 0; other < rows.size(); ++other) {
      if (other != cand) dists.push_back(ExactDistance(rows[cand], rows[other]));
    }
    const double dev = dsp::StdDev(dists);
    if (dev > best_dev) {
      best_dev = dev;
      vantage_slot = cand;
    }
  }

  struct DistEntry {
    size_t slot;
    double dist;
  };
  std::vector<DistEntry> entries;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i == vantage_slot) continue;
    entries.push_back({i, ExactDistance(rows[vantage_slot], rows[i])});
  }
  const size_t mid = entries.size() / 2;
  std::nth_element(
      entries.begin(), entries.begin() + static_cast<ptrdiff_t>(mid), entries.end(),
      [](const DistEntry& a, const DistEntry& b) { return a.dist < b.dist; });
  const double median = entries[mid].dist;

  Node left;
  left.leaf = true;
  Node right;
  right.leaf = true;
  for (size_t i = 0; i < entries.size(); ++i) {
    (i < mid ? left : right).bucket.push_back(std::move(bucket[entries[i].slot]));
  }
  nodes_.push_back(std::move(left));
  const int32_t left_id = static_cast<int32_t>(nodes_.size() - 1);
  nodes_.push_back(std::move(right));
  const int32_t right_id = static_cast<int32_t>(nodes_.size() - 1);

  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.leaf = false;
  node.vantage = std::move(bucket[vantage_slot]);
  node.vantage_deleted = false;
  node.pinned_row.clear();
  node.median = median;
  node.left = left_id;
  node.right = right_id;
  return Status::OK();
}

Status VpTreeIndex::Remove(ts::SeriesId id,
                           const std::vector<double>* pinned_row) {
  if (pinned_row != nullptr && pinned_row->size() != series_length_) {
    return Status::InvalidArgument("VpTreeIndex::Remove: pinned row length mismatch");
  }
  for (Node& node : nodes_) {
    if (node.leaf) {
      for (size_t i = 0; i < node.bucket.size(); ++i) {
        if (node.bucket[i].id == id) {
          node.bucket.erase(node.bucket.begin() + static_cast<ptrdiff_t>(i));
          --num_objects_;
          return Status::OK();
        }
      }
    } else if (node.vantage.id == id && !node.vantage_deleted) {
      node.vantage_deleted = true;
      if (pinned_row != nullptr) node.pinned_row = *pinned_row;
      ++num_tombstones_;
      --num_objects_;
      return Status::OK();
    }
  }
  return Status::NotFound("VpTreeIndex::Remove: id not indexed");
}

namespace {

constexpr char kIndexMagic[8] = {'S', '2', 'V', 'P', 'T', 'R', '0', '1'};

template <typename T>
bool PutScalar(io::File* f, T value) {
  return io::WriteScalar(f, value).ok();
}

template <typename T>
bool GetScalar(io::File* f, T* value) {
  return io::ReadScalar(f, value).ok();
}

}  // namespace

Status VpTreeIndex::Save(const std::string& path, io::Env* env) const {
  if (env == nullptr) env = io::Env::Default();
  // Serialize into RAM, then commit the image as one generation: readers of
  // `path` only ever observe a complete index, and a crash mid-save leaves
  // the previous generation in place.
  io::BufferFile buffer;
  io::File* f = &buffer;

  bool ok = io::WriteExact(f, kIndexMagic, sizeof(kIndexMagic)).ok() &&
            PutScalar<uint8_t>(f, static_cast<uint8_t>(options_.repr_kind)) &&
            PutScalar<uint8_t>(f, static_cast<uint8_t>(options_.basis)) &&
            PutScalar<uint8_t>(f, static_cast<uint8_t>(options_.method)) &&
            PutScalar<uint64_t>(f, options_.budget_c) &&
            PutScalar(f, options_.energy_fraction) &&
            PutScalar<uint64_t>(f, options_.leaf_size) &&
            PutScalar<uint8_t>(f, options_.guided_traversal ? 1 : 0) &&
            PutScalar<uint32_t>(f, series_length_) &&
            PutScalar<uint64_t>(f, num_objects_) &&
            PutScalar<uint64_t>(f, num_tombstones_) &&
            PutScalar<int32_t>(f, root_) &&
            PutScalar<uint64_t>(f, nodes_.size());
  if (!ok) return Status::IoError("VpTreeIndex::Save: short write");

  for (const Node& node : nodes_) {
    ok = PutScalar<uint8_t>(f, node.leaf ? 1 : 0) &&
         PutScalar<uint8_t>(f, node.vantage_deleted ? 1 : 0) &&
         PutScalar(f, node.median) && PutScalar(f, node.left) &&
         PutScalar(f, node.right);
    if (!ok) return Status::IoError("VpTreeIndex::Save: short write");
    if (node.leaf) {
      if (!PutScalar<uint64_t>(f, node.bucket.size())) {
        return Status::IoError("VpTreeIndex::Save: short write");
      }
      for (const Entry& entry : node.bucket) {
        if (!PutScalar(f, entry.id)) {
          return Status::IoError("VpTreeIndex::Save: short write");
        }
        S2_RETURN_NOT_OK(repr::WriteFeatureRecord(f, entry.repr));
      }
    } else {
      if (!PutScalar(f, node.vantage.id)) {
        return Status::IoError("VpTreeIndex::Save: short write");
      }
      S2_RETURN_NOT_OK(repr::WriteFeatureRecord(f, node.vantage.repr));
    }
  }
  return io::durable::CommitNext(env, path, std::move(buffer).TakeBytes());
}

Result<VpTreeIndex> VpTreeIndex::Load(const std::string& path, io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  std::vector<char> bytes;
  S2_RETURN_NOT_OK(io::durable::LoadLatest(env, path, &bytes));
  io::BufferFile buffer(std::move(bytes));
  io::File* f = &buffer;
  const uint64_t file_size = buffer.bytes().size();

  char magic[sizeof(kIndexMagic)];
  uint8_t repr_kind = 0;
  uint8_t basis = 0;
  uint8_t method = 0;
  uint64_t budget_c = 0;
  double energy_fraction = 0.0;
  uint64_t leaf_size = 0;
  uint8_t guided = 0;
  uint32_t series_length = 0;
  uint64_t num_objects = 0;
  uint64_t num_tombstones = 0;
  int32_t root = -1;
  uint64_t node_count = 0;
  bool ok = io::ReadExact(f, magic, sizeof(magic)).ok() &&
            std::memcmp(magic, kIndexMagic, sizeof(kIndexMagic)) == 0 &&
            GetScalar(f, &repr_kind) && GetScalar(f, &basis) &&
            GetScalar(f, &method) && GetScalar(f, &budget_c) &&
            GetScalar(f, &energy_fraction) && GetScalar(f, &leaf_size) &&
            GetScalar(f, &guided) && GetScalar(f, &series_length) &&
            GetScalar(f, &num_objects) && GetScalar(f, &num_tombstones) &&
            GetScalar(f, &root) && GetScalar(f, &node_count);
  if (!ok || repr_kind > 3 || basis > 1 || method > 6) {
    return Status::Corruption("VpTreeIndex::Load: bad header in " + path);
  }
  // Bound the declared node count by the bytes actually present (the
  // smallest node is an empty leaf), so a corrupt header cannot trigger a
  // huge reserve.
  constexpr uint64_t kMinNodeBytes = 2 * sizeof(uint8_t) + sizeof(double) +
                                     2 * sizeof(int32_t) + sizeof(uint64_t);
  constexpr uint64_t kHeaderBytes = sizeof(kIndexMagic) + 3 * sizeof(uint8_t) +
                                    2 * sizeof(uint64_t) + sizeof(double) +
                                    sizeof(uint8_t) + sizeof(uint32_t) +
                                    2 * sizeof(uint64_t) + sizeof(int32_t) +
                                    sizeof(uint64_t);
  if (node_count > (file_size - kHeaderBytes) / kMinNodeBytes ||
      node_count > static_cast<uint64_t>(
                       std::numeric_limits<int32_t>::max())) {
    return Status::Corruption("VpTreeIndex::Load: node count " +
                              std::to_string(node_count) +
                              " exceeds the file size in " + path);
  }

  Options options;
  options.repr_kind = static_cast<repr::ReprKind>(repr_kind);
  options.basis = static_cast<repr::Basis>(basis);
  options.method = static_cast<repr::BoundMethod>(method);
  options.budget_c = static_cast<size_t>(budget_c);
  options.energy_fraction = energy_fraction;
  options.leaf_size = static_cast<size_t>(leaf_size);
  options.guided_traversal = guided != 0;

  std::vector<Node> nodes;
  nodes.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    Node node;
    uint8_t leaf = 0;
    uint8_t deleted = 0;
    if (!GetScalar(f, &leaf) || !GetScalar(f, &deleted) ||
        !GetScalar(f, &node.median) || !GetScalar(f, &node.left) ||
        !GetScalar(f, &node.right)) {
      return Status::Corruption("VpTreeIndex::Load: truncated node");
    }
    node.leaf = leaf != 0;
    node.vantage_deleted = deleted != 0;
    if (node.leaf) {
      uint64_t bucket_size = 0;
      if (!GetScalar(f, &bucket_size) || bucket_size > (1u << 24)) {
        return Status::Corruption("VpTreeIndex::Load: corrupt bucket");
      }
      node.bucket.reserve(bucket_size);
      for (uint64_t b = 0; b < bucket_size; ++b) {
        Entry entry;
        if (!GetScalar(f, &entry.id)) {
          return Status::Corruption("VpTreeIndex::Load: truncated entry");
        }
        S2_ASSIGN_OR_RETURN(entry.repr, repr::ReadFeatureRecord(f));
        node.bucket.push_back(std::move(entry));
      }
    } else {
      if (!GetScalar(f, &node.vantage.id)) {
        return Status::Corruption("VpTreeIndex::Load: truncated vantage");
      }
      S2_ASSIGN_OR_RETURN(node.vantage.repr, repr::ReadFeatureRecord(f));
    }
    nodes.push_back(std::move(node));
  }
  if (root < -1 || root >= static_cast<int32_t>(nodes.size())) {
    return Status::Corruption("VpTreeIndex::Load: root out of range");
  }
  // Child pointers must stay inside the node array: an out-of-range id
  // would be followed blindly by Search/Insert.
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& node = nodes[i];
    const int32_t limit = static_cast<int32_t>(nodes.size());
    if (node.left < -1 || node.left >= limit || node.right < -1 ||
        node.right >= limit) {
      return Status::Corruption("VpTreeIndex::Load: node " + std::to_string(i) +
                                " has an out-of-range child in " + path);
    }
  }
  VpTreeIndex index(options, std::move(nodes), root,
                    static_cast<size_t>(num_objects), series_length);
  index.num_tombstones_ = static_cast<size_t>(num_tombstones);
  return index;
}

Status VpTreeIndex::Validate(storage::SequenceSource* source) const {
  diag::Validator v("VpTreeIndex");
  const int32_t limit = static_cast<int32_t>(nodes_.size());
  v.Check(root_ >= -1 && root_ < limit)
      << "root " << root_ << " out of range (have " << limit << " nodes)";
  if (!v.ok()) return v.ToStatus();

  // Reachability walk: every node exactly once, counting objects and
  // tombstones along the way.
  std::vector<uint8_t> visited(nodes_.size(), 0);
  std::unordered_set<ts::SeriesId> seen_ids;
  size_t objects = 0;
  size_t tombstones = 0;
  std::vector<int32_t> stack;
  if (root_ >= 0) stack.push_back(root_);
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    if (id < 0 || id >= limit) {
      v.AddViolation("child pointer " + std::to_string(id) + " out of range");
      continue;
    }
    if (visited[static_cast<size_t>(id)] != 0) {
      v.AddViolation("node " + std::to_string(id) +
                     " reachable twice (cycle or shared child)");
      continue;
    }
    visited[static_cast<size_t>(id)] = 1;
    const Node& node = nodes_[static_cast<size_t>(id)];
    if (node.leaf) {
      v.Check(node.left == -1 && node.right == -1)
          << "leaf node " << id << " has children";
      for (const Entry& entry : node.bucket) {
        ++objects;
        v.Check(seen_ids.insert(entry.id).second)
            << "series " << entry.id << " indexed twice";
      }
    } else {
      v.Check(std::isfinite(node.median) && node.median >= 0.0)
          << "internal node " << id << " has invalid split radius "
          << node.median;
      v.Check(node.bucket.empty())
          << "internal node " << id << " carries a leaf bucket";
      if (node.vantage_deleted) {
        ++tombstones;
        v.Check(node.pinned_row.empty() ||
                node.pinned_row.size() == static_cast<size_t>(series_length_))
            << "node " << id << " pins a row of wrong length "
            << node.pinned_row.size();
      } else {
        ++objects;
        v.Check(node.pinned_row.empty())
            << "live vantage node " << id << " carries a pinned row";
        v.Check(seen_ids.insert(node.vantage.id).second)
            << "series " << node.vantage.id << " indexed twice";
      }
      if (node.left != -1) stack.push_back(node.left);
      if (node.right != -1) stack.push_back(node.right);
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    v.Check(visited[i] != 0) << "node " << i << " unreachable from the root";
  }
  v.Check(objects == num_objects_)
      << "census finds " << objects << " objects, index claims " << num_objects_;
  v.Check(tombstones == num_tombstones_)
      << "census finds " << tombstones << " tombstones, index claims "
      << num_tombstones_;

  // Metric invariant, checked with exact distances when full sequences are
  // available: the construction and insertion both route dist < median to
  // the left child, so every left-subtree object lies within the radius and
  // every right-subtree object at (or beyond) it.
  if (source != nullptr && v.ok()) {
    constexpr double kSlack = 1e-9;  // FP noise across distance re-computation.
    for (int32_t id = 0; id < limit; ++id) {
      const Node& node = nodes_[static_cast<size_t>(id)];
      if (node.leaf) continue;
      // Tombstoned vantages with a pinned row are validated against the pin:
      // the store's row for that id may legitimately differ by now.
      std::vector<double> vantage_row;
      if (node.vantage_deleted && !node.pinned_row.empty()) {
        vantage_row = node.pinned_row;
      } else {
        S2_ASSIGN_OR_RETURN(vantage_row, source->Get(node.vantage.id));
      }
      for (int side = 0; side < 2; ++side) {
        const int32_t child = side == 0 ? node.left : node.right;
        if (child == -1) continue;
        // Collect the subtree's object ids.
        std::vector<int32_t> sub{child};
        while (!sub.empty()) {
          const int32_t cur = sub.back();
          sub.pop_back();
          const Node& n = nodes_[static_cast<size_t>(cur)];
          std::vector<ts::SeriesId> ids;
          if (n.leaf) {
            for (const Entry& entry : n.bucket) ids.push_back(entry.id);
          } else {
            if (!n.vantage_deleted) ids.push_back(n.vantage.id);
            if (n.left != -1) sub.push_back(n.left);
            if (n.right != -1) sub.push_back(n.right);
          }
          for (ts::SeriesId object : ids) {
            S2_ASSIGN_OR_RETURN(std::vector<double> row, source->Get(object));
            const double dist = ExactDistance(vantage_row, row);
            if (side == 0) {
              v.Check(dist <= node.median + kSlack)
                  << "series " << object << " sits in the left subtree of node "
                  << id << " but lies " << dist << " from the vantage point"
                  << " (radius " << node.median << ")";
            } else {
              v.Check(dist >= node.median - kSlack)
                  << "series " << object
                  << " sits in the right subtree of node " << id
                  << " but lies " << dist << " from the vantage point"
                  << " (radius " << node.median << ")";
            }
          }
          if (!v.ok()) return v.ToStatus();
        }
      }
    }
  }
  return v.ToStatus();
}

size_t VpTreeIndex::CompressedBytes() const {
  size_t total = 0;
  for (const Node& node : nodes_) {
    if (node.leaf) {
      for (const Entry& entry : node.bucket) total += entry.repr.StorageBytes();
    } else {
      total += node.vantage.repr.StorageBytes();
      total += sizeof(double);  // The split radius.
    }
  }
  return total;
}

}  // namespace s2::index
