# Empty compiler generated dependencies file for mvp_tree_test.
# This may be replaced when dependencies are built.
