#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/stats.h"
#include "stream/sliding_spectrum.h"

// Edge-case audit for the standardization paths (ISSUE 9 satellite):
// zero-variance windows, single points, and catastrophic cancellation must
// never leak a NaN into downstream features, in either the batch
// (dsp::Standardize) or streaming (stream::SlidingSpectrum) pipeline.

namespace s2 {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void ExpectAllFinite(const std::vector<double>& x) {
  for (double v : x) EXPECT_TRUE(std::isfinite(v)) << v;
}

TEST(StandardizeEdgeTest, ZeroVarianceIsAllZeros) {
  for (double c : {0.0, -0.0, 7.0, -3.5, 1e300, 5e-324}) {
    const std::vector<double> z = dsp::Standardize({c, c, c, c, c});
    ASSERT_EQ(z.size(), 5u);
    for (double v : z) EXPECT_EQ(v, 0.0) << "constant " << c;
  }
}

TEST(StandardizeEdgeTest, SinglePointIsZeroNotNan) {
  const std::vector<double> z = dsp::Standardize({42.0});
  ASSERT_EQ(z.size(), 1u);
  EXPECT_EQ(z[0], 0.0);
  const std::vector<double> empty = dsp::Standardize({});
  EXPECT_TRUE(empty.empty());
}

TEST(StandardizeEdgeTest, StandardizeIntoMatchesAndAllowsAliasing) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> want = dsp::Standardize(x);
  std::vector<double> out(x.size(), -99.0);
  dsp::StandardizeInto(x.data(), x.size(), out.data());
  EXPECT_EQ(out, want);
  dsp::StandardizeInto(x.data(), x.size(), x.data());  // in place
  EXPECT_EQ(x, want);
}

// Huge offset, tiny spread: the one-pass sumsq - mean^2 formula loses all
// signal here; the two-pass centered form must keep it.
TEST(StandardizeEdgeTest, CatastrophicCancellationKeepsSignal) {
  const double base = 1e9;
  std::vector<double> x;
  for (int i = 0; i < 64; ++i) x.push_back(base + (i % 2 == 0 ? 1e-3 : -1e-3));
  EXPECT_GT(dsp::Variance(x), 0.0);
  const std::vector<double> z = dsp::Standardize(x);
  ExpectAllFinite(z);
  // The two alternating levels must standardize to +/-1 (exact population
  // z-scores of a two-level signal), not collapse to zero.
  EXPECT_NEAR(z[0], 1.0, 1e-6);
  EXPECT_NEAR(z[1], -1.0, 1e-6);
  EXPECT_NEAR(dsp::Mean(z), 0.0, 1e-9);
  EXPECT_NEAR(dsp::Variance(z), 1.0, 1e-6);
}

TEST(StandardizeEdgeTest, NearZeroStddevStaysFinite) {
  // stddev underflows toward denormal but is still > 0: the division must
  // produce finite (possibly huge) values or the documented all-zeros, but
  // never NaN.
  std::vector<double> x(32, 1.0);
  x[0] = 1.0 + 1e-13;
  const std::vector<double> z = dsp::Standardize(x);
  for (double v : z) EXPECT_FALSE(std::isnan(v));
}

// --- Streaming side: SlidingSpectrum ---

stream::SlidingSpectrum MakeSpectrum(const std::vector<double>& window) {
  auto r = stream::SlidingSpectrum::Create(window, {1, 2});
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

TEST(StandardizeEdgeTest, SlidingSpectrumConstantWindowHasZeroSigma) {
  std::vector<double> window(16, 3.25);
  stream::SlidingSpectrum s = MakeSpectrum(window);
  EXPECT_EQ(s.std_dev(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.25);
  // A constant window standardizes to all zeros: the compressed feature
  // must be exactly zero-energy with zero error, and min_power +inf (the
  // documented "no periodicity floor" sentinel) — no NaN anywhere.
  auto feature = s.ToCompressed();
  ASSERT_TRUE(feature.ok());
  for (const auto& z : feature->coeffs()) {
    EXPECT_EQ(z.real(), 0.0);
    EXPECT_EQ(z.imag(), 0.0);
  }
  EXPECT_EQ(feature->error(), 0.0);
  EXPECT_EQ(feature->min_power(), kInf);
}

TEST(StandardizeEdgeTest, SlideOntoConstantWindowStaysClean) {
  // Start varied, slide until the window is constant: the running sumsq
  // recursion can go slightly negative from rounding; std_dev must clamp
  // to zero rather than sqrt(-eps) = NaN.
  std::vector<double> window = {1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0, 6.0};
  stream::SlidingSpectrum s = MakeSpectrum(window);
  for (double old : window) s.Slide(old, 2.0);
  EXPECT_FALSE(std::isnan(s.std_dev()));
  EXPECT_GE(s.std_dev(), 0.0);
  EXPECT_NEAR(s.mean(), 2.0, 1e-12);
  auto feature = s.ToCompressed();
  ASSERT_TRUE(feature.ok());
  for (const auto& z : feature->coeffs()) {
    EXPECT_FALSE(std::isnan(z.real()));
    EXPECT_FALSE(std::isnan(z.imag()));
  }
}

TEST(StandardizeEdgeTest, SlideWithHugeOffsetKeepsFiniteSigma) {
  // Catastrophic-cancellation stress for the running mean/power pair: a
  // large common offset with small wiggle. The recursion is allowed to
  // lose the wiggle (documented limitation of one-pass streaming moments)
  // but must never produce NaN or negative sigma.
  std::vector<double> window;
  for (int i = 0; i < 16; ++i)
    window.push_back(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  stream::SlidingSpectrum s = MakeSpectrum(window);
  for (int lap = 0; lap < 4; ++lap) {
    for (int i = 0; i < 16; ++i) {
      const double old = 1e9 + (i % 2 == 0 ? 0.5 : -0.5);
      s.Slide(old, 1e9 + (i % 3 == 0 ? 0.25 : -0.25));
    }
  }
  EXPECT_FALSE(std::isnan(s.std_dev()));
  EXPECT_GE(s.std_dev(), 0.0);
  EXPECT_TRUE(std::isfinite(s.mean()));
}

TEST(StandardizeEdgeTest, SlidingSpectrumCreateValidatesPositions) {
  const std::vector<double> window(16, 1.0);
  // bins = 16/2 + 1 = 9; positions must be 1 <= count < bins, in range,
  // strictly ascending.
  EXPECT_FALSE(stream::SlidingSpectrum::Create(window, {}).ok());
  EXPECT_FALSE(stream::SlidingSpectrum::Create(window, {9}).ok());
  EXPECT_FALSE(stream::SlidingSpectrum::Create(window, {2, 2}).ok());
  EXPECT_FALSE(stream::SlidingSpectrum::Create(window, {3, 1}).ok());
  EXPECT_FALSE(
      stream::SlidingSpectrum::Create(window, {0, 1, 2, 3, 4, 5, 6, 7, 8})
          .ok());
  EXPECT_TRUE(stream::SlidingSpectrum::Create(window, {0, 1, 8}).ok());
  EXPECT_FALSE(stream::SlidingSpectrum::Create({}, {1}).ok());
}

}  // namespace
}  // namespace s2
