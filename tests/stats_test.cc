#include "dsp/stats.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace s2::dsp {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({-1.0, 1.0}), 0.0);
}

TEST(StatsTest, VarianceBasics) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({42.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 1.0, 1.0}), 0.0);
  // Population variance of {1,2,3,4}: mean 2.5, sum sq dev = 5 -> 1.25.
  EXPECT_DOUBLE_EQ(Variance({1.0, 2.0, 3.0, 4.0}), 1.25);
  EXPECT_DOUBLE_EQ(StdDev({1.0, 2.0, 3.0, 4.0}), std::sqrt(1.25));
}

TEST(StatsTest, EnergyAndMeanPower) {
  EXPECT_DOUBLE_EQ(Energy({3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(MeanPower({3.0, 4.0}), 12.5);
  EXPECT_DOUBLE_EQ(MeanPower({}), 0.0);
}

TEST(StatsTest, StandardizeProducesZeroMeanUnitVariance) {
  Rng rng(3);
  std::vector<double> x(500);
  for (double& v : x) v = rng.Uniform(10.0, 200.0);
  const std::vector<double> z = Standardize(x);
  EXPECT_NEAR(Mean(z), 0.0, 1e-12);
  EXPECT_NEAR(Variance(z), 1.0, 1e-9);
}

TEST(StatsTest, StandardizeConstantSequenceIsAllZeros) {
  const std::vector<double> z = Standardize({7.0, 7.0, 7.0});
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(StatsTest, StandardizePreservesShape) {
  // Standardization is affine: relative ordering and ratios of deviations
  // are preserved.
  const std::vector<double> x = {1.0, 5.0, 3.0};
  const std::vector<double> z = Standardize(x);
  EXPECT_LT(z[0], z[2]);
  EXPECT_LT(z[2], z[1]);
  EXPECT_NEAR((z[1] - z[2]) / (z[2] - z[0]), (x[1] - x[2]) / (x[2] - x[0]), 1e-12);
}

TEST(StatsTest, EuclideanMatchesHandComputed) {
  auto d = Euclidean({0.0, 0.0}, {3.0, 4.0});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 5.0);
  auto sq = SquaredEuclidean({1.0, 1.0}, {2.0, 2.0});
  ASSERT_TRUE(sq.ok());
  EXPECT_DOUBLE_EQ(*sq, 2.0);
}

TEST(StatsTest, EuclideanRejectsLengthMismatch) {
  EXPECT_FALSE(Euclidean({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(SquaredEuclidean({}, {1.0}).ok());
}

TEST(StatsTest, EarlyAbandonExactWhenUnderThreshold) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 6.0, 3.0};
  const double exact = *Euclidean(a, b);
  EXPECT_DOUBLE_EQ(
      EuclideanEarlyAbandon(a, b, std::numeric_limits<double>::infinity()), exact);
  EXPECT_DOUBLE_EQ(EuclideanEarlyAbandon(a, b, exact * exact + 1.0), exact);
}

TEST(StatsTest, EarlyAbandonOverestimatesWhenAbandoned) {
  Rng rng(4);
  std::vector<double> a(256);
  std::vector<double> b(256);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal(0, 1);
    b[i] = rng.Normal(0, 1);
  }
  const double exact = *Euclidean(a, b);
  const double threshold = exact / 2.0;
  const double result = EuclideanEarlyAbandon(a, b, threshold * threshold);
  // When abandoned, the returned value exceeds the abandon radius (so the
  // caller's Offer() rejects it) but never exceeds the true distance.
  EXPECT_GT(result, threshold);
  EXPECT_LE(result, exact + 1e-12);
}

}  // namespace
}  // namespace s2::dsp
