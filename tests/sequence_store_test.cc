#include "storage/sequence_store.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace s2::storage {
namespace {

std::vector<std::vector<double>> MakeRows(size_t count, size_t length,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows(count, std::vector<double>(length));
  for (auto& row : rows) {
    for (double& v : row) v = rng.Normal(0, 1);
  }
  return rows;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(InMemorySequenceSourceTest, BasicRoundTrip) {
  auto rows = MakeRows(5, 16, 1);
  auto source = InMemorySequenceSource::Create(rows);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->num_series(), 5u);
  EXPECT_EQ((*source)->series_length(), 16u);
  for (ts::SeriesId id = 0; id < 5; ++id) {
    auto row = (*source)->Get(id);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(*row, rows[id]);
  }
  EXPECT_EQ((*source)->read_count(), 5u);
  (*source)->ResetCounters();
  EXPECT_EQ((*source)->read_count(), 0u);
}

TEST(InMemorySequenceSourceTest, RejectsRaggedRows) {
  std::vector<std::vector<double>> ragged = {{1.0, 2.0}, {3.0}};
  EXPECT_FALSE(InMemorySequenceSource::Create(ragged).ok());
}

TEST(InMemorySequenceSourceTest, OutOfRangeIdIsNotFound) {
  auto source = InMemorySequenceSource::Create(MakeRows(3, 4, 2));
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->Get(3).status().code(), StatusCode::kNotFound);
}

TEST(DiskSequenceStoreTest, CreateWriteReadRoundTrip) {
  const std::string path = TempPath("s2_store_roundtrip.bin");
  const auto rows = MakeRows(17, 64, 3);
  auto store = DiskSequenceStore::Create(path, rows);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_series(), 17u);
  EXPECT_EQ((*store)->series_length(), 64u);
  // Random-access pattern.
  for (ts::SeriesId id : {16u, 0u, 9u, 3u, 16u}) {
    auto row = (*store)->Get(id);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(*row, rows[id]);
  }
  EXPECT_EQ((*store)->read_count(), 5u);
  EXPECT_EQ((*store)->bytes_read(), 5u * 64u * sizeof(double));
  std::remove(path.c_str());
}

TEST(DiskSequenceStoreTest, ReopenExistingFile) {
  const std::string path = TempPath("s2_store_reopen.bin");
  const auto rows = MakeRows(4, 8, 4);
  { auto created = DiskSequenceStore::Create(path, rows); ASSERT_TRUE(created.ok()); }
  auto reopened = DiskSequenceStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  auto row = (*reopened)->Get(2);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, rows[2]);
  std::remove(path.c_str());
}

TEST(DiskSequenceStoreTest, MissingFileIsNotFound) {
  // Missing files are a distinct, non-retryable condition (kNotFound) —
  // callers can create the store; kIoError is reserved for real I/O faults.
  EXPECT_EQ(DiskSequenceStore::Open("/nonexistent/path/nope.bin").status().code(),
            StatusCode::kNotFound);
}

TEST(DiskSequenceStoreTest, CorruptHeaderRejected) {
  const std::string path = TempPath("s2_store_corrupt.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOTMAGIC", 1, 8, f);
  std::fclose(f);
  EXPECT_EQ(DiskSequenceStore::Open(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DiskSequenceStoreTest, OutOfRangeIdIsNotFound) {
  const std::string path = TempPath("s2_store_range.bin");
  auto store = DiskSequenceStore::Create(path, MakeRows(2, 4, 5));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Get(2).status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(DiskSequenceStoreTest, RejectsRaggedRows) {
  const std::string path = TempPath("s2_store_ragged.bin");
  std::vector<std::vector<double>> ragged = {{1.0, 2.0}, {3.0}};
  EXPECT_FALSE(DiskSequenceStore::Create(path, ragged).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s2::storage
