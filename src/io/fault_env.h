#ifndef S2_IO_FAULT_ENV_H_
#define S2_IO_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/sync.h"
#include "base/thread_annotations.h"
#include "common/rng.h"
#include "io/env.h"

namespace s2::io {

/// What a `FaultInjectingEnv` does to the I/O stream. All fields compose;
/// a default-constructed plan injects nothing.
struct FaultPlan {
  /// Seed for the probabilistic knobs below; two envs with the same plan
  /// and the same operation sequence inject identical faults.
  uint64_t seed = 42;

  /// Probability that any single read / write / sync fails.
  double read_fault_rate = 0.0;
  double write_fault_rate = 0.0;
  double sync_fault_rate = 0.0;

  /// When a probabilistic fault fires: transient (EINTR/EAGAIN-like,
  /// `kIoTransient`) or hard (EIO-like, `kIoError`).
  bool faults_are_transient = true;

  /// Probability that a read or write that does NOT fail transfers only part
  /// of the requested bytes (at least 1). Exercises short-I/O loops.
  double short_io_rate = 0.0;

  /// Deterministic one-shot triggers: fail the Nth read/write/sync
  /// (1-based; 0 disables). Counted per-env across all files.
  uint64_t fail_read_at = 0;
  uint64_t fail_write_at = 0;
  uint64_t fail_sync_at = 0;

  /// Simulate a crash at the Nth mutating operation (write or sync;
  /// 1-based; 0 disables): the base env drops all un-synced data and every
  /// subsequent operation fails with `kIoError` until `ClearCrash`. This is
  /// the knob the crash-point sweep iterates.
  uint64_t crash_at_op = 0;

  /// When the crash triggers, terminate the whole process with
  /// `_exit(kCrashExitCode)` instead of simulating an outage — the honest
  /// process-level crash model the crash-restart chaos harness runs its
  /// child workloads under. Over a POSIX base env this is fail-stop: synced
  /// bytes survive, the torn tail is whatever the kernel had accepted.
  bool crash_is_fatal = false;

  /// Count `Rename` and `Remove` as mutating operations (and hence crash
  /// sites). Off by default so existing sweeps' op numbering is unchanged;
  /// the chaos harness turns it on to crash inside manifest renames and
  /// segment GC unlinks.
  bool count_metadata_ops = false;
};

/// The exit code a fatal injected crash terminates the process with.
inline constexpr int kCrashExitCode = 42;

/// A decorator that injects deterministic faults into a base `Env`.
///
/// Wraps any environment (tests use `MemEnv`, the crash simulation needs the
/// base env to support `DropUnsynced`). Faults are decided by a seeded
/// `s2::Rng` plus deterministic Nth-operation triggers, so a failing test
/// reproduces exactly from its plan.
///
/// Thread safety: the fault decision state (rng, counters) is guarded by a
/// mutex, so concurrent server traffic through one injector is well-defined
/// (though the interleaving, and hence which request observes a probabilistic
/// fault, is scheduling-dependent).
class FaultInjectingEnv : public Env {
 public:
  /// `base` must outlive this env.
  FaultInjectingEnv(Env* base, FaultPlan plan);

  Result<std::unique_ptr<File>> Open(const std::string& path,
                                     OpenMode mode) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status CopyFile(const std::string& from, const std::string& to) override;
  Status DropUnsynced() override;
  Result<std::vector<std::string>> ListPrefix(
      const std::string& prefix) override;

  /// True once `crash_at_op` has triggered; all I/O fails until cleared.
  bool crashed() const;

  /// Ends the simulated outage ("reboot"): subsequent I/O goes through
  /// again, operating on whatever the base env retained.
  void ClearCrash();

  /// Replaces the fault plan mid-flight (reseeds the rng from the new
  /// plan). Lets a test or benchmark build its stores cleanly, then dial
  /// fault rates up for the serving phase. Open files see the new plan
  /// immediately; op counters are retained.
  void set_plan(const FaultPlan& plan);

  /// Total reads/writes/syncs observed (including failed ones) — lets the
  /// crash sweep detect when `crash_at_op` exceeds the workload's op count.
  uint64_t read_ops() const;
  uint64_t write_ops() const;
  uint64_t sync_ops() const;
  uint64_t mutating_ops() const;

  /// Faults actually injected so far.
  uint64_t injected_faults() const;

 private:
  friend class FaultInjectingFile;

  // Fault decisions for one operation; all take mu_.
  Status BeforeRead() S2_EXCLUDES(mu_);  // OK, or the injected fault
  Status BeforeWrite() S2_EXCLUDES(mu_);
  Status BeforeSync() S2_EXCLUDES(mu_);
  // Rename/Remove gate: with `count_metadata_ops` these count as write ops
  // (and crash sites); without it, only the crashed check applies.
  Status BeforeMetadataOp() S2_EXCLUDES(mu_);
  // Applies short-I/O to a transfer size (>=1 stays >=1).
  size_t MaybeShorten(size_t n) S2_EXCLUDES(mu_);

  Status InjectedFault(const char* op) S2_REQUIRES(mu_);
  // Checks crash_at_op against the mutating op count. Calls the base env's
  // DropUnsynced while holding mu_, which is why kFaultEnv ranks below
  // kMemEnv in the lock hierarchy.
  void MaybeCrashLocked() S2_REQUIRES(mu_);

  Env* base_;
  FaultPlan plan_ S2_GUARDED_BY(mu_);

  mutable sync::Mutex mu_{sync::LockRank::kFaultEnv,
                          "io::FaultInjectingEnv"};
  s2::Rng rng_ S2_GUARDED_BY(mu_);
  uint64_t read_ops_ S2_GUARDED_BY(mu_) = 0;
  uint64_t write_ops_ S2_GUARDED_BY(mu_) = 0;
  uint64_t sync_ops_ S2_GUARDED_BY(mu_) = 0;
  uint64_t injected_faults_ S2_GUARDED_BY(mu_) = 0;
  bool crashed_ S2_GUARDED_BY(mu_) = false;
};

}  // namespace s2::io

#endif  // S2_IO_FAULT_ENV_H_
