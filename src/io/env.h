#ifndef S2_IO_ENV_H_
#define S2_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace s2::io {

/// How a file is opened (see `Env::Open`).
enum class OpenMode {
  kRead,       ///< Existing file, read-only; fails with NotFound if absent.
  kReadWrite,  ///< Read/write; created (empty) when absent, never truncated.
  kTruncate,   ///< Read/write; created when absent, truncated when present.
};

/// An open file — the virtual seam every on-disk format routes through.
///
/// All five persistent formats (pager, sequence store, disk B+-tree, disk
/// burst table, VP-tree image, corpus/feature snapshots) perform their I/O
/// exclusively against this interface, so a test can substitute an
/// in-memory filesystem (`MemEnv`) or a deterministic fault injector
/// (`FaultInjectingEnv`) without touching the formats themselves.
///
/// Semantics follow POSIX: `Read`/`Write` may legitimately transfer fewer
/// bytes than requested (short I/O); use the `ReadExact`/`WriteExact`
/// helpers below when a partial transfer is an error. Transient failures
/// (EINTR, EAGAIN, injected faults) surface as `StatusCode::kIoTransient`,
/// hard failures as `kIoError` with the errno text in the message.
///
/// Thread safety: `ReadAt`/`WriteAt` carry their own offset and are safe to
/// call concurrently (mirroring `pread`/`pwrite`); the positional
/// `Read`/`Write`/`Seek` share one cursor and must be externally serialized.
class File {
 public:
  virtual ~File() = default;

  /// Reads up to `n` bytes at the cursor, advancing it. Returns the number
  /// of bytes read; 0 signals end-of-file.
  virtual Result<size_t> Read(void* buf, size_t n) = 0;

  /// Writes up to `n` bytes at the cursor, advancing it.
  virtual Result<size_t> Write(const void* buf, size_t n) = 0;

  /// Positioned read (no cursor; safe concurrently).
  virtual Result<size_t> ReadAt(void* buf, size_t n, uint64_t offset) = 0;

  /// Positioned write (no cursor; safe concurrently).
  virtual Result<size_t> WriteAt(const void* buf, size_t n, uint64_t offset) = 0;

  /// Moves the cursor to an absolute offset.
  virtual Status Seek(uint64_t offset) = 0;

  /// Current size of the file in bytes.
  virtual Result<uint64_t> Size() = 0;

  /// Forces written data to durable storage (fsync). Until this returns OK,
  /// a crash may lose or tear any preceding write.
  virtual Status Sync() = 0;
};

/// A filesystem namespace: opens files and manipulates directory entries.
///
/// `Default()` is the process-wide POSIX environment. Tests substitute
/// `MemEnv` (RAM-backed, crash-simulating) or wrap any env in
/// `FaultInjectingEnv`.
class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<File>> Open(const std::string& path,
                                             OpenMode mode) = 0;

  /// Atomically renames `from` to `to`, replacing `to` if present — the
  /// commit point of every crash-safe writer in the repository.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Removes a file. Removing a non-existent file is OK (idempotent).
  virtual Status Remove(const std::string& path) = 0;

  /// Makes directory-entry changes (rename, create, remove) to `path`'s
  /// parent directory durable — the "fsync the directory" step without which
  /// an atomic-rename commit point may itself be lost on power failure. The
  /// base implementation is a no-op, correct for environments whose
  /// namespace is synchronously durable (MemEnv); the POSIX environment
  /// fsyncs the parent directory.
  virtual Status SyncDir(const std::string& path);

  virtual bool FileExists(const std::string& path) = 0;

  /// Copies `from` to `to` (truncating `to`) and syncs the copy. The default
  /// implementation streams through `Open`; environments may override.
  virtual Status CopyFile(const std::string& from, const std::string& to);

  /// Drops every byte written but not yet `Sync`ed, across all files — the
  /// crash half of fault injection. Only simulation environments support
  /// it; the default returns InvalidArgument.
  virtual Status DropUnsynced();

  /// Lists every existing path that begins with `prefix`, sorted
  /// lexicographically — the discovery primitive WAL-segment replay and
  /// checkpoint GC are built on. `prefix` is interpreted as a path prefix
  /// within one directory (the parent of `prefix`); matches in
  /// subdirectories are not reported. An empty result is OK, not NotFound.
  /// The base implementation returns InvalidArgument; POSIX and MemEnv
  /// override it.
  virtual Result<std::vector<std::string>> ListPrefix(
      const std::string& prefix);

  /// The process-wide POSIX environment (never null, never deleted).
  static Env* Default();
};

/// Reads exactly `n` bytes at the cursor. Loops over short reads; EOF before
/// `n` bytes is `kCorruption` ("truncated"), transient/hard errors propagate.
Status ReadExact(File* file, void* buf, size_t n);

/// Positioned variant of `ReadExact`.
Status ReadExactAt(File* file, void* buf, size_t n, uint64_t offset);

/// Writes exactly `n` bytes at the cursor, looping over short writes.
Status WriteExact(File* file, const void* buf, size_t n);

/// Positioned variant of `WriteExact`.
Status WriteExactAt(File* file, const void* buf, size_t n, uint64_t offset);

/// Reads a whole file through `env` into `out`.
Status ReadFileToBuffer(Env* env, const std::string& path,
                        std::vector<char>* out);

/// An in-memory `File` over a byte buffer — the serialization scratch the
/// snapshot writers fill before handing the bytes to `durable::Commit`, and
/// the reader view `durable::LoadLatest` payloads are parsed from.
class BufferFile : public File {
 public:
  BufferFile() = default;
  explicit BufferFile(std::vector<char> bytes) : bytes_(std::move(bytes)) {}

  Result<size_t> Read(void* buf, size_t n) override;
  Result<size_t> Write(const void* buf, size_t n) override;
  Result<size_t> ReadAt(void* buf, size_t n, uint64_t offset) override;
  Result<size_t> WriteAt(const void* buf, size_t n, uint64_t offset) override;
  Status Seek(uint64_t offset) override;
  Result<uint64_t> Size() override { return static_cast<uint64_t>(bytes_.size()); }
  Status Sync() override { return Status::OK(); }

  const std::vector<char>& bytes() const { return bytes_; }
  std::vector<char>&& TakeBytes() && { return std::move(bytes_); }

 private:
  std::vector<char> bytes_;
  size_t pos_ = 0;
};

}  // namespace s2::io

#endif  // S2_IO_ENV_H_
