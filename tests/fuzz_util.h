#ifndef S2_TESTS_FUZZ_UTIL_H_
#define S2_TESTS_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "io/fault_env.h"
#include "io/mem_env.h"

namespace s2::fuzz {

/// Deterministic corruption injection for the on-disk format fuzz tests:
/// every mutation derives from an explicit `s2::Rng` seed, so a sanitizer
/// failure reproduces from the test log alone.

inline std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

inline std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

inline void WriteFileBytes(const std::string& path,
                           const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One seeded mutation of `image`: either flips 1-8 random bytes to random
/// values, or truncates the image at a random point. Empty images are
/// returned unchanged.
inline std::vector<char> Mutate(const std::vector<char>& image, s2::Rng* rng) {
  std::vector<char> mutated = image;
  if (mutated.empty()) return mutated;
  if (rng->Bernoulli(0.25)) {
    const size_t cut = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated.resize(cut);
    return mutated;
  }
  const int flips = static_cast<int>(rng->UniformInt(1, 8));
  for (int i = 0; i < flips; ++i) {
    const size_t at = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated[at] = static_cast<char>(rng->UniformInt(0, 255));
  }
  return mutated;
}

/// Crash-point sweep driver (see tests/crash_sweep_test.cc for per-format
/// uses). Starting from a fresh `io::MemEnv` each round, `write_a` commits
/// generation A cleanly, then `write_b` attempts generation B through a
/// `FaultInjectingEnv` that simulates a crash (un-fsynced data dropped, all
/// subsequent I/O failing) at mutating op N. After "reboot", `verify` loads
/// from the base env and must find exactly generation A or B — never a torn
/// hybrid, never an unloadable state (`definitely_b` is true once the B
/// workload ran crash-free). N sweeps 1, 2, 3, ... until write_b completes
/// without crashing, so every write/sync boundary in the commit path is hit.
inline void CrashSweep(
    const std::function<void(io::Env*)>& write_a,
    const std::function<Status(io::Env*)>& write_b,
    const std::function<void(io::Env*, bool definitely_b)>& verify) {
  constexpr uint64_t kMaxMutatingOps = 8192;
  for (uint64_t crash_at = 1; crash_at <= kMaxMutatingOps; ++crash_at) {
    SCOPED_TRACE("crash at mutating op " + std::to_string(crash_at));
    io::MemEnv base;
    write_a(&base);
    if (::testing::Test::HasFatalFailure()) return;
    io::FaultPlan plan;
    plan.crash_at_op = crash_at;
    io::FaultInjectingEnv env(&base, plan);
    const Status b_status = write_b(&env);
    const bool crashed = env.crashed();
    env.ClearCrash();
    if (!crashed) {
      ASSERT_TRUE(b_status.ok()) << b_status.ToString();
    }
    verify(&base, /*definitely_b=*/!crashed);
    if (::testing::Test::HasFatalFailure()) return;
    if (!crashed) return;  // Every mutating op of write_b has been swept.
  }
  FAIL() << "sweep did not terminate within " << kMaxMutatingOps << " ops";
}

}  // namespace s2::fuzz

#endif  // S2_TESTS_FUZZ_UTIL_H_
