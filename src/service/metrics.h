#ifndef S2_SERVICE_METRICS_H_
#define S2_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "base/sync.h"
#include "base/thread_annotations.h"

namespace s2::service {

/// A monotonically increasing counter. All operations are lock-free and
/// safe from any thread; relaxed ordering is enough because counters are
/// pure instrumentation, never used for synchronization.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A latency histogram with power-of-two microsecond buckets.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs
/// 0 us). 40 buckets cover up to ~12.7 days, far beyond any request.
/// `Record` is lock-free; percentile reads walk a racy-but-consistent-enough
/// snapshot (each bucket load is atomic; instrumentation-grade accuracy).
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(uint64_t micros);

  /// Total number of recorded samples.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Sum of all recorded values in microseconds.
  uint64_t sum_micros() const { return sum_.load(std::memory_order_relaxed); }

  /// Largest recorded value in microseconds.
  uint64_t max_micros() const { return max_.load(std::memory_order_relaxed); }

  /// The `p`-th percentile (p in [0, 100]) in microseconds, estimated as the
  /// upper edge of the bucket holding the p-th sample. 0 when empty.
  uint64_t Percentile(double p) const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// A named registry of counters and latency histograms.
///
/// Registration (first `counter()`/`histogram()` call per name) takes a
/// mutex; the returned pointers are stable for the registry's lifetime, so
/// hot paths register once and then update lock-free. `TextSnapshot` renders
/// every metric as `name value` lines (histograms expand to `_count`,
/// `_p50/_p95/_p99`, `_max` and `_mean` suffixes, all in microseconds).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  LatencyHistogram* histogram(const std::string& name);

  std::string TextSnapshot() const;

 private:
  mutable sync::Mutex mu_{sync::LockRank::kMetricsRegistry,
                          "service::MetricsRegistry"};
  // std::map keeps the snapshot alphabetically ordered and deterministic.
  // The unique_ptr targets are themselves lock-free; the mutex guards only
  // the maps (registration and snapshot iteration).
  std::map<std::string, std::unique_ptr<Counter>> counters_ S2_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      S2_GUARDED_BY(mu_);
};

}  // namespace s2::service

#endif  // S2_SERVICE_METRICS_H_
