
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/burst_table_test.cc" "tests/CMakeFiles/burst_table_test.dir/burst_table_test.cc.o" "gcc" "tests/CMakeFiles/burst_table_test.dir/burst_table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/s2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/burst/CMakeFiles/s2_burst.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/s2_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/s2_index.dir/DependInfo.cmake"
  "/root/repo/build/src/period/CMakeFiles/s2_period.dir/DependInfo.cmake"
  "/root/repo/build/src/querylog/CMakeFiles/s2_querylog.dir/DependInfo.cmake"
  "/root/repo/build/src/repr/CMakeFiles/s2_repr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s2_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/s2_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/s2_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
