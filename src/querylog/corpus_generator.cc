#include "querylog/corpus_generator.h"

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "querylog/archetypes.h"
#include "querylog/synthesizer.h"

namespace s2::qlog {

namespace {

std::string FamilyName(const char* family, size_t ordinal) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s_%06zu", family, ordinal);
  return buffer;
}

}  // namespace

QueryArchetype DrawArchetype(const CorpusSpec& spec, size_t ordinal, Rng* rng) {
  const FamilyMix& m = spec.mix;
  const double total = m.weekly + m.monthly + m.seasonal + m.event + m.aperiodic;
  double r = rng->Uniform(0.0, total);
  if ((r -= m.weekly) < 0) return MakeRandomWeekly(FamilyName("weekly", ordinal), rng);
  if ((r -= m.monthly) < 0) return MakeRandomMonthly(FamilyName("monthly", ordinal), rng);
  if ((r -= m.seasonal) < 0) {
    return MakeRandomSeasonal(FamilyName("seasonal", ordinal), rng);
  }
  if ((r -= m.event) < 0) {
    return MakeRandomEvent(FamilyName("event", ordinal), spec.start_day,
                           static_cast<int32_t>(spec.n_days), rng);
  }
  return MakeRandomAperiodic(FamilyName("aperiodic", ordinal), rng);
}

Result<ts::Corpus> GenerateCorpus(const CorpusSpec& spec) {
  if (spec.num_series == 0) {
    return Status::InvalidArgument("GenerateCorpus: num_series must be > 0");
  }
  if (spec.n_days == 0) {
    return Status::InvalidArgument("GenerateCorpus: n_days must be > 0");
  }
  Rng rng(spec.seed);
  ts::Corpus corpus;
  for (size_t i = 0; i < spec.num_series; ++i) {
    QueryArchetype archetype = DrawArchetype(spec, i, &rng);
    S2_ASSIGN_OR_RETURN(ts::TimeSeries series,
                        Synthesize(archetype, spec.start_day, spec.n_days, &rng));
    corpus.Add(std::move(series));
  }
  return corpus;
}

Result<std::vector<ts::TimeSeries>> GenerateQueries(const CorpusSpec& spec,
                                                    size_t count) {
  if (spec.n_days == 0) {
    return Status::InvalidArgument("GenerateQueries: n_days must be > 0");
  }
  // Independent stream: held-out queries never coincide with corpus members.
  Rng rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<ts::TimeSeries> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    QueryArchetype archetype = DrawArchetype(spec, i, &rng);
    archetype.name = "query_" + archetype.name;
    S2_ASSIGN_OR_RETURN(ts::TimeSeries series,
                        Synthesize(archetype, spec.start_day, spec.n_days, &rng));
    queries.push_back(std::move(series));
  }
  return queries;
}

}  // namespace s2::qlog
