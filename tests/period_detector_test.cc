#include "period/period_detector.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/periodogram.h"
#include "dsp/stats.h"
#include "querylog/archetypes.h"
#include "querylog/synthesizer.h"

namespace s2::period {
namespace {

std::vector<double> Noise(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.Normal(0, 1);
  return x;
}

std::vector<double> WithCycle(size_t n, double period, double amplitude,
                              uint64_t seed) {
  std::vector<double> x = Noise(n, seed);
  for (size_t i = 0; i < n; ++i) {
    x[i] += amplitude *
            std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period);
  }
  return x;
}

TEST(PeriodDetectorTest, ValidatesArguments) {
  PeriodDetector detector;
  EXPECT_FALSE(detector.Detect({1.0, 2.0}).ok());
  PeriodDetector::Options bad;
  bad.false_alarm_probability = 0.0;
  EXPECT_FALSE(PeriodDetector(bad).Detect(Noise(64, 1)).ok());
  bad.false_alarm_probability = 1.5;
  EXPECT_FALSE(PeriodDetector(bad).Detect(Noise(64, 1)).ok());
}

TEST(PeriodDetectorTest, FindsPlantedWeeklyPeriod) {
  PeriodDetector detector;
  auto hits = detector.Detect(WithCycle(365, 7.0, 2.0, 2));
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_NEAR(hits->front().period, 7.0, 0.1);
}

TEST(PeriodDetectorTest, FindsMultiplePlantedPeriods) {
  std::vector<double> x = WithCycle(1024, 7.0, 2.0, 3);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] += 1.5 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 32.0);
  }
  PeriodDetector detector;
  auto hits = detector.Detect(x);
  ASSERT_TRUE(hits.ok());
  ASSERT_GE(hits->size(), 2u);
  bool saw7 = false;
  bool saw32 = false;
  for (const PeriodHit& hit : *hits) {
    if (std::abs(hit.period - 7.0) < 0.2) saw7 = true;
    if (std::abs(hit.period - 32.0) < 1.0) saw32 = true;
  }
  EXPECT_TRUE(saw7);
  EXPECT_TRUE(saw32);
}

TEST(PeriodDetectorTest, NoFalseAlarmsOnPureNoise) {
  // Over many noise-only sequences, the detector should almost never fire
  // (the threshold is set for 1e-4 per bin; with ~512 bins expect ~0.05
  // hits per sequence).
  PeriodDetector detector;
  size_t total_hits = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto hits = detector.Detect(Noise(1024, 100 + seed));
    ASSERT_TRUE(hits.ok());
    total_hits += hits->size();
  }
  EXPECT_LE(total_hits, 3u);
}

TEST(PeriodDetectorTest, RandomWalkProducesOnlyLongPeriodArtifacts) {
  // Random walks have 1/f^2-ish spectra: a handful of the *longest* periods
  // can cross the exponential threshold (the paper's own Fig. 13 reports
  // 91- and 121-day periods of this kind), but no spurious short
  // periodicities may appear.
  Rng rng(5);
  size_t total_hits = 0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> x(512);
    double v = 0.0;
    for (double& e : x) {
      v += rng.Normal(0, 1);
      e = v;
    }
    PeriodDetector detector;
    auto hits = detector.Detect(x);
    ASSERT_TRUE(hits.ok());
    total_hits += hits->size();
    for (const PeriodHit& hit : *hits) {
      EXPECT_GT(hit.period, 30.0) << "spurious short period in trial " << trial;
    }
  }
  EXPECT_LE(total_hits, 40u);  // A few long-period trend artifacts per walk.
}

TEST(PeriodDetectorTest, ThresholdFormulaMatchesPaper) {
  // T_p = -mu * ln(p) with mu the mean periodogram value (excluding DC).
  PeriodDetector::Options options;
  options.false_alarm_probability = 1e-4;
  PeriodDetector detector(options);
  const std::vector<double> psd = {0.0, 0.01, 0.03, 0.02};  // mu = 0.02.
  EXPECT_NEAR(detector.Threshold(psd), -0.02 * std::log(1e-4), 1e-12);
  EXPECT_NEAR(detector.Threshold(psd), 0.1842, 1e-3);
}

TEST(PeriodDetectorTest, StricterProbabilityRaisesThreshold) {
  const std::vector<double> psd = {0.0, 0.01, 0.03, 0.02};
  PeriodDetector loose(PeriodDetector::Options{1e-2, 0, 0.5});
  PeriodDetector strict(PeriodDetector::Options{1e-6, 0, 0.5});
  EXPECT_LT(loose.Threshold(psd), strict.Threshold(psd));
}

TEST(PeriodDetectorTest, MaxPeriodsCapsOutput) {
  std::vector<double> x = WithCycle(1024, 7.0, 3.0, 6);
  PeriodDetector::Options options;
  options.max_periods = 1;
  auto hits = PeriodDetector(options).Detect(x);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST(PeriodDetectorTest, HitsSortedByDescendingPower) {
  std::vector<double> x = WithCycle(1024, 7.0, 2.0, 8);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] += 0.8 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 64.0);
  }
  auto hits = PeriodDetector().Detect(x);
  ASSERT_TRUE(hits.ok());
  for (size_t i = 1; i < hits->size(); ++i) {
    EXPECT_GE((*hits)[i - 1].power, (*hits)[i].power);
  }
}

TEST(PeriodDetectorTest, CinemaArchetypeShowsWeeklyPeriod) {
  // Paper Fig. 13: "cinema" has P1 = 7 with the 3.5-day harmonic.
  Rng rng(9);
  auto series = qlog::Synthesize(qlog::MakeCinema(), 0, 1024, &rng);
  ASSERT_TRUE(series.ok());
  auto hits = PeriodDetector().Detect(series->values);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_NEAR(hits->front().period, 7.0, 0.1);
  bool saw_harmonic = false;
  for (const PeriodHit& hit : *hits) {
    if (std::abs(hit.period - 3.5) < 0.05) saw_harmonic = true;
  }
  EXPECT_TRUE(saw_harmonic);
}

TEST(PeriodDetectorTest, FullMoonArchetypeShowsLunarPeriod) {
  Rng rng(10);
  auto series = qlog::Synthesize(qlog::MakeFullMoon(), 0, 1024, &rng);
  ASSERT_TRUE(series.ok());
  auto hits = PeriodDetector().Detect(series->values);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_NEAR(hits->front().period, 29.53, 1.5);
}

TEST(PeriodDetectorTest, AperiodicArchetypeStaysQuiet) {
  // Paper Fig. 13's "dudley moore": a burst is not a periodicity.
  Rng rng(11);
  auto archetype = qlog::MakeDudleyMoore(500);
  auto series = qlog::Synthesize(archetype, 0, 1024, &rng);
  ASSERT_TRUE(series.ok());
  auto hits = PeriodDetector().Detect(series->values);
  ASSERT_TRUE(hits.ok());
  // The news burst and the slow random-walk drift may register as a couple
  // of long-period artifacts, but nothing resembling a true periodicity.
  EXPECT_LE(hits->size(), 3u);
  for (const PeriodHit& hit : *hits) EXPECT_GT(hit.period, 50.0);
}

}  // namespace
}  // namespace s2::period
