#ifndef S2_SERVICE_S2_SERVER_H_
#define S2_SERVICE_S2_SERVER_H_

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>

#include "common/result.h"
#include "core/s2_engine.h"
#include "resilience/circuit_breaker.h"
#include "service/metrics.h"
#include "service/result_cache.h"
#include "service/scheduler.h"
#include "shard/sharded_engine.h"

namespace s2::service {

/// The concurrent query server: wraps a built `S2Engine` with a thread
/// pool + scheduler (admission control, deadlines, cancellation), an LRU
/// result cache and a metrics registry — the serving substrate the paper's
/// interactive S2 tool would need at MSN-log scale.
///
/// Concurrency model: query execution takes the engine lock in shared mode
/// (the engine's const read paths are reentrant — see the contracts in
/// s2_engine.h and sharded_engine.h); `AddSeries` takes it exclusively and
/// invalidates every cache entry a new series could change (similarity and
/// query-by-burst; cached periods/bursts of existing series survive) before
/// returning. Cache hits bypass the engine entirely: no lock, no VP-tree
/// traversal, no sequence-store reads.
///
/// The server runs over either a single `core::S2Engine` or a
/// `shard::ShardedEngine` (scatter-gather over N shards) — chosen at
/// construction, invisible to callers: same verbs, same answers (the shard
/// layer's equivalence tests prove bit-identical results), plus fan-out
/// metrics (`server_shard_fanout`, `server_shard_latency`,
/// `server_shard_prune_hits`) in sharded mode.
///
/// ## Degradation ladder (DESIGN.md §6)
///
/// 1. Transient disk faults retry inside the engine's sequence source
///    (bounded backoff; `server_retry_attempts` / `server_retry_giveups`).
/// 2. When the indexed path still fails on infrastructure trouble (I/O,
///    corruption, exhausted retries), similarity requests are re-answered by
///    the engine's exact RAM scan — same answer set, no disk — with
///    `QueryResponse::degraded` set and `server_degraded` incremented.
///    Degraded answers are never cached.
/// 3. Sustained primary-path failure trips a circuit breaker: while open,
///    requests are shed fast with `Unavailable` (`server_shed`,
///    `server_breaker_trips`) instead of piling retries onto a bad disk;
///    a half-open probe re-tests the primary path after the cooldown.
class S2Server {
 public:
  struct Options {
    Scheduler::Options scheduler;
    /// Result-cache entries; 0 disables caching.
    size_t cache_capacity = 1024;
    /// Circuit breaker over the primary (indexed) execution path.
    resilience::CircuitBreaker::Options breaker;
    /// When false, step 2 of the ladder is disabled: infrastructure
    /// failures surface to the caller instead of degrading.
    bool degrade_on_failure = true;
    /// Engine topology used by the corpus-building `Build` factory:
    /// 1 = one engine over the whole corpus; N > 1 = N shards with
    /// scatter-gather execution; 0 = one shard per hardware thread.
    size_t shards = 1;
    /// Forwarded to `shard::ShardedEngine::Options` when `shards != 1`.
    std::vector<io::Env*> shard_envs;
  };

  /// Takes ownership of a built single engine.
  static std::unique_ptr<S2Server> Create(core::S2Engine engine,
                                          const Options& options);

  /// Takes ownership of a built sharded engine.
  static std::unique_ptr<S2Server> Create(shard::ShardedEngine engine,
                                          const Options& options);

  /// Builds the engine from a corpus, picking the topology from
  /// `options.shards`, and wraps it in a server.
  static Result<std::unique_ptr<S2Server>> Build(
      ts::Corpus corpus, const core::S2Engine::Options& engine_options,
      const Options& options);

  S2Server(const S2Server&) = delete;
  S2Server& operator=(const S2Server&) = delete;

  ~S2Server() { Shutdown(); }

  /// Asynchronous entry point: admits the request to the scheduler.
  /// Unavailable when the in-flight window is full (backpressure).
  Result<RequestTicket> Submit(const QueryRequest& request) {
    return scheduler_->Submit(request);
  }

  /// Synchronous entry point: cache lookup, then engine execution under the
  /// shared lock. Also the handler the scheduler's workers run.
  QueryResponse Execute(const QueryRequest& request);

  /// Ingests one more series (exclusive engine access) and invalidates the
  /// result cache. Fails while requests cannot be drained (never blocks
  /// forever: waits for in-flight readers, new readers queue behind it).
  Result<ts::SeriesId> AddSeries(ts::TimeSeries series);

  /// Graceful shutdown: drains admitted requests, joins workers. Idempotent.
  void Shutdown() { scheduler_->Shutdown(); }

  /// True when the server runs scatter-gather over shards.
  bool is_sharded() const { return sharded_.has_value(); }

  /// The single engine; only valid when `!is_sharded()`.
  const core::S2Engine& engine() const { return *engine_; }
  /// The sharded engine; only valid when `is_sharded()`.
  const shard::ShardedEngine& sharded() const { return *sharded_; }

  MetricsRegistry& metrics() { return metrics_; }
  ResultCache& cache() { return cache_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  const resilience::CircuitBreaker& breaker() const { return breaker_; }

  /// Plain-text metrics snapshot (counters + latency percentiles).
  std::string MetricsText() const { return metrics_.TextSnapshot(); }

 private:
  S2Server(std::optional<core::S2Engine> engine,
           std::optional<shard::ShardedEngine> sharded, const Options& options);

  /// Runs the request against whichever engine is live; fills `response`.
  /// Sharded execution also exports fan-out/latency/prune metrics. Caller
  /// holds the shared lock.
  void Dispatch(const QueryRequest& request, QueryResponse* response);

  /// Step 2 of the ladder: re-answers `request` via the exact RAM fallback.
  /// `primary` is the failed primary-path response (its status is kept when
  /// the request kind has no RAM fallback). Caller holds the shared lock.
  QueryResponse Degrade(const QueryRequest& request, QueryResponse primary);

  /// Folds the engine-level retry counters and breaker trip count into the
  /// metrics registry (counters are increment-only, so this exports deltas).
  void SyncResilienceMetrics();

  // Exactly one of these is engaged, chosen at construction.
  std::optional<core::S2Engine> engine_;
  std::optional<shard::ShardedEngine> sharded_;
  Options options_;
  MetricsRegistry metrics_;
  ResultCache cache_;
  resilience::CircuitBreaker breaker_;
  std::shared_mutex engine_mu_;
  Counter* engine_calls_ = nullptr;  ///< Executions that reached the engine.
  Counter* degraded_ = nullptr;      ///< Requests answered by the fallback.
  Counter* shed_ = nullptr;          ///< Requests rejected while open.
  // Sharded-execution metrics (registered always, moved only when sharded).
  Counter* shard_fanout_ = nullptr;      ///< Shard searches issued, total.
  Counter* shard_prune_hits_ = nullptr;  ///< Cross-shard prune decisions.
  LatencyHistogram* shard_latency_ = nullptr;  ///< Per-shard search time.
  Counter* retry_attempts_ = nullptr;
  Counter* retry_giveups_ = nullptr;
  Counter* breaker_trips_ = nullptr;
  std::mutex export_mu_;             ///< Guards the exported_* snapshots.
  uint64_t exported_retries_ = 0;
  uint64_t exported_giveups_ = 0;
  uint64_t exported_trips_ = 0;
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace s2::service

#endif  // S2_SERVICE_S2_SERVER_H_
