#ifndef S2_TIMESERIES_TIME_SERIES_H_
#define S2_TIMESERIES_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace s2::ts {

/// Identifier of a series within a corpus/store. Dense, 0-based.
using SeriesId = uint32_t;

/// Sentinel for "no series".
inline constexpr SeriesId kInvalidSeriesId = static_cast<SeriesId>(-1);

/// A daily-demand time series for one query string.
///
/// `values[i]` is the number of times the query was issued on day
/// `start_day + i` (days are indices into the corpus calendar; see
/// calendar.h). The struct is a passive data carrier: all fields are public
/// and no invariants beyond "values non-empty for a useful series" are
/// enforced.
struct TimeSeries {
  std::string name;             ///< The query text (e.g. "cinema").
  int32_t start_day = 0;        ///< Calendar day index of values[0].
  std::vector<double> values;   ///< Daily request counts.

  size_t size() const { return values.size(); }
};

/// A collection of time series sharing a calendar, addressed by SeriesId.
class Corpus {
 public:
  Corpus() = default;

  /// Appends a series and returns its id.
  SeriesId Add(TimeSeries series) {
    series_.push_back(std::move(series));
    return static_cast<SeriesId>(series_.size() - 1);
  }

  /// Number of series.
  size_t size() const { return series_.size(); }
  bool empty() const { return series_.empty(); }

  /// Access by id; id must be < size().
  const TimeSeries& at(SeriesId id) const { return series_[id]; }
  TimeSeries& at(SeriesId id) { return series_[id]; }

  /// Checked access.
  Result<const TimeSeries*> Get(SeriesId id) const {
    if (id >= series_.size()) {
      return Status::NotFound("Corpus: no series with id " + std::to_string(id));
    }
    return &series_[id];
  }

  const std::vector<TimeSeries>& series() const { return series_; }

 private:
  std::vector<TimeSeries> series_;
};

}  // namespace s2::ts

#endif  // S2_TIMESERIES_TIME_SERIES_H_
