#include "common/status.h"

namespace s2 {

namespace {
const std::string kEmptyString;
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoTransient:
      return "IoTransient";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<const State>(State{code, std::move(message)})) {}

const std::string& Status::message() const {
  return ok() ? kEmptyString : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace s2
