# Empty compiler generated dependencies file for s2_repr.
# This may be replaced when dependencies are built.
