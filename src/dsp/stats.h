#ifndef S2_DSP_STATS_H_
#define S2_DSP_STATS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace s2::dsp {

// All kernels below route through s2::simd (DESIGN.md §12): a fixed
// blocked reduction order that every backend — scalar fallback included —
// reproduces bit-for-bit, so results do not depend on which ISA dispatch
// picked. Pointer overloads exist so index leaves can evaluate contiguous
// row-matrix storage without materializing vectors.

/// Arithmetic mean of `x`; 0 for empty input.
double Mean(const std::vector<double>& x);
double Mean(const double* x, size_t n);

/// Population variance (divides by N); 0 for inputs shorter than 2.
/// Two-pass centered form: non-negative by construction.
double Variance(const std::vector<double>& x);
double Variance(const double* x, size_t n);

/// Population standard deviation.
double StdDev(const std::vector<double>& x);
double StdDev(const double* x, size_t n);

/// Sum of squares of the elements (the signal energy).
double Energy(const std::vector<double>& x);

/// Mean power `(1/N) * sum x_i^2`, as used by the period-detection threshold.
double MeanPower(const std::vector<double>& x);

/// Z-normalization: subtract the mean and divide by the standard deviation.
///
/// This is the standardization the paper applies before feature extraction to
/// "compensate for the variation of counts for different queries". A constant
/// sequence (stddev == 0) standardizes to all zeros — never NaN.
std::vector<double> Standardize(const std::vector<double>& x);

/// Standardize into caller storage; `out` must hold `n` doubles and may
/// alias `x`. Same zero-variance contract as Standardize.
void StandardizeInto(const double* x, size_t n, double* out);

/// Squared Euclidean distance between equal-length sequences.
/// Returns InvalidArgument on length mismatch.
Result<double> SquaredEuclidean(const std::vector<double>& a,
                                const std::vector<double>& b);
double SquaredEuclidean(const double* a, const double* b, size_t n);

/// Euclidean distance between equal-length sequences.
Result<double> Euclidean(const std::vector<double>& a, const std::vector<double>& b);

/// Squared Euclidean distance with early abandoning. The partial sum is
/// checked against `abandon_after_sq` every 16 elements (pass +infinity to
/// disable); because partial sums of squares are monotone nondecreasing,
/// the result is <= abandon_after_sq exactly when it is the complete
/// squared distance. Callers must gate in the squared domain
/// (`sq <= threshold * threshold`) rather than comparing sqrt(sq) against
/// a threshold: sqrt can round an abandoned partial sum down onto the
/// threshold and smuggle a truncated distance past the gate (the
/// index/vp_tree.cc pruning-exactness audit that motivated this API).
double SquaredEuclideanEarlyAbandon(const double* a, const double* b, size_t n,
                                    double abandon_after_sq);

/// sqrt of SquaredEuclideanEarlyAbandon over the common prefix of a and b.
/// Returns the exact distance when the squared sum stayed within
/// `abandon_after_sq`, and some value > sqrt(abandon_after_sq) otherwise.
/// Prefer the squared variant for gating (see above).
double EuclideanEarlyAbandon(const std::vector<double>& a,
                             const std::vector<double>& b,
                             double abandon_after_sq);

}  // namespace s2::dsp

#endif  // S2_DSP_STATS_H_
