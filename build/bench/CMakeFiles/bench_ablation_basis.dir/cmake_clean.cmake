file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_basis.dir/bench_ablation_basis.cc.o"
  "CMakeFiles/bench_ablation_basis.dir/bench_ablation_basis.cc.o.d"
  "bench_ablation_basis"
  "bench_ablation_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
