# Empty dependencies file for burst_table_test.
# This may be replaced when dependencies are built.
