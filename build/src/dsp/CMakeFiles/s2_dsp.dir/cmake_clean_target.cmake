file(REMOVE_RECURSE
  "libs2_dsp.a"
)
