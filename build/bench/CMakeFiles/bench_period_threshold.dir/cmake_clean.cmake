file(REMOVE_RECURSE
  "CMakeFiles/bench_period_threshold.dir/bench_period_threshold.cc.o"
  "CMakeFiles/bench_period_threshold.dir/bench_period_threshold.cc.o.d"
  "bench_period_threshold"
  "bench_period_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_period_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
