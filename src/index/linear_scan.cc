#include "index/linear_scan.h"

#include <cmath>
#include <limits>

#include "dsp/stats.h"

namespace s2::index {

Result<std::vector<Neighbor>> LinearScan::Search(const std::vector<double>& query,
                                                 size_t k) const {
  if (k == 0) return Status::InvalidArgument("LinearScan: k must be > 0");
  if (query.size() != source_->series_length()) {
    return Status::InvalidArgument("LinearScan: query length mismatch");
  }
  BestList best(k);
  const size_t n = source_->num_series();
  for (size_t id = 0; id < n; ++id) {
    S2_ASSIGN_OR_RETURN(std::vector<double> row,
                        source_->Get(static_cast<ts::SeriesId>(id)));
    const double threshold = best.Threshold();
    const double abandon_sq = std::isinf(threshold)
                                  ? std::numeric_limits<double>::infinity()
                                  : threshold * threshold;
    const double dist = dsp::EuclideanEarlyAbandon(query, row, abandon_sq);
    best.Offer(static_cast<ts::SeriesId>(id), dist);
  }
  return std::move(best).Take();
}

}  // namespace s2::index
