#ifndef S2_TIMESERIES_CALENDAR_H_
#define S2_TIMESERIES_CALENDAR_H_

#include <cstdint>
#include <string>

namespace s2::ts {

/// Calendar utilities for anchoring synthetic workloads to real dates.
///
/// Day indices count from `kEpochYear`-01-01 (day 0). The paper's corpora
/// span 2000-2002, so we use 2000-01-01 as the epoch. Proper Gregorian leap
/// years are honored, which matters for annual-anchor components ("Elvis"
/// peaks every Aug 16) over multi-year spans.
inline constexpr int kEpochYear = 2000;

/// True iff `year` is a Gregorian leap year.
constexpr bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

/// Number of days in `year` (365 or 366).
constexpr int DaysInYear(int year) { return IsLeapYear(year) ? 366 : 365; }

/// Number of days in the given month (1-12) of `year`.
int DaysInMonth(int year, int month);

/// A calendar date.
struct Date {
  int year = kEpochYear;
  int month = 1;  ///< 1-12.
  int day = 1;    ///< 1-based day of month.
};

/// Converts a (valid) date to its day index relative to the epoch.
int32_t DateToDayIndex(const Date& date);

/// Converts a day index back to a calendar date. Negative indices address
/// days before the epoch.
Date DayIndexToDate(int32_t day_index);

/// 1-based day-of-year (1..366) of the given day index.
int DayOfYear(int32_t day_index);

/// Day of week of the given day index: 0 = Monday .. 6 = Sunday.
/// (2000-01-01 was a Saturday.)
int DayOfWeek(int32_t day_index);

/// "YYYY-MM-DD" rendering, for logs and benchmark output.
std::string FormatDayIndex(int32_t day_index);

}  // namespace s2::ts

#endif  // S2_TIMESERIES_CALENDAR_H_
