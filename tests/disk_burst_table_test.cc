#include "burst/disk_burst_table.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace s2::burst {
namespace {

BurstRegion R(int32_t start, int32_t end, double avg) { return {start, end, avg}; }

class DiskBurstTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = (std::filesystem::temp_directory_path() /
               ("s2_disk_burst_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name())))
                  .string();
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::remove((prefix_ + ".heap").c_str());
    std::remove((prefix_ + ".idx").c_str());
  }
  std::string prefix_;
};

TEST_F(DiskBurstTableTest, EmptyStore) {
  auto table = DiskBurstTable::Open(prefix_);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 0u);
  auto hits = (*table)->FindOverlapping(R(0, 100, 1.0));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(DiskBurstTableTest, ParityWithInMemoryTable) {
  auto disk = DiskBurstTable::Open(prefix_);
  ASSERT_TRUE(disk.ok());
  BurstTable memory;

  Rng rng(1);
  for (ts::SeriesId id = 0; id < 300; ++id) {
    std::vector<BurstRegion> regions;
    const int n = static_cast<int>(rng.UniformInt(0, 4));
    for (int b = 0; b < n; ++b) {
      const int32_t start = static_cast<int32_t>(rng.UniformInt(0, 2000));
      const int32_t len = static_cast<int32_t>(rng.UniformInt(1, 90));
      regions.push_back(R(start, start + len - 1, rng.Uniform(0.5, 4.0)));
    }
    const int32_t offset = static_cast<int32_t>(rng.UniformInt(-10, 10));
    memory.Insert(id, regions, offset);
    ASSERT_TRUE((*disk)->Insert(id, regions, offset).ok());
  }
  ASSERT_EQ((*disk)->size(), memory.size());

  for (int trial = 0; trial < 40; ++trial) {
    const int32_t qs = static_cast<int32_t>(rng.UniformInt(-20, 2000));
    const int32_t qe = qs + static_cast<int32_t>(rng.UniformInt(0, 200));
    const BurstRegion query = R(qs, qe, rng.Uniform(0.5, 3.0));

    auto disk_hits = (*disk)->FindOverlapping(query);
    ASSERT_TRUE(disk_hits.ok());
    const auto memory_hits = memory.FindOverlapping(query);
    ASSERT_EQ(disk_hits->size(), memory_hits.size()) << trial;

    auto disk_matches = (*disk)->QueryByBurst({query}, 10);
    ASSERT_TRUE(disk_matches.ok());
    const auto memory_matches = memory.QueryByBurst({query}, 10);
    ASSERT_EQ(disk_matches->size(), memory_matches.size()) << trial;
    for (size_t i = 0; i < memory_matches.size(); ++i) {
      EXPECT_EQ((*disk_matches)[i].series_id, memory_matches[i].series_id);
      EXPECT_NEAR((*disk_matches)[i].bsim, memory_matches[i].bsim, 1e-12);
    }
  }
}

TEST_F(DiskBurstTableTest, PersistenceAcrossReopen) {
  {
    auto table = DiskBurstTable::Open(prefix_);
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->Insert(1, {R(100, 130, 2.0)}, 0).ok());
    ASSERT_TRUE((*table)->Insert(2, {R(120, 160, 1.5), R(500, 520, 3.0)}, 0).ok());
    ASSERT_TRUE((*table)->Flush().ok());
  }
  auto reopened = DiskBurstTable::Open(prefix_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 3u);
  auto matches = (*reopened)->QueryByBurst({R(100, 130, 2.0)}, 10);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 2u);
  EXPECT_EQ((*matches)[0].series_id, 1u);
}

TEST_F(DiskBurstTableTest, ManyRecordsSpanManyPages) {
  auto table = DiskBurstTable::Open(prefix_, 16);
  ASSERT_TRUE(table.ok());
  Rng rng(2);
  for (ts::SeriesId id = 0; id < 2000; ++id) {
    const int32_t start = static_cast<int32_t>(rng.UniformInt(0, 10000));
    ASSERT_TRUE((*table)
                    ->Insert(id, {R(start, start + 10, rng.Uniform(1, 3))}, 0)
                    .ok());
  }
  EXPECT_EQ((*table)->size(), 2000u);
  EXPECT_GT((*table)->disk_writes(), 0u);
  // Count everything via a huge window.
  auto hits = (*table)->FindOverlapping(R(-100000, 100000, 1.0));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2000u);
}

TEST_F(DiskBurstTableTest, ExcludeFiltersSelf) {
  auto table = DiskBurstTable::Open(prefix_);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert(0, {R(10, 20, 1.0)}, 0).ok());
  ASSERT_TRUE((*table)->Insert(1, {R(12, 22, 1.0)}, 0).ok());
  auto matches = (*table)->QueryByBurst({R(10, 20, 1.0)}, 10, /*exclude=*/0);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].series_id, 1u);
}

}  // namespace
}  // namespace s2::burst
