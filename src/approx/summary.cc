#include "approx/summary.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>
#include <utility>

#include "diag/validate.h"
#include "io/durable.h"
#include "io/serial.h"
#include "repr/half_spectrum.h"
#include "simd/simd.h"

namespace s2::approx {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Hard shape ceilings shared by Train and the Load decoder: large enough
// for any sane configuration, small enough that corrupt headers cannot
// trigger pathological allocations or size-arithmetic overflow.
constexpr size_t kMaxDims = 4096;
constexpr size_t kMaxCells = 65536;

constexpr char kSummaryMagic[8] = {'S', '2', 'A', 'P', 'S', 'X', '0', '1'};

template <typename T>
bool PutScalar(io::File* f, T value) {
  return io::WriteScalar(f, value).ok();
}

template <typename T>
bool GetScalar(io::File* f, T* value) {
  return io::ReadScalar(f, value).ok();
}

uint64_t Fnv1a(uint64_t hash, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

Result<SummaryConfig> SummaryConfig::Train(
    const std::vector<std::vector<double>>& standardized,
    const SummaryOptions& options) {
  if (standardized.empty()) {
    return Status::InvalidArgument("SummaryConfig::Train: empty corpus");
  }
  const size_t n = standardized.front().size();
  if (n == 0) {
    return Status::InvalidArgument("SummaryConfig::Train: empty series");
  }
  for (const auto& row : standardized) {
    if (row.size() != n) {
      return Status::InvalidArgument(
          "SummaryConfig::Train: ragged corpus (series lengths differ)");
    }
  }

  // One spectrum per series; kept so the winning coordinates' values can be
  // re-read for breakpoint placement without a second FFT pass.
  std::vector<repr::HalfSpectrum> spectra;
  spectra.reserve(standardized.size());
  for (const auto& row : standardized) {
    S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                        repr::HalfSpectrum::FromSeries(row));
    spectra.push_back(std::move(spectrum));
  }

  // Rank coordinates — a coordinate is one (bin, re|im) component — by
  // total corpus energy, multiplicity-weighted so the ranking matches the
  // coordinates' contribution to true Euclidean distance. Ties break by
  // (bin, part): the selection is a pure function of the corpus.
  const size_t num_bins = spectra.front().num_bins();
  struct Coord {
    double energy;
    uint32_t bin;
    uint8_t part;
  };
  std::vector<Coord> coords;
  coords.reserve(2 * num_bins);
  for (size_t k = 0; k < num_bins; ++k) {
    const double mult = spectra.front().multiplicity(k);
    double energy_re = 0.0;
    double energy_im = 0.0;
    for (const auto& spectrum : spectra) {
      const auto& c = spectrum.coeff(k);
      energy_re += mult * c.real() * c.real();
      energy_im += mult * c.imag() * c.imag();
    }
    coords.push_back({energy_re, static_cast<uint32_t>(k), 0});
    coords.push_back({energy_im, static_cast<uint32_t>(k), 1});
  }
  std::sort(coords.begin(), coords.end(), [](const Coord& a, const Coord& b) {
    if (a.energy != b.energy) return a.energy > b.energy;
    if (a.bin != b.bin) return a.bin < b.bin;
    return a.part < b.part;
  });

  SummaryConfig config;
  config.dims = std::min({options.dims, coords.size(), kMaxDims});
  if (config.dims == 0) {
    return Status::InvalidArgument("SummaryConfig::Train: dims == 0");
  }
  config.cells = std::min(std::max<size_t>(options.cells, 2), kMaxCells);
  config.series_length = static_cast<uint32_t>(n);
  config.bins.reserve(config.dims);
  config.parts.reserve(config.dims);
  config.weights.reserve(config.dims);
  for (size_t d = 0; d < config.dims; ++d) {
    config.bins.push_back(coords[d].bin);
    config.parts.push_back(coords[d].part);
    config.weights.push_back(
        std::sqrt(spectra.front().multiplicity(coords[d].bin)));
  }

  // Equi-depth breakpoints: per dimension, the corpus quantiles of the
  // weighted coordinate values. Duplicate values may collapse cells — the
  // envelope math only needs non-decreasing edges.
  config.edges.resize(config.dims * (config.cells + 1));
  std::vector<double> values(spectra.size());
  for (size_t d = 0; d < config.dims; ++d) {
    for (size_t i = 0; i < spectra.size(); ++i) {
      const auto& c = spectra[i].coeff(config.bins[d]);
      values[i] = config.weights[d] * (config.parts[d] == 0 ? c.real() : c.imag());
    }
    std::sort(values.begin(), values.end());
    double* edges = config.edges.data() + d * (config.cells + 1);
    for (size_t j = 0; j <= config.cells; ++j) {
      edges[j] = values[(j * (values.size() - 1)) / config.cells];
    }
  }
  S2_RETURN_NOT_OK(config.Validate());
  return config;
}

Status SummaryConfig::Project(const std::vector<double>& z,
                              std::vector<double>* out) const {
  if (z.size() != series_length) {
    return Status::InvalidArgument(
        "SummaryConfig::Project: series length mismatch");
  }
  S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                      repr::HalfSpectrum::FromSeries(z));
  out->resize(dims);
  for (size_t d = 0; d < dims; ++d) {
    const auto& c = spectrum.coeff(bins[d]);
    (*out)[d] = weights[d] * (parts[d] == 0 ? c.real() : c.imag());
  }
  return Status::OK();
}

Status SummaryConfig::Validate() const {
  diag::Validator v("SummaryConfig");
  v.Check(dims > 0 && dims <= kMaxDims) << "dims " << dims << " out of range";
  v.Check(cells >= 2 && cells <= kMaxCells)
      << "cells " << cells << " out of range";
  v.Check(series_length > 0) << "series_length == 0";
  v.Check(bins.size() == dims) << "bins size " << bins.size();
  v.Check(parts.size() == dims) << "parts size " << parts.size();
  v.Check(weights.size() == dims) << "weights size " << weights.size();
  v.Check(edges.size() == dims * (cells + 1))
      << "edges size " << edges.size() << " != dims*(cells+1)";
  if (!v.ok()) return v.ToStatus();
  const size_t num_bins = series_length / 2 + 1;
  for (size_t d = 0; d < dims; ++d) {
    v.Check(bins[d] < num_bins)
        << "dim " << d << " bin " << bins[d] << " out of spectrum";
    v.Check(parts[d] <= 1) << "dim " << d << " part " << int{parts[d]};
    v.Check(std::isfinite(weights[d]) && weights[d] > 0.0)
        << "dim " << d << " weight " << weights[d];
    const double* e = edges.data() + d * (cells + 1);
    for (size_t j = 0; j <= cells; ++j) {
      v.Check(std::isfinite(e[j]))
          << "dim " << d << " edge " << j << " not finite";
      if (j > 0) {
        v.Check(e[j - 1] <= e[j]) << "dim " << d << " edges decrease at " << j;
      }
    }
  }
  return v.ToStatus();
}

uint64_t SummaryConfig::Fingerprint() const {
  uint64_t hash = 0xcbf29ce484222325ull;
  const uint64_t dims64 = dims;
  const uint64_t cells64 = cells;
  hash = Fnv1a(hash, &dims64, sizeof(dims64));
  hash = Fnv1a(hash, &cells64, sizeof(cells64));
  hash = Fnv1a(hash, &series_length, sizeof(series_length));
  hash = Fnv1a(hash, bins.data(), bins.size() * sizeof(uint32_t));
  hash = Fnv1a(hash, parts.data(), parts.size() * sizeof(uint8_t));
  hash = Fnv1a(hash, weights.data(), weights.size() * sizeof(double));
  hash = Fnv1a(hash, edges.data(), edges.size() * sizeof(double));
  return hash;
}

size_t ResolveCandidates(const QueryParams& params, size_t population,
                         const SummaryOptions& options) {
  if (population == 0) return 0;
  if (params.max_candidates > 0) {
    return std::min(params.max_candidates, population);
  }
  double fraction = options.default_candidate_fraction;
  const double r0 = std::min(std::max(options.calibrated_recall, 0.0), 0.999);
  const double r = std::min(std::max(params.recall_target, 0.0), 1.0);
  if (r > r0) {
    // Hyperbolic ramp: halving the remaining recall gap doubles the budget;
    // r == 1 saturates to the whole population.
    const double gap = 1.0 - r;
    if (gap <= 1e-9) return population;
    fraction *= (1.0 - r0) / gap;
  }
  const double want = std::ceil(fraction * static_cast<double>(population));
  size_t c = want >= static_cast<double>(population)
                 ? population
                 : static_cast<size_t>(want);
  c = std::max(c, options.min_candidates);
  return std::min(c, population);
}

QualityBound BoundFromVerification(
    double worst_lb_sq, size_t num_candidates, size_t population,
    const std::vector<index::Neighbor>& neighbors, size_t k) {
  QualityBound bound;
  bound.candidates = num_candidates;
  bound.population = population;
  bound.threshold_lb = std::sqrt(std::max(worst_lb_sq, 0.0));
  if (num_candidates >= population) {
    // Full coverage: the verifier saw every series — exact by construction.
    bound.guaranteed_exact = true;
    return bound;
  }
  if (neighbors.size() < k) {
    // Too few candidates to even fill the answer; nothing can be bounded.
    bound.epsilon = kInf;
    return bound;
  }
  const double r = neighbors.back().distance;
  if (r * r < worst_lb_sq) {
    // Every non-candidate provably sits beyond the k-th returned distance.
    bound.guaranteed_exact = true;
    return bound;
  }
  bound.epsilon =
      bound.threshold_lb > 0.0 ? r / bound.threshold_lb - 1.0 : kInf;
  return bound;
}

Result<SummaryIndex> SummaryIndex::Build(
    SummaryConfig config, const std::vector<std::vector<double>>& standardized) {
  S2_RETURN_NOT_OK(config.Validate());
  const size_t n = standardized.size();
  const size_t dims = config.dims;
  SummaryIndex index(std::move(config), repr::RowMatrix(n, dims),
                     repr::RowMatrix(n, dims), 0);
  std::vector<double> proj;
  for (const auto& row : standardized) {
    S2_RETURN_NOT_OK(index.config_.Project(row, &proj));
    index.WriteEnvelope(index.size_, proj);
    ++index.size_;
  }
  return index;
}

Status SummaryIndex::Append(const std::vector<double>& z) {
  std::vector<double> proj;
  S2_RETURN_NOT_OK(config_.Project(z, &proj));
  Reserve(size_ + 1);
  WriteEnvelope(size_, proj);
  ++size_;
  return Status::OK();
}

Status SummaryIndex::Update(ts::SeriesId id, const std::vector<double>& z) {
  if (id >= size_) {
    return Status::InvalidArgument("SummaryIndex::Update: id out of range");
  }
  std::vector<double> proj;
  S2_RETURN_NOT_OK(config_.Project(z, &proj));
  WriteEnvelope(id, proj);
  return Status::OK();
}

void SummaryIndex::WriteEnvelope(size_t slot, const std::vector<double>& proj) {
  double* lo = lower_.mutable_row(slot);
  double* hi = upper_.mutable_row(slot);
  for (size_t d = 0; d < config_.dims; ++d) {
    const double v = proj[d];
    const double* edges = config_.edges.data() + d * (config_.cells + 1);
    // Cell containing v under the frozen breakpoints; out-of-range values
    // clamp to the edge cells and the min/max below widens the envelope to
    // contain them, so post-freeze inserts stay sound.
    size_t cell = static_cast<size_t>(
        std::upper_bound(edges, edges + config_.cells + 1, v) - edges);
    cell = cell > 0 ? cell - 1 : 0;
    if (cell >= config_.cells) cell = config_.cells - 1;
    lo[d] = std::min(edges[cell], v);
    hi[d] = std::max(edges[cell + 1], v);
  }
}

void SummaryIndex::Reserve(size_t needed) {
  if (needed <= lower_.num_rows()) return;
  size_t capacity = std::max<size_t>(lower_.num_rows() * 2, 16);
  capacity = std::max(capacity, needed);
  repr::RowMatrix lower(capacity, config_.dims);
  repr::RowMatrix upper(capacity, config_.dims);
  for (size_t i = 0; i < size_; ++i) {
    std::memcpy(lower.mutable_row(i), lower_.row(i),
                config_.dims * sizeof(double));
    std::memcpy(upper.mutable_row(i), upper_.row(i),
                config_.dims * sizeof(double));
  }
  lower_ = std::move(lower);
  upper_ = std::move(upper);
}

std::vector<SummaryIndex::Candidate> SummaryIndex::Candidates(
    const std::vector<double>& proj, size_t c, ts::SeriesId exclude,
    ScanStats* stats) const {
  std::vector<Candidate> result;
  if (c == 0 || size_ == 0 || proj.size() != config_.dims) return result;

  // Worst-on-top heap ordered lexicographically by (lb_sq, id): the top is
  // the current c-th best, its lb_sq the scan's abandon limit. Ascending-id
  // iteration plus the lexicographic order makes the final set — and
  // therefore the quality threshold — a pure function of the corpus,
  // independent of shard layout.
  auto better = [](const Candidate& a, const Candidate& b) {
    if (a.lb_sq != b.lb_sq) return a.lb_sq < b.lb_sq;
    return a.id < b.id;
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(better)>
      heap(better);

  const size_t dims = config_.dims;
  for (size_t i = 0; i < size_; ++i) {
    if (i == exclude) continue;
    if (i + 1 < size_) {
      simd::PrefetchRead(lower_.row(i + 1));
      simd::PrefetchRead(upper_.row(i + 1));
    }
    const double limit_sq = heap.size() == c ? heap.top().lb_sq : kInf;
    const double lb_sq = simd::LbKeoghSqAbandon(lower_.row(i), upper_.row(i),
                                                proj.data(), dims, limit_sq);
    if (stats != nullptr) ++stats->rows_scanned;
    if (lb_sq > limit_sq) {
      // Abandoned partial (or a complete bound strictly beyond the c-th):
      // cannot enter the set even on an id tie.
      if (stats != nullptr) ++stats->summary_abandons;
      continue;
    }
    const Candidate candidate{lb_sq, static_cast<ts::SeriesId>(i)};
    if (heap.size() < c) {
      heap.push(candidate);
    } else if (better(candidate, heap.top())) {
      heap.pop();
      heap.push(candidate);
    }
  }

  result.reserve(heap.size());
  while (!heap.empty()) {
    result.push_back(heap.top());
    heap.pop();
  }
  std::reverse(result.begin(), result.end());
  if (stats != nullptr) stats->candidates += result.size();
  return result;
}

size_t SummaryIndex::SummaryBytes() const {
  return 2 * size_ * config_.dims * sizeof(double);
}

Status SummaryIndex::Save(const std::string& path, io::Env* env) const {
  if (env == nullptr) env = io::Env::Default();
  io::BufferFile buffer;
  io::File* f = &buffer;

  bool ok = io::WriteExact(f, kSummaryMagic, sizeof(kSummaryMagic)).ok() &&
            PutScalar<uint64_t>(f, config_.dims) &&
            PutScalar<uint64_t>(f, config_.cells) &&
            PutScalar<uint32_t>(f, config_.series_length) &&
            PutScalar<uint64_t>(f, size_);
  if (!ok) return Status::IoError("SummaryIndex::Save: short write");
  for (size_t d = 0; d < config_.dims; ++d) {
    ok = PutScalar<uint32_t>(f, config_.bins[d]) &&
         PutScalar<uint8_t>(f, config_.parts[d]) &&
         PutScalar(f, config_.weights[d]);
    if (!ok) return Status::IoError("SummaryIndex::Save: short write");
  }
  for (double edge : config_.edges) {
    if (!PutScalar(f, edge)) {
      return Status::IoError("SummaryIndex::Save: short write");
    }
  }
  for (size_t i = 0; i < size_; ++i) {
    ok = io::WriteExact(f, lower_.row(i), config_.dims * sizeof(double)).ok() &&
         io::WriteExact(f, upper_.row(i), config_.dims * sizeof(double)).ok();
    if (!ok) return Status::IoError("SummaryIndex::Save: short write");
  }
  return io::durable::CommitNext(env, path, std::move(buffer).TakeBytes());
}

Result<SummaryIndex> SummaryIndex::Load(const std::string& path, io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  std::vector<char> bytes;
  S2_RETURN_NOT_OK(io::durable::LoadLatest(env, path, &bytes));
  io::BufferFile buffer(std::move(bytes));
  io::File* f = &buffer;
  const uint64_t file_size = buffer.bytes().size();

  char magic[sizeof(kSummaryMagic)];
  uint64_t dims = 0;
  uint64_t cells = 0;
  uint32_t series_length = 0;
  uint64_t size = 0;
  const bool ok = io::ReadExact(f, magic, sizeof(magic)).ok() &&
                  std::memcmp(magic, kSummaryMagic, sizeof(kSummaryMagic)) == 0 &&
                  GetScalar(f, &dims) && GetScalar(f, &cells) &&
                  GetScalar(f, &series_length) && GetScalar(f, &size);
  if (!ok || dims == 0 || dims > kMaxDims || cells < 2 || cells > kMaxCells ||
      series_length == 0) {
    return Status::Corruption("SummaryIndex::Load: bad header in " + path);
  }
  // Bound every declared count by the bytes actually present before any
  // allocation: a corrupt header must fail cleanly, never reserve wildly.
  constexpr uint64_t kHeaderBytes =
      sizeof(kSummaryMagic) + 2 * sizeof(uint64_t) + sizeof(uint32_t) +
      sizeof(uint64_t);
  const uint64_t coord_bytes =
      dims * (sizeof(uint32_t) + sizeof(uint8_t) + sizeof(double));
  const uint64_t edge_bytes = dims * (cells + 1) * sizeof(double);
  const uint64_t row_bytes = 2 * dims * sizeof(double);
  if (file_size < kHeaderBytes + coord_bytes + edge_bytes ||
      size > (file_size - kHeaderBytes - coord_bytes - edge_bytes) / row_bytes) {
    return Status::Corruption("SummaryIndex::Load: declared sizes exceed " +
                              std::to_string(file_size) + " bytes in " + path);
  }

  SummaryConfig config;
  config.dims = static_cast<size_t>(dims);
  config.cells = static_cast<size_t>(cells);
  config.series_length = series_length;
  config.bins.resize(config.dims);
  config.parts.resize(config.dims);
  config.weights.resize(config.dims);
  for (size_t d = 0; d < config.dims; ++d) {
    if (!GetScalar(f, &config.bins[d]) || !GetScalar(f, &config.parts[d]) ||
        !GetScalar(f, &config.weights[d])) {
      return Status::Corruption("SummaryIndex::Load: truncated coordinates");
    }
  }
  config.edges.resize(config.dims * (config.cells + 1));
  for (double& edge : config.edges) {
    if (!GetScalar(f, &edge)) {
      return Status::Corruption("SummaryIndex::Load: truncated edges");
    }
  }
  if (const Status valid = config.Validate(); !valid.ok()) {
    return Status::Corruption("SummaryIndex::Load: " + valid.ToString());
  }

  repr::RowMatrix lower(static_cast<size_t>(size), config.dims);
  repr::RowMatrix upper(static_cast<size_t>(size), config.dims);
  for (size_t i = 0; i < size; ++i) {
    if (!io::ReadExact(f, lower.mutable_row(i), config.dims * sizeof(double))
             .ok() ||
        !io::ReadExact(f, upper.mutable_row(i), config.dims * sizeof(double))
             .ok()) {
      return Status::Corruption("SummaryIndex::Load: truncated envelopes");
    }
  }
  SummaryIndex index(std::move(config), std::move(lower), std::move(upper),
                     static_cast<size_t>(size));
  if (const Status valid = index.Validate(); !valid.ok()) {
    return Status::Corruption("SummaryIndex::Load: " + valid.ToString());
  }
  return index;
}

Status SummaryIndex::Validate() const {
  S2_RETURN_NOT_OK(config_.Validate());
  diag::Validator v("SummaryIndex");
  v.Check(lower_.num_rows() == upper_.num_rows())
      << "plane row counts differ: " << lower_.num_rows() << " vs "
      << upper_.num_rows();
  v.Check(size_ <= lower_.num_rows())
      << "size " << size_ << " exceeds capacity " << lower_.num_rows();
  v.Check(lower_.row_length() == config_.dims &&
          upper_.row_length() == config_.dims)
      << "plane width != dims";
  if (!v.ok()) return v.ToStatus();
  for (size_t i = 0; i < size_; ++i) {
    const double* lo = lower_.row(i);
    const double* hi = upper_.row(i);
    for (size_t d = 0; d < config_.dims; ++d) {
      v.Check(std::isfinite(lo[d]) && std::isfinite(hi[d]))
          << "row " << i << " dim " << d << " envelope not finite";
      v.Check(lo[d] <= hi[d])
          << "row " << i << " dim " << d << " inverted envelope";
    }
    if (!v.ok()) return v.ToStatus();
  }
  return v.ToStatus();
}

}  // namespace s2::approx
