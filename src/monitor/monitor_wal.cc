#include "monitor/monitor_wal.h"

#include <cstring>
#include <utility>

#include "io/durable.h"

namespace s2::monitor {

namespace {

constexpr char kMagic[8] = {'S', '2', 'M', 'W', 'A', 'L', '0', '1'};
constexpr size_t kLenBytes = sizeof(uint32_t);
constexpr size_t kSumBytes = sizeof(uint64_t);
// A subscription payload is dominated by the similarity query (one double
// per corpus day); anything past this is a torn length prefix, not a
// record. Generous: a 1M-day window would still fit.
constexpr uint32_t kMaxPayloadBytes = 16u << 20;

uint64_t ChainSeed() { return io::durable::Fnv1a64(kMagic, sizeof(kMagic)); }

class Encoder {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  const std::vector<char>& bytes() const { return bytes_; }

 private:
  void Raw(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    bytes_.insert(bytes_.end(), c, c + n);
  }
  std::vector<char> bytes_;
};

class Decoder {
 public:
  Decoder(const char* data, size_t n) : data_(data), n_(n) {}
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Done() const { return pos_ == n_; }

 private:
  bool Raw(void* p, size_t n) {
    if (n_ - pos_ < n) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t n_;
  size_t pos_ = 0;
};

std::vector<char> EncodePayload(const MonitorOp& op) {
  Encoder enc;
  enc.U32(static_cast<uint32_t>(op.op));
  enc.U64(op.anchor);
  switch (op.op) {
    case MonitorOp::Kind::kSubscribe: {
      const Subscription& sub = op.sub;
      enc.U64(sub.id);
      enc.U32(static_cast<uint32_t>(sub.kind));
      enc.U32(sub.series);
      enc.U32(sub.burst.window);
      enc.F64(sub.burst.enter_ratio);
      enc.F64(sub.burst.exit_ratio);
      enc.F64(sub.similarity.radius);
      enc.F64(sub.similarity.exit_radius);
      enc.U64(sub.similarity.query.size());
      for (double v : sub.similarity.query) enc.F64(v);
      break;
    }
    case MonitorOp::Kind::kUnsubscribe:
      enc.U64(op.sub.id);
      break;
    case MonitorOp::Kind::kAck:
      enc.U64(op.ack_upto);
      break;
  }
  return enc.bytes();
}

bool DecodePayload(const char* data, size_t n, MonitorOp* op) {
  Decoder dec(data, n);
  uint32_t kind = 0;
  if (!dec.U32(&kind) || !dec.U64(&op->anchor)) return false;
  switch (kind) {
    case static_cast<uint32_t>(MonitorOp::Kind::kSubscribe): {
      op->op = MonitorOp::Kind::kSubscribe;
      Subscription& sub = op->sub;
      uint32_t sub_kind = 0;
      uint32_t series = 0;
      uint64_t query_len = 0;
      if (!dec.U64(&sub.id) || !dec.U32(&sub_kind) || !dec.U32(&series) ||
          !dec.U32(&sub.burst.window) || !dec.F64(&sub.burst.enter_ratio) ||
          !dec.F64(&sub.burst.exit_ratio) || !dec.F64(&sub.similarity.radius) ||
          !dec.F64(&sub.similarity.exit_radius) || !dec.U64(&query_len)) {
        return false;
      }
      if (sub_kind > static_cast<uint32_t>(SubscriptionKind::kSimilarityWatch)) {
        return false;
      }
      sub.kind = static_cast<SubscriptionKind>(sub_kind);
      sub.series = series;
      sub.similarity.query.clear();
      if (query_len > n / sizeof(double)) return false;
      sub.similarity.query.reserve(query_len);
      for (uint64_t i = 0; i < query_len; ++i) {
        double v = 0.0;
        if (!dec.F64(&v)) return false;
        sub.similarity.query.push_back(v);
      }
      break;
    }
    case static_cast<uint32_t>(MonitorOp::Kind::kUnsubscribe):
      op->op = MonitorOp::Kind::kUnsubscribe;
      if (!dec.U64(&op->sub.id)) return false;
      break;
    case static_cast<uint32_t>(MonitorOp::Kind::kAck):
      op->op = MonitorOp::Kind::kAck;
      if (!dec.U64(&op->ack_upto)) return false;
      break;
    default:
      return false;
  }
  return dec.Done();
}

}  // namespace

Result<std::unique_ptr<MonitorWal>> MonitorWal::Open(
    io::Env* env, const std::string& path, std::vector<MonitorOp>* ops,
    ReplayInfo* info) {
  if (env == nullptr) env = io::Env::Default();
  if (ops == nullptr) {
    return Status::InvalidArgument("MonitorWal: ops out-param required");
  }
  S2_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                      env->Open(path, io::OpenMode::kReadWrite));
  S2_ASSIGN_OR_RETURN(uint64_t size, file->Size());

  if (size == 0) {
    S2_RETURN_NOT_OK(io::WriteExactAt(file.get(), kMagic, sizeof(kMagic), 0));
    S2_RETURN_NOT_OK(file->Sync());
    if (info != nullptr) *info = ReplayInfo{};
    return std::unique_ptr<MonitorWal>(
        new MonitorWal(path, std::move(file), sizeof(kMagic), ChainSeed(), 0));
  }

  if (size < sizeof(kMagic)) {
    return Status::Corruption("MonitorWal: truncated header in " + path);
  }
  char magic[sizeof(kMagic)];
  S2_RETURN_NOT_OK(io::ReadExactAt(file.get(), magic, sizeof(magic), 0));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("MonitorWal: bad magic in " + path);
  }

  const uint64_t body = size - sizeof(kMagic);
  std::vector<char> bytes(body);
  if (body > 0) {
    S2_RETURN_NOT_OK(
        io::ReadExactAt(file.get(), bytes.data(), body, sizeof(kMagic)));
  }

  // Scan intact records; stop at the first short, oversized or
  // chain-breaking one (a torn tail, overwritten in place by the next
  // append — the stream::Wal contract).
  uint64_t chain = ChainSeed();
  uint64_t pos = 0;
  size_t records = 0;
  while (body - pos >= kLenBytes + kSumBytes) {
    uint32_t len = 0;
    std::memcpy(&len, bytes.data() + pos, kLenBytes);
    if (len > kMaxPayloadBytes || body - pos < kLenBytes + len + kSumBytes) {
      break;
    }
    uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + pos + kLenBytes + len, kSumBytes);
    const uint64_t expected =
        io::durable::Fnv1a64(bytes.data() + pos, kLenBytes + len, chain);
    if (stored != expected) break;
    MonitorOp op;
    if (!DecodePayload(bytes.data() + pos + kLenBytes, len, &op)) {
      return Status::Corruption("MonitorWal: undecodable record in " + path);
    }
    ops->push_back(std::move(op));
    chain = stored;
    pos += kLenBytes + len + kSumBytes;
    ++records;
  }

  if (info != nullptr) {
    info->records = records;
    info->dropped_bytes = body - pos;
  }
  return std::unique_ptr<MonitorWal>(new MonitorWal(
      path, std::move(file), sizeof(kMagic) + pos, chain, records));
}

Status MonitorWal::Append(const MonitorOp& op) {
  const std::vector<char> payload = EncodePayload(op);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::vector<char> record(kLenBytes + payload.size() + kSumBytes);
  std::memcpy(record.data(), &len, kLenBytes);
  std::memcpy(record.data() + kLenBytes, payload.data(), payload.size());
  const uint64_t sum = io::durable::Fnv1a64(record.data(),
                                            kLenBytes + payload.size(), chain_);
  std::memcpy(record.data() + kLenBytes + payload.size(), &sum, kSumBytes);
  S2_RETURN_NOT_OK(
      io::WriteExactAt(file_.get(), record.data(), record.size(), tail_));
  S2_RETURN_NOT_OK(file_->Sync());
  // In-memory state advances only after the I/O succeeded, so a failed
  // append is retryable verbatim and never acknowledged.
  tail_ += record.size();
  chain_ = sum;
  ++record_count_;
  return Status::OK();
}

}  // namespace s2::monitor
