file(REMOVE_RECURSE
  "CMakeFiles/bench_burst.dir/bench_burst.cc.o"
  "CMakeFiles/bench_burst.dir/bench_burst.cc.o.d"
  "bench_burst"
  "bench_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
