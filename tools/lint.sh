#!/usr/bin/env bash
# Runs clang-tidy (profile: repo-root .clang-tidy) over every source file
# under src/, then a second misc-const-correctness pass scoped to the
# lock-heavy files (the sync layer and everything that holds a sync::Mutex),
# where a missed const invites taking the lock where none is needed.
#
# Any finding fails the run: the profile sets WarningsAsErrors '*', and this
# script additionally treats any emitted diagnostic as a failure so a
# clang-tidy version that exits 0 on warnings still gates.
#
# Skips with a notice — and exit code 0 — when clang-tidy is not installed,
# so CI images without LLVM still pass the rest of verify_all.sh.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir: a CMake build tree configured with
#              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (default: build)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found on PATH; skipping static analysis." >&2
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint.sh: ${build_dir}/compile_commands.json missing." >&2
  echo "lint.sh: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
  exit 1
fi

# The files rewritten onto sync::Mutex; kept in sync with DESIGN.md §10.
sync_heavy_files=(
  src/base/sync.cc
  src/exec/thread_pool.cc
  src/io/fault_env.cc
  src/io/mem_env.cc
  src/monitor/alert_queue.cc
  src/resilience/circuit_breaker.cc
  src/resilience/retrying_source.cc
  src/service/metrics.cc
  src/service/result_cache.cc
  src/service/s2_server.cc
)

run_tidy() {
  # run_tidy <label> <extra-args...> -- <files...>; counts a file as failed
  # when clang-tidy exits non-zero OR emits any warning/error diagnostic.
  local label="$1"
  shift
  local -a extra=()
  while [ "$1" != "--" ]; do
    extra+=("$1")
    shift
  done
  shift
  local failures=0
  local file output status
  for file in "$@"; do
    output="$(clang-tidy -p "${build_dir}" --quiet "${extra[@]}" "${file}" 2>&1)"
    status=$?
    if [ "${status}" -ne 0 ] || printf '%s' "${output}" |
        grep -qE '(warning|error):'; then
      printf '%s\n' "${output}"
      failures=$((failures + 1))
    fi
  done
  if [ "${failures}" -ne 0 ]; then
    echo "lint.sh: ${label}: findings in ${failures} file(s)." >&2
    return 1
  fi
  echo "lint.sh: ${label}: clean."
}

overall=0

mapfile -t all_sources < <(find "${repo_root}/src" -name '*.cc' | sort)
run_tidy "default profile" -- "${all_sources[@]}" || overall=1

sync_paths=()
for f in "${sync_heavy_files[@]}"; do
  sync_paths+=("${repo_root}/${f}")
done
run_tidy "const-correctness (sync-heavy files)" \
  --checks='-*,misc-const-correctness' \
  --warnings-as-errors='*' -- "${sync_paths[@]}" || overall=1

if [ "${overall}" -ne 0 ]; then
  echo "lint.sh: static analysis FAILED." >&2
  exit 1
fi
echo "lint.sh: clang-tidy clean."
