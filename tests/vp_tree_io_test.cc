#include <cstdio>
#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "dsp/stats.h"
#include "index/vp_tree.h"
#include "querylog/corpus_generator.h"
#include "storage/sequence_store.h"

namespace s2::index {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  std::vector<std::vector<double>> rows;
  std::vector<std::vector<double>> queries;
  std::unique_ptr<storage::InMemorySequenceSource> source;
};

Fixture MakeFixture(size_t num_series, uint64_t seed) {
  qlog::CorpusSpec spec;
  spec.num_series = num_series;
  spec.n_days = 256;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  Fixture fx;
  for (const auto& series : corpus->series()) {
    fx.rows.push_back(dsp::Standardize(series.values));
  }
  auto queries = qlog::GenerateQueries(spec, 6);
  EXPECT_TRUE(queries.ok());
  for (const auto& q : *queries) fx.queries.push_back(dsp::Standardize(q.values));
  auto source = storage::InMemorySequenceSource::Create(fx.rows);
  EXPECT_TRUE(source.ok());
  fx.source = std::move(source).ValueOrDie();
  return fx;
}

TEST(VpTreeIoTest, SaveLoadRoundTripGivesIdenticalSearches) {
  Fixture fx = MakeFixture(200, 51);
  VpTreeIndex::Options options;
  options.budget_c = 16;
  options.leaf_size = 4;
  auto built = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(built.ok());

  const std::string path = TempPath("s2_vptree_roundtrip.bin");
  ASSERT_TRUE(built->Save(path).ok());
  auto loaded = VpTreeIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), built->size());
  EXPECT_EQ(loaded->CompressedBytes(), built->CompressedBytes());
  EXPECT_EQ(loaded->options().budget_c, options.budget_c);

  for (const auto& query : fx.queries) {
    VpTreeIndex::SearchStats stats_a;
    VpTreeIndex::SearchStats stats_b;
    auto a = built->Search(query, 3, fx.source.get(), &stats_a);
    auto b = loaded->Search(query, 3, fx.source.get(), &stats_b);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].id, (*b)[i].id);
      EXPECT_DOUBLE_EQ((*a)[i].distance, (*b)[i].distance);
    }
    // Identical traversal behaviour, not just identical answers.
    EXPECT_EQ(stats_a.bound_computations, stats_b.bound_computations);
    EXPECT_EQ(stats_a.full_retrievals, stats_b.full_retrievals);
  }
  std::remove(path.c_str());
}

TEST(VpTreeIoTest, TombstonesSurviveRoundTrip) {
  Fixture fx = MakeFixture(100, 52);
  VpTreeIndex::Options options;
  options.budget_c = 8;
  options.leaf_size = 4;
  auto built = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(built.ok());
  for (ts::SeriesId id = 0; id < 30; ++id) {
    ASSERT_TRUE(built->Remove(id).ok());
  }
  const size_t tombstones = built->num_tombstones();
  ASSERT_GT(tombstones, 0u);

  const std::string path = TempPath("s2_vptree_tombstones.bin");
  ASSERT_TRUE(built->Save(path).ok());
  auto loaded = VpTreeIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_tombstones(), tombstones);
  EXPECT_EQ(loaded->size(), 70u);
  // Removed ids never reappear.
  for (const auto& query : fx.queries) {
    auto got = loaded->Search(query, 5, fx.source.get(), nullptr);
    ASSERT_TRUE(got.ok());
    for (const auto& n : *got) EXPECT_GE(n.id, 30u);
  }
  std::remove(path.c_str());
}

TEST(VpTreeIoTest, LoadedIndexSupportsDynamicOps) {
  Fixture fx = MakeFixture(120, 53);
  std::vector<std::vector<double>> initial(fx.rows.begin(), fx.rows.begin() + 100);
  VpTreeIndex::Options options;
  options.budget_c = 8;
  auto built = VpTreeIndex::Build(initial, options);
  ASSERT_TRUE(built.ok());

  const std::string path = TempPath("s2_vptree_dynamic.bin");
  ASSERT_TRUE(built->Save(path).ok());
  auto loaded = VpTreeIndex::Load(path);
  ASSERT_TRUE(loaded.ok());

  for (ts::SeriesId id = 100; id < 120; ++id) {
    ASSERT_TRUE(loaded->Insert(id, fx.rows[id], fx.source.get()).ok()) << id;
  }
  EXPECT_EQ(loaded->size(), 120u);
  auto got = loaded->Search(fx.rows[110], 1, fx.source.get(), nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_NEAR((*got)[0].distance, 0.0, 1e-9);
  std::remove(path.c_str());
}

TEST(VpTreeIoTest, CorruptFilesRejected) {
  EXPECT_EQ(VpTreeIndex::Load("/no/such/index.bin").status().code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("s2_vptree_corrupt.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("GARBAGE!", 1, 8, f);
  std::fclose(f);
  EXPECT_EQ(VpTreeIndex::Load(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(VpTreeIoTest, TruncationDetected) {
  Fixture fx = MakeFixture(60, 54);
  VpTreeIndex::Options options;
  options.budget_c = 8;
  auto built = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(built.ok());
  const std::string path = TempPath("s2_vptree_trunc.bin");
  ASSERT_TRUE(built->Save(path).ok());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size * 2 / 3);
  EXPECT_EQ(VpTreeIndex::Load(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s2::index
