// Crash-point sweep over every on-disk format, via fuzz::CrashSweep: commit
// generation A cleanly, crash a generation-B commit at every mutating op in
// turn, and require the store to reopen as exactly A or B every time.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "burst/disk_burst_table.h"
#include "dsp/stats.h"
#include "index/vp_tree.h"
#include "io/env.h"
#include "repr/feature_store.h"
#include "storage/corpus_io.h"
#include "storage/disk_bptree.h"
#include "storage/sequence_store.h"
#include "fuzz_util.h"

namespace s2 {
namespace {

using fuzz::CrashSweep;
using io::Env;

// Deterministic, Rng-free synthetic rows; `salt` decorrelates generations.
std::vector<std::vector<double>> MakeRows(size_t count, size_t length,
                                          double salt) {
  std::vector<std::vector<double>> rows(count);
  for (size_t i = 0; i < count; ++i) {
    rows[i].resize(length);
    for (size_t t = 0; t < length; ++t) {
      rows[i][t] = std::sin(0.13 * static_cast<double>(t + 1) *
                            static_cast<double>(i + 1)) +
                   salt * static_cast<double>(i + 1);
    }
  }
  return rows;
}

TEST(CrashSweepTest, SequenceStoreSurvivesEveryCrashPoint) {
  const auto rows_a = MakeRows(3, 16, 0.0);
  const auto rows_b = MakeRows(5, 16, 0.5);
  CrashSweep(
      [&](Env* env) {
        ASSERT_TRUE(
            storage::DiskSequenceStore::Create("seq.bin", rows_a, env).ok());
      },
      [&](Env* env) {
        return storage::DiskSequenceStore::Create("seq.bin", rows_b, env)
            .status();
      },
      [&](Env* env, bool definitely_b) {
        auto store = storage::DiskSequenceStore::Open("seq.bin", env);
        ASSERT_TRUE(store.ok()) << store.status().ToString();
        const size_t n = (*store)->num_series();
        if (definitely_b) {
          ASSERT_EQ(n, rows_b.size());
        } else {
          ASSERT_TRUE(n == rows_a.size() || n == rows_b.size())
              << "torn store: " << n << " series";
        }
        const auto& expect = (n == rows_a.size()) ? rows_a : rows_b;
        auto row = (*store)->Get(0);
        ASSERT_TRUE(row.ok());
        EXPECT_EQ(*row, expect[0]);
      });
}

TEST(CrashSweepTest, CorpusSurvivesEveryCrashPoint) {
  auto make_corpus = [](size_t count, double salt) {
    ts::Corpus corpus;
    for (const auto& values : MakeRows(count, 12, salt)) {
      corpus.Add(ts::TimeSeries{"q" + std::to_string(corpus.size()), 0, values});
    }
    return corpus;
  };
  const ts::Corpus corpus_a = make_corpus(2, 0.0);
  const ts::Corpus corpus_b = make_corpus(4, 0.5);
  CrashSweep(
      [&](Env* env) {
        ASSERT_TRUE(storage::WriteCorpus("corpus.bin", corpus_a, env).ok());
      },
      [&](Env* env) { return storage::WriteCorpus("corpus.bin", corpus_b, env); },
      [&](Env* env, bool definitely_b) {
        auto corpus = storage::ReadCorpus("corpus.bin", env);
        ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
        const size_t n = corpus->size();
        if (definitely_b) {
          ASSERT_EQ(n, corpus_b.size());
        } else {
          ASSERT_TRUE(n == corpus_a.size() || n == corpus_b.size())
              << "torn corpus: " << n << " series";
        }
        const ts::Corpus& expect = (n == corpus_a.size()) ? corpus_a : corpus_b;
        EXPECT_EQ(corpus->at(0).values, expect.at(0).values);
      });
}

TEST(CrashSweepTest, FeatureStoreSurvivesEveryCrashPoint) {
  auto make_features = [](size_t count, double salt) {
    std::vector<repr::CompressedSpectrum> features;
    for (const auto& values : MakeRows(count, 32, salt)) {
      auto spectrum = repr::HalfSpectrum::FromSeries(dsp::Standardize(values));
      EXPECT_TRUE(spectrum.ok());
      auto compressed = repr::CompressedSpectrum::Compress(
          *spectrum, repr::ReprKind::kBestKError, 4);
      EXPECT_TRUE(compressed.ok());
      features.push_back(*std::move(compressed));
    }
    return features;
  };
  const auto features_a = make_features(2, 0.0);
  const auto features_b = make_features(3, 0.5);
  CrashSweep(
      [&](Env* env) {
        ASSERT_TRUE(repr::WriteFeatures("feat.bin", features_a, env).ok());
      },
      [&](Env* env) { return repr::WriteFeatures("feat.bin", features_b, env); },
      [&](Env* env, bool definitely_b) {
        auto features = repr::ReadFeatures("feat.bin", env);
        ASSERT_TRUE(features.ok()) << features.status().ToString();
        const size_t n = features->size();
        if (definitely_b) {
          ASSERT_EQ(n, features_b.size());
        } else {
          ASSERT_TRUE(n == features_a.size() || n == features_b.size())
              << "torn feature set: " << n << " entries";
        }
      });
}

TEST(CrashSweepTest, VpTreeImageSurvivesEveryCrashPoint) {
  auto standardize_all = [](std::vector<std::vector<double>> rows) {
    for (auto& row : rows) row = dsp::Standardize(row);
    return rows;
  };
  const auto rows_a = standardize_all(MakeRows(6, 64, 0.0));
  const auto rows_b = standardize_all(MakeRows(9, 64, 0.5));
  index::VpTreeIndex::Options options;
  options.budget_c = 8;
  options.leaf_size = 2;
  auto built_a = index::VpTreeIndex::Build(rows_a, options);
  auto built_b = index::VpTreeIndex::Build(rows_b, options);
  ASSERT_TRUE(built_a.ok());
  ASSERT_TRUE(built_b.ok());
  CrashSweep(
      [&](Env* env) { ASSERT_TRUE(built_a->Save("vp.bin", env).ok()); },
      [&](Env* env) { return built_b->Save("vp.bin", env); },
      [&](Env* env, bool definitely_b) {
        auto loaded = index::VpTreeIndex::Load("vp.bin", env);
        ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
        const size_t n = loaded->size();
        if (definitely_b) {
          ASSERT_EQ(n, rows_b.size());
        } else {
          ASSERT_TRUE(n == rows_a.size() || n == rows_b.size())
              << "torn index image: " << n << " series";
        }
      });
}

TEST(CrashSweepTest, DiskBPlusTreeSurvivesEveryCrashPoint) {
  constexpr uint64_t kSizeA = 10;
  constexpr uint64_t kSizeB = 25;
  auto open = [](Env* env) {
    storage::DiskBPlusTree::Options options;
    options.env = env;
    options.durable = true;
    return storage::DiskBPlusTree::Open("tree.db", options);
  };
  CrashSweep(
      [&](Env* env) {
        auto tree = open(env);
        ASSERT_TRUE(tree.ok());
        for (uint64_t k = 0; k < kSizeA; ++k) {
          ASSERT_TRUE((*tree)->Insert(static_cast<int64_t>(k), k).ok());
        }
        ASSERT_TRUE((*tree)->Flush().ok());
      },
      [&](Env* env) -> Status {
        S2_ASSIGN_OR_RETURN(auto tree, open(env));
        for (uint64_t k = kSizeA; k < kSizeB; ++k) {
          S2_RETURN_NOT_OK(tree->Insert(static_cast<int64_t>(k), k));
        }
        return tree->Flush();
      },
      [&](Env* env, bool definitely_b) {
        auto tree = open(env);
        ASSERT_TRUE(tree.ok()) << tree.status().ToString();
        ASSERT_TRUE((*tree)->Validate().ok());
        const uint64_t n = (*tree)->size();
        if (definitely_b) {
          ASSERT_EQ(n, kSizeB);
        } else {
          ASSERT_TRUE(n == kSizeA || n == kSizeB) << "torn tree: " << n;
        }
      });
}

TEST(CrashSweepTest, DiskBurstTableSurvivesEveryCrashPoint) {
  constexpr uint64_t kRecordsA = 2;
  constexpr uint64_t kRecordsB = 5;
  auto open = [](Env* env) {
    burst::DiskBurstTable::Options options;
    options.env = env;
    options.durable = true;
    return burst::DiskBurstTable::Open("bursts", options);
  };
  auto region = [](int32_t start, double level) {
    burst::BurstRegion r;
    r.start = start;
    r.end = start + 3;
    r.avg_value = level;
    return r;
  };
  CrashSweep(
      [&](Env* env) {
        auto table = open(env);
        ASSERT_TRUE(table.ok());
        for (uint64_t i = 0; i < kRecordsA; ++i) {
          ASSERT_TRUE((*table)
                          ->Insert(static_cast<ts::SeriesId>(i),
                                   {region(static_cast<int32_t>(10 * i), 2.0)},
                                   /*offset=*/0)
                          .ok());
        }
        ASSERT_TRUE((*table)->Flush().ok());
      },
      [&](Env* env) -> Status {
        S2_ASSIGN_OR_RETURN(auto table, open(env));
        for (uint64_t i = kRecordsA; i < kRecordsB; ++i) {
          S2_RETURN_NOT_OK(table->Insert(
              static_cast<ts::SeriesId>(i),
              {region(static_cast<int32_t>(10 * i), 3.0)}, /*offset=*/0));
        }
        return table->Flush();
      },
      [&](Env* env, bool definitely_b) {
        // Open may self-heal (rebuild the index from the heap) when the
        // crash fell between the heap and index commits; it must never fail.
        auto table = open(env);
        ASSERT_TRUE(table.ok()) << table.status().ToString();
        ASSERT_TRUE((*table)->Validate().ok());
        const uint64_t n = (*table)->size();
        if (definitely_b) {
          ASSERT_EQ(n, kRecordsB);
        } else {
          ASSERT_TRUE(n == kRecordsA || n == kRecordsB)
              << "torn burst table: " << n << " records";
        }
      });
}

}  // namespace
}  // namespace s2
