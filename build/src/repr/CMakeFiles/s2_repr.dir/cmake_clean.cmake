file(REMOVE_RECURSE
  "CMakeFiles/s2_repr.dir/bounds.cc.o"
  "CMakeFiles/s2_repr.dir/bounds.cc.o.d"
  "CMakeFiles/s2_repr.dir/compressed.cc.o"
  "CMakeFiles/s2_repr.dir/compressed.cc.o.d"
  "CMakeFiles/s2_repr.dir/feature_store.cc.o"
  "CMakeFiles/s2_repr.dir/feature_store.cc.o.d"
  "CMakeFiles/s2_repr.dir/half_spectrum.cc.o"
  "CMakeFiles/s2_repr.dir/half_spectrum.cc.o.d"
  "libs2_repr.a"
  "libs2_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
