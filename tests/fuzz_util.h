#ifndef S2_TESTS_FUZZ_UTIL_H_
#define S2_TESTS_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"

namespace s2::fuzz {

/// Deterministic corruption injection for the on-disk format fuzz tests:
/// every mutation derives from an explicit `s2::Rng` seed, so a sanitizer
/// failure reproduces from the test log alone.

inline std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

inline std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

inline void WriteFileBytes(const std::string& path,
                           const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One seeded mutation of `image`: either flips 1-8 random bytes to random
/// values, or truncates the image at a random point. Empty images are
/// returned unchanged.
inline std::vector<char> Mutate(const std::vector<char>& image, s2::Rng* rng) {
  std::vector<char> mutated = image;
  if (mutated.empty()) return mutated;
  if (rng->Bernoulli(0.25)) {
    const size_t cut = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated.resize(cut);
    return mutated;
  }
  const int flips = static_cast<int>(rng->UniformInt(1, 8));
  for (int i = 0; i < flips; ++i) {
    const size_t at = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated[at] = static_cast<char>(rng->UniformInt(0, 255));
  }
  return mutated;
}

}  // namespace s2::fuzz

#endif  // S2_TESTS_FUZZ_UTIL_H_
