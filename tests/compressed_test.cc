#include "repr/compressed.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/stats.h"

namespace s2::repr {
namespace {

std::vector<double> PeriodicSeries(size_t n, uint64_t seed) {
  // Strongly periodic signal with power away from the low frequencies —
  // the regime where best-k beats first-k.
  Rng rng(seed);
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = 3.0 * std::sin(2.0 * std::numbers::pi * t / 7.0) +
           1.5 * std::sin(2.0 * std::numbers::pi * t / 30.0) +
           rng.Normal(0, 0.3);
  }
  return dsp::Standardize(x);
}

HalfSpectrum SpectrumOf(const std::vector<double>& x) {
  auto s = HalfSpectrum::FromSeries(x);
  EXPECT_TRUE(s.ok());
  return std::move(s).ValueOrDie();
}

TEST(CompressedTest, BestCoefficientBudgetMatchesPaper) {
  // Section 7.1: floor(c / 1.125).
  EXPECT_EQ(BestCoefficientBudget(8), 7u);
  EXPECT_EQ(BestCoefficientBudget(16), 14u);
  EXPECT_EQ(BestCoefficientBudget(32), 28u);
  EXPECT_EQ(BestCoefficientBudget(9), 8u);
  EXPECT_EQ(BestCoefficientBudget(1), 0u);
}

TEST(CompressedTest, RejectsBadBudgets) {
  const HalfSpectrum s = SpectrumOf(PeriodicSeries(64, 1));
  EXPECT_FALSE(CompressedSpectrum::Compress(s, ReprKind::kFirstKMiddle, 0).ok());
  // keep >= bins.
  EXPECT_FALSE(CompressedSpectrum::Compress(s, ReprKind::kFirstKMiddle, 40).ok());
  // Best budget of 1 rounds to 0 coefficients.
  EXPECT_FALSE(CompressedSpectrum::Compress(s, ReprKind::kBestKError, 1).ok());
}

TEST(CompressedTest, FirstKTakesLeadingBinsPlusMiddle) {
  const HalfSpectrum s = SpectrumOf(PeriodicSeries(64, 2));
  auto c = CompressedSpectrum::Compress(s, ReprKind::kFirstKMiddle, 5);
  ASSERT_TRUE(c.ok());
  // Positions 1..5 plus the Nyquist bin 32.
  EXPECT_EQ(c->positions(), (std::vector<uint32_t>{1, 2, 3, 4, 5, 32}));
  EXPECT_TRUE(std::isnan(c->error()));
  EXPECT_TRUE(std::isinf(c->min_power()));
}

TEST(CompressedTest, FirstKErrorStoresOmittedEnergy) {
  const std::vector<double> x = PeriodicSeries(128, 3);
  const HalfSpectrum s = SpectrumOf(x);
  auto c = CompressedSpectrum::Compress(s, ReprKind::kFirstKError, 6);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->positions(), (std::vector<uint32_t>{1, 2, 3, 4, 5, 6}));
  // Stored error + kept energy == total energy.
  double kept = 0.0;
  for (size_t i = 0; i < c->positions().size(); ++i) {
    kept += c->multiplicity(c->positions()[i]) * std::norm(c->coeffs()[i]);
  }
  EXPECT_NEAR(kept + c->error(), s.Energy(), 1e-8 * (1.0 + s.Energy()));
}

TEST(CompressedTest, BestKSelectsLargestMagnitudes) {
  const HalfSpectrum s = SpectrumOf(PeriodicSeries(256, 4));
  auto c = CompressedSpectrum::Compress(s, ReprKind::kBestKError, 9);  // 8 best.
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->positions().size(), 8u);
  // minProperty: every omitted bin magnitude <= min over kept.
  double min_kept = 1e300;
  for (uint32_t k : c->positions()) {
    min_kept = std::min(min_kept, std::abs(s.coeff(k)));
  }
  EXPECT_DOUBLE_EQ(c->min_power(), min_kept);
  for (uint32_t k = 0; k < s.num_bins(); ++k) {
    if (!c->Holds(k, nullptr)) {
      EXPECT_LE(std::abs(s.coeff(k)), min_kept + 1e-12) << "bin " << k;
    }
  }
}

TEST(CompressedTest, BestKMiddleAlwaysContainsNyquist) {
  const HalfSpectrum s = SpectrumOf(PeriodicSeries(64, 5));
  auto c = CompressedSpectrum::Compress(s, ReprKind::kBestKMiddle, 5);  // 4 best.
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->Holds(32, nullptr));
  EXPECT_TRUE(std::isnan(c->error()));
  EXPECT_TRUE(std::isfinite(c->min_power()));
}

TEST(CompressedTest, HoldsReportsSlot) {
  const HalfSpectrum s = SpectrumOf(PeriodicSeries(64, 6));
  auto c = CompressedSpectrum::Compress(s, ReprKind::kFirstKError, 4);
  ASSERT_TRUE(c.ok());
  size_t slot = 99;
  EXPECT_TRUE(c->Holds(3, &slot));
  EXPECT_EQ(slot, 2u);
  EXPECT_FALSE(c->Holds(10, &slot));
}

TEST(CompressedTest, EqualMemoryAccountingAcrossKinds) {
  // Table 1: every kind must occupy (at most) the same 2c+1 doubles.
  const HalfSpectrum s = SpectrumOf(PeriodicSeries(2048, 7));
  for (size_t c : {8u, 16u, 32u}) {
    const size_t budget_bytes = (2 * c + 1) * 8;
    for (ReprKind kind : {ReprKind::kFirstKMiddle, ReprKind::kFirstKError,
                          ReprKind::kBestKMiddle, ReprKind::kBestKError}) {
      auto compressed = CompressedSpectrum::Compress(s, kind, c);
      ASSERT_TRUE(compressed.ok());
      EXPECT_LE(compressed->StorageBytes(), budget_bytes)
          << ReprKindToString(kind) << " c=" << c;
      // And not wastefully small either (>= 80% of the budget).
      EXPECT_GE(compressed->StorageBytes(), budget_bytes * 4 / 5)
          << ReprKindToString(kind) << " c=" << c;
    }
  }
}

TEST(CompressedTest, BestKReconstructionBeatsFirstKOnPeriodicData) {
  // Figure 5's claim: fewer best coefficients reconstruct better than more
  // first coefficients on periodic sequences.
  for (uint64_t seed : {10u, 11u, 12u, 13u}) {
    const std::vector<double> x = PeriodicSeries(365, seed);
    const HalfSpectrum s = SpectrumOf(x);
    auto first = CompressedSpectrum::Compress(s, ReprKind::kFirstKMiddle, 5);
    auto best = CompressedSpectrum::Compress(s, ReprKind::kBestKMiddle, 5);  // 4 best.
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(best.ok());
    auto first_rec = first->Reconstruct();
    auto best_rec = best->Reconstruct();
    ASSERT_TRUE(first_rec.ok());
    ASSERT_TRUE(best_rec.ok());
    const double err_first = *dsp::Euclidean(x, *first_rec);
    const double err_best = *dsp::Euclidean(x, *best_rec);
    EXPECT_LT(err_best, err_first) << "seed " << seed;
  }
}

TEST(CompressedTest, ReconstructionErrorEqualsStoredError) {
  // For error-kinds, the stored T.err equals the squared reconstruction
  // residual (orthogonality of the Fourier basis).
  const std::vector<double> x = PeriodicSeries(256, 14);
  const HalfSpectrum s = SpectrumOf(x);
  auto c = CompressedSpectrum::Compress(s, ReprKind::kBestKError, 9);
  ASSERT_TRUE(c.ok());
  auto rec = c->Reconstruct();
  ASSERT_TRUE(rec.ok());
  const double residual_sq = *dsp::SquaredEuclidean(x, *rec);
  EXPECT_NEAR(residual_sq, c->error(), 1e-6 * (1.0 + c->error()));
}

TEST(CompressToEnergyTest, ValidatesFraction) {
  const HalfSpectrum s = SpectrumOf(PeriodicSeries(64, 20));
  EXPECT_FALSE(CompressedSpectrum::CompressToEnergy(s, 0.0).ok());
  EXPECT_FALSE(CompressedSpectrum::CompressToEnergy(s, 1.0).ok());
  EXPECT_FALSE(CompressedSpectrum::CompressToEnergy(s, -0.5).ok());
}

TEST(CompressToEnergyTest, CapturesRequestedEnergy) {
  const HalfSpectrum s = SpectrumOf(PeriodicSeries(365, 21));
  for (double fraction : {0.5, 0.8, 0.95, 0.99}) {
    auto c = CompressedSpectrum::CompressToEnergy(s, fraction);
    ASSERT_TRUE(c.ok());
    // error() is the *uncaptured* energy: <= (1 - fraction) of the total.
    EXPECT_LE(c->error(), (1.0 - fraction) * s.Energy() + 1e-9) << fraction;
    EXPECT_EQ(c->kind(), ReprKind::kBestKError);
  }
}

TEST(CompressToEnergyTest, ConcentratedSignalNeedsFewCoefficients) {
  // A near-pure sinusoid stores ~1-2 coefficients for 90% energy; a noise
  // signal needs many more.
  std::vector<double> sine(256);
  for (size_t i = 0; i < sine.size(); ++i) {
    sine[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 8.0);
  }
  auto concentrated = CompressedSpectrum::CompressToEnergy(SpectrumOf(sine), 0.9);
  ASSERT_TRUE(concentrated.ok());
  EXPECT_LE(concentrated->positions().size(), 2u);

  Rng rng(22);
  std::vector<double> noise(256);
  for (double& v : noise) v = rng.Normal(0, 1);
  auto spread = CompressedSpectrum::CompressToEnergy(SpectrumOf(noise), 0.9);
  ASSERT_TRUE(spread.ok());
  EXPECT_GT(spread->positions().size(), 20u);
}

TEST(CompressToEnergyTest, MinPropertyHolds) {
  const HalfSpectrum s = SpectrumOf(PeriodicSeries(365, 23));
  auto c = CompressedSpectrum::CompressToEnergy(s, 0.8);
  ASSERT_TRUE(c.ok());
  for (uint32_t k = 0; k < s.num_bins(); ++k) {
    if (!c->Holds(k, nullptr)) {
      EXPECT_LE(std::abs(s.coeff(k)), c->min_power() + 1e-12);
    }
  }
}

TEST(CompressToEnergyTest, HigherFractionKeepsMoreCoefficients) {
  const HalfSpectrum s = SpectrumOf(PeriodicSeries(512, 24));
  auto lo = CompressedSpectrum::CompressToEnergy(s, 0.6);
  auto hi = CompressedSpectrum::CompressToEnergy(s, 0.99);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_LT(lo->positions().size(), hi->positions().size());
  EXPECT_GT(lo->error(), hi->error());
}

}  // namespace
}  // namespace s2::repr
