#include "resilience/circuit_breaker.h"

namespace s2::resilience {

CircuitBreaker::CircuitBreaker(Options options)
    : CircuitBreaker(options, []() { return std::chrono::steady_clock::now(); }) {}

CircuitBreaker::CircuitBreaker(Options options, Clock clock)
    : options_(options), clock_(std::move(clock)) {}

bool CircuitBreaker::AllowRequest() {
  sync::MutexLock lock(&mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_() - opened_at_ >= options_.cooldown) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      }
      ++rejected_;
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      ++rejected_;
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  sync::MutexLock lock(&mu_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = State::kClosed;
}

void CircuitBreaker::RecordNonFailure() {
  sync::MutexLock lock(&mu_);
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    // The probe went through the primary path and came back with a verdict
    // about the request, not the substrate: the path works.
    state_ = State::kClosed;
    consecutive_failures_ = 0;
  }
}

void CircuitBreaker::RecordFailure() {
  sync::MutexLock lock(&mu_);
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    // The probe failed: back to Open for another cooldown.
    state_ = State::kOpen;
    opened_at_ = clock_();
    ++trips_;
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = clock_();
    ++trips_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  sync::MutexLock lock(&mu_);
  return state_;
}

uint64_t CircuitBreaker::rejected_count() const {
  sync::MutexLock lock(&mu_);
  return rejected_;
}

uint64_t CircuitBreaker::trip_count() const {
  sync::MutexLock lock(&mu_);
  return trips_;
}

}  // namespace s2::resilience
