#include "querylog/archetypes.h"

#include <numbers>

namespace s2::qlog {

namespace {
// Day-of-year anchors for recurring real-world events (non-leap reference).
constexpr double kEasterDoy = 105;       // ~mid April.
constexpr double kElvisDeathDoy = 229;   // Aug 16.
constexpr double kHalloweenDoy = 304;    // Oct 31.
constexpr double kChristmasDoy = 359;    // Dec 25.
constexpr double kValentineDoy = 45;     // Feb 14.
constexpr double kMothersDayDoy = 132;   // ~May 12.
constexpr double kLunarPeriod = 29.53;
}  // namespace

QueryArchetype MakeCinema() {
  QueryArchetype a;
  a.name = "cinema";
  a.base_rate = 400;
  WeeklyComponent weekend;
  // Monday..Sunday: demand concentrates on Friday & Saturday.
  weekend.day_weights = {0.7, 0.65, 0.7, 0.8, 1.6, 1.9, 1.1};
  a.weekly.push_back(weekend);
  return a;
}

QueryArchetype MakeEaster() {
  QueryArchetype a;
  a.name = "easter";
  a.base_rate = 60;
  AnnualBurstComponent burst;
  burst.peak_day_of_year = kEasterDoy;
  burst.width_days = 25;      // Long build-up over the relevant months...
  burst.amplitude = 8;
  burst.sharp_drop = true;    // ...with an immediate drop after Easter.
  a.annual_bursts.push_back(burst);
  return a;
}

QueryArchetype MakeElvis() {
  QueryArchetype a;
  a.name = "elvis";
  a.base_rate = 120;
  AnnualBurstComponent spike;
  spike.peak_day_of_year = kElvisDeathDoy;
  spike.width_days = 2;
  spike.amplitude = 6;
  a.annual_bursts.push_back(spike);
  a.random_walk_sigma = 0.02;
  return a;
}

QueryArchetype MakeFullMoon() {
  QueryArchetype a;
  a.name = "full moon";
  a.base_rate = 90;
  SinusoidComponent lunar;
  lunar.period_days = kLunarPeriod;
  lunar.amplitude = 0.55;
  a.sinusoids.push_back(lunar);
  return a;
}

QueryArchetype MakeNordstrom() {
  QueryArchetype a;
  a.name = "nordstrom";
  a.base_rate = 150;
  WeeklyComponent weekly;
  weekly.day_weights = {0.9, 0.85, 0.9, 1.0, 1.2, 1.5, 1.25};
  a.weekly.push_back(weekly);
  AnnualBurstComponent holidays;
  holidays.peak_day_of_year = kChristmasDoy - 15;
  holidays.width_days = 20;
  holidays.amplitude = 1.2;
  a.annual_bursts.push_back(holidays);
  return a;
}

QueryArchetype MakeDudleyMoore(int32_t event_day) {
  QueryArchetype a;
  a.name = "dudley moore";
  a.base_rate = 40;
  a.random_walk_sigma = 0.015;
  EventBurstComponent news;
  news.day_index = event_day;
  news.rise_days = 1;
  news.decay_days = 4;
  news.amplitude = 15;
  a.events.push_back(news);
  return a;
}

QueryArchetype MakeHalloween() {
  QueryArchetype a;
  a.name = "halloween";
  a.base_rate = 70;
  AnnualBurstComponent burst;
  burst.peak_day_of_year = kHalloweenDoy;
  burst.width_days = 18;
  burst.amplitude = 7;
  a.annual_bursts.push_back(burst);
  return a;
}

QueryArchetype MakeChristmas() {
  QueryArchetype a;
  a.name = "christmas";
  a.base_rate = 110;
  AnnualBurstComponent burst;
  burst.peak_day_of_year = kChristmasDoy;
  burst.width_days = 22;
  burst.amplitude = 9;
  burst.sharp_drop = true;
  a.annual_bursts.push_back(burst);
  return a;
}

QueryArchetype MakeFlowers() {
  QueryArchetype a;
  a.name = "flowers";
  a.base_rate = 130;
  AnnualBurstComponent valentine;
  valentine.peak_day_of_year = kValentineDoy;
  valentine.width_days = 6;
  valentine.amplitude = 4;
  a.annual_bursts.push_back(valentine);
  AnnualBurstComponent mothers_day;
  mothers_day.peak_day_of_year = kMothersDayDoy;
  mothers_day.width_days = 6;
  mothers_day.amplitude = 3.2;
  a.annual_bursts.push_back(mothers_day);
  return a;
}

QueryArchetype MakeHurricane() {
  QueryArchetype a;
  a.name = "hurricane";
  a.base_rate = 55;
  AnnualBurstComponent season;
  season.peak_day_of_year = 250;  // Early September.
  season.width_days = 30;
  season.amplitude = 5;
  a.annual_bursts.push_back(season);
  a.random_walk_sigma = 0.04;
  return a;
}

QueryArchetype MakeWorldTradeCenter(int32_t event_day) {
  QueryArchetype a;
  a.name = "world trade center";
  a.base_rate = 60;
  EventBurstComponent attack;
  attack.day_index = event_day;
  attack.rise_days = 0.5;
  attack.decay_days = 20;
  attack.amplitude = 40;
  a.events.push_back(attack);
  return a;
}

QueryArchetype MakeRandomWeekly(const std::string& name, Rng* rng) {
  QueryArchetype a;
  a.name = name;
  a.base_rate = rng->Uniform(50, 500);
  WeeklyComponent weekly;
  const bool weekend_peaking = rng->Bernoulli(0.6);
  for (size_t d = 0; d < 7; ++d) {
    const bool is_weekend = d >= 4 && d <= 5;  // Fri/Sat.
    const double center = weekend_peaking == is_weekend ? 1.5 : 0.8;
    weekly.day_weights[d] = center + rng->Uniform(-0.15, 0.15);
  }
  weekly.amplitude = rng->Uniform(0.6, 1.0);
  a.weekly.push_back(weekly);
  a.random_walk_sigma = rng->Uniform(0.0, 0.02);
  return a;
}

QueryArchetype MakeRandomMonthly(const std::string& name, Rng* rng) {
  QueryArchetype a;
  a.name = name;
  a.base_rate = rng->Uniform(40, 300);
  SinusoidComponent monthly;
  monthly.period_days = rng->Bernoulli(0.5) ? kLunarPeriod : rng->Uniform(27, 32);
  monthly.phase = rng->Uniform(0, 2 * std::numbers::pi);
  monthly.amplitude = rng->Uniform(0.3, 0.7);
  a.sinusoids.push_back(monthly);
  a.random_walk_sigma = rng->Uniform(0.0, 0.02);
  return a;
}

QueryArchetype MakeRandomSeasonal(const std::string& name, Rng* rng) {
  QueryArchetype a;
  a.name = name;
  a.base_rate = rng->Uniform(40, 250);
  AnnualBurstComponent burst;
  burst.peak_day_of_year = rng->Uniform(1, 366);
  burst.width_days = rng->Uniform(5, 30);
  burst.amplitude = rng->Uniform(2, 10);
  burst.sharp_drop = rng->Bernoulli(0.3);
  a.annual_bursts.push_back(burst);
  if (rng->Bernoulli(0.3)) {  // Some seasonal queries also have a weekly cycle.
    WeeklyComponent weekly;
    for (size_t d = 0; d < 7; ++d) weekly.day_weights[d] = 1.0 + rng->Uniform(-0.2, 0.2);
    a.weekly.push_back(weekly);
  }
  return a;
}

QueryArchetype MakeRandomEvent(const std::string& name, int32_t span_start,
                               int32_t span_days, Rng* rng) {
  QueryArchetype a;
  a.name = name;
  a.base_rate = rng->Uniform(20, 150);
  a.random_walk_sigma = rng->Uniform(0.01, 0.05);
  const int n_events = static_cast<int>(rng->UniformInt(1, 3));
  for (int e = 0; e < n_events; ++e) {
    EventBurstComponent news;
    news.day_index = span_start + static_cast<int32_t>(rng->UniformInt(0, span_days - 1));
    news.rise_days = rng->Uniform(0.5, 3);
    news.decay_days = rng->Uniform(2, 25);
    news.amplitude = rng->Uniform(5, 40);
    a.events.push_back(news);
  }
  return a;
}

QueryArchetype MakeRandomAperiodic(const std::string& name, Rng* rng) {
  QueryArchetype a;
  a.name = name;
  a.base_rate = rng->Uniform(20, 400);
  a.random_walk_sigma = rng->Uniform(0.03, 0.12);
  a.trend.slope_per_year = rng->Uniform(-0.2, 0.3);
  return a;
}

}  // namespace s2::qlog
