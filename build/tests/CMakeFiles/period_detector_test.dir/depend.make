# Empty dependencies file for period_detector_test.
# This may be replaced when dependencies are built.
