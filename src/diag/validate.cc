#include "diag/validate.h"

namespace s2::diag {

void Validator::AddViolation(std::string detail) {
  ++violation_count_;
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(std::move(detail));
  }
}

Status Validator::ToStatus() const {
  if (ok()) return Status::OK();
  std::string message = structure_;
  message += ": ";
  for (size_t i = 0; i < violations_.size(); ++i) {
    if (i > 0) message += "; ";
    message += violations_[i];
  }
  if (violation_count_ > violations_.size()) {
    message += "; +";
    message += std::to_string(violation_count_ - violations_.size());
    message += " more violation(s)";
  }
  return Status::Corruption(std::move(message));
}

Status CorruptionError(std::string_view structure, std::string_view detail) {
  std::string message(structure);
  message += ": ";
  message += detail;
  return Status::Corruption(std::move(message));
}

}  // namespace s2::diag
