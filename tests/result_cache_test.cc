#include "service/result_cache.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace s2::service {
namespace {

CacheKey Key(uint64_t id, size_t k = 5,
             RequestKind kind = RequestKind::kSimilarTo) {
  CacheKey key;
  key.kind = kind;
  key.id = id;
  key.k = k;
  return key;
}

QueryResponse NeighborResponse(ts::SeriesId id) {
  QueryResponse response;
  response.neighbors.push_back({id, 1.5});
  return response;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.Lookup(Key(1)).has_value());
  cache.Insert(Key(1), NeighborResponse(9));
  auto hit = cache.Lookup(Key(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->cache_hit);
  ASSERT_EQ(hit->neighbors.size(), 1u);
  EXPECT_EQ(hit->neighbors[0].id, 9u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCacheTest, KeyDiscriminatesKindKAndHorizon) {
  ResultCache cache(8);
  cache.Insert(Key(1, 5, RequestKind::kSimilarTo), NeighborResponse(2));
  EXPECT_FALSE(cache.Lookup(Key(1, 6, RequestKind::kSimilarTo)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(1, 5, RequestKind::kSimilarToDtw)).has_value());
  CacheKey long_horizon = Key(1, 5, RequestKind::kQueryByBurst);
  long_horizon.horizon = 0;
  CacheKey short_horizon = long_horizon;
  short_horizon.horizon = 1;
  cache.Insert(long_horizon, NeighborResponse(3));
  EXPECT_FALSE(cache.Lookup(short_horizon).has_value());
  EXPECT_TRUE(cache.Lookup(long_horizon).has_value());
}

TEST(ResultCacheTest, KeyDiscriminatesAnswerQuality) {
  // Regression: an approximate answer must never be served to an exact
  // request with the same (kind, id, k) — and vice versa. The quality tier
  // and the knob hash are both part of the cache identity.
  ResultCache cache(8);
  CacheKey exact = Key(1, 5, RequestKind::kSimilarTo);
  CacheKey approximate = exact;
  approximate.kind = RequestKind::kApproxKnn;
  approximate.quality = AnswerQuality::kApproximate;
  approximate.param_hash = 0xBEEF;

  QueryResponse approx_response = NeighborResponse(7);
  approx_response.approximate = true;
  cache.Insert(approximate, approx_response);
  EXPECT_FALSE(cache.Lookup(exact).has_value());

  // Same verb, different knob hash: a different candidate set, so a miss.
  CacheKey other_knobs = approximate;
  other_knobs.param_hash = 0xF00D;
  EXPECT_FALSE(cache.Lookup(other_knobs).has_value());

  auto hit = cache.Lookup(approximate);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->approximate);

  // Even with every other field equal, the quality tier alone separates
  // entries (belt-and-suspenders beyond the kind separation).
  CacheKey demoted = approximate;
  demoted.quality = AnswerQuality::kExact;
  EXPECT_FALSE(cache.Lookup(demoted).has_value());
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(3);
  cache.Insert(Key(1), NeighborResponse(1));
  cache.Insert(Key(2), NeighborResponse(2));
  cache.Insert(Key(3), NeighborResponse(3));
  // Touch 1 so 2 becomes the LRU entry.
  EXPECT_TRUE(cache.Lookup(Key(1)).has_value());
  cache.Insert(Key(4), NeighborResponse(4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.Lookup(Key(2)).has_value());  // evicted
  EXPECT_TRUE(cache.Lookup(Key(1)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(3)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(4)).has_value());
}

TEST(ResultCacheTest, ReinsertRefreshesValueWithoutGrowth) {
  ResultCache cache(2);
  cache.Insert(Key(1), NeighborResponse(10));
  cache.Insert(Key(1), NeighborResponse(20));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(Key(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->neighbors[0].id, 20u);
}

TEST(ResultCacheTest, InvalidateEmptiesCache) {
  MetricsRegistry metrics;
  ResultCache cache(4, &metrics);
  cache.Insert(Key(1), NeighborResponse(1));
  cache.Insert(Key(2), NeighborResponse(2));
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Key(1)).has_value());
  EXPECT_EQ(metrics.counter("cache_invalidations")->value(), 1u);
}

TEST(ResultCacheTest, InvalidateCrossSeriesKeepsPerSeriesEntries) {
  ResultCache cache(8);
  // One entry of every kind a request can cache.
  cache.Insert(Key(1, 5, RequestKind::kSimilarTo), NeighborResponse(9));
  cache.Insert(Key(1, 5, RequestKind::kSimilarToDtw), NeighborResponse(9));
  cache.Insert(Key(1, 5, RequestKind::kQueryByBurst), NeighborResponse(9));
  cache.Insert(Key(1, 5, RequestKind::kPeriodsOf), NeighborResponse(9));
  cache.Insert(Key(1, 5, RequestKind::kBurstsOf), NeighborResponse(9));
  ASSERT_EQ(cache.size(), 5u);

  // An AddSeries can put the new series into any top-k or burst ranking, but
  // cannot change the periods or bursts *of* an existing series.
  cache.InvalidateCrossSeries();
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(Key(1, 5, RequestKind::kSimilarTo)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(1, 5, RequestKind::kSimilarToDtw)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(1, 5, RequestKind::kQueryByBurst)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(1, 5, RequestKind::kPeriodsOf)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(1, 5, RequestKind::kBurstsOf)).has_value());
}

TEST(ResultCacheTest, InvalidateForAppendDropsOwnPerSeriesAndAllCrossSeries) {
  ResultCache cache(16);
  // Per-series entries for the appended series (id 1) and a bystander (id 2),
  // plus cross-series entries keyed by both ids.
  cache.Insert(Key(1, 5, RequestKind::kPeriodsOf), NeighborResponse(9));
  cache.Insert(Key(1, 5, RequestKind::kBurstsOf), NeighborResponse(9));
  cache.Insert(Key(2, 5, RequestKind::kPeriodsOf), NeighborResponse(9));
  cache.Insert(Key(2, 5, RequestKind::kBurstsOf), NeighborResponse(9));
  cache.Insert(Key(1, 5, RequestKind::kSimilarTo), NeighborResponse(9));
  cache.Insert(Key(2, 5, RequestKind::kSimilarTo), NeighborResponse(9));
  cache.Insert(Key(2, 5, RequestKind::kSimilarToDtw), NeighborResponse(9));
  cache.Insert(Key(2, 5, RequestKind::kQueryByBurst), NeighborResponse(9));
  ASSERT_EQ(cache.size(), 8u);

  // Appending a point to series 1 changes series 1's own values (so its
  // periods/bursts entries go) and may reorder any top-k or burst ranking
  // (so every cross-series entry goes, whichever series it is keyed by).
  // Only the per-series entries of untouched series survive.
  cache.InvalidateForAppend(1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(Key(1, 5, RequestKind::kPeriodsOf)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(1, 5, RequestKind::kBurstsOf)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(1, 5, RequestKind::kSimilarTo)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(2, 5, RequestKind::kSimilarTo)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(2, 5, RequestKind::kSimilarToDtw)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(2, 5, RequestKind::kQueryByBurst)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(2, 5, RequestKind::kPeriodsOf)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(2, 5, RequestKind::kBurstsOf)).has_value());
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Insert(Key(1), NeighborResponse(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Key(1)).has_value());
}

TEST(ResultCacheTest, ConcurrentMixedOperationsStayConsistent) {
  ResultCache cache(64);
  std::atomic<uint64_t> lookups{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &lookups, t] {
      for (int i = 0; i < 500; ++i) {
        const uint64_t id = static_cast<uint64_t>((t * 31 + i) % 100);
        if (i % 3 == 0) {
          cache.Insert(Key(id), NeighborResponse(static_cast<ts::SeriesId>(id)));
        } else if (i % 7 == 0) {
          cache.Invalidate();
        } else {
          lookups.fetch_add(1);
          auto hit = cache.Lookup(Key(id));
          // Any hit must carry the value inserted under this key.
          if (hit.has_value()) {
            ASSERT_EQ(hit->neighbors.size(), 1u);
            EXPECT_EQ(hit->neighbors[0].id, id);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 64u);
  EXPECT_EQ(cache.hits() + cache.misses(), lookups.load());
}

}  // namespace
}  // namespace s2::service
