# Empty dependencies file for s2_dtw.
# This may be replaced when dependencies are built.
