#ifndef S2_PERIOD_PERIOD_DETECTOR_H_
#define S2_PERIOD_PERIOD_DETECTOR_H_

#include <vector>

#include "common/result.h"

namespace s2::period {

/// A significant periodicity found in a sequence.
struct PeriodHit {
  double period = 0.0;   ///< In samples (days for query logs): N / bin.
  double frequency = 0;  ///< Cycles per sample: bin / N.
  double power = 0.0;    ///< Periodogram value at the bin.
  size_t bin = 0;        ///< Periodogram bin index.
};

/// Automatic detection of important periods (paper Section 5).
///
/// The null model for "no periodicity" is i.i.d. Gaussian samples, whose
/// periodogram values follow an exponential distribution. A periodogram bin
/// is declared significant when its power exceeds the exponential tail
/// threshold
///     `T_p = -mu * ln(p)`
/// where `mu` is the mean periodogram value (the exponential's mean) and `p`
/// the accepted false-alarm probability (paper example: p = 1e-4 for 99.99%
/// confidence). Bins are evaluated on the *standardized* sequence so DC
/// carries no power.
class PeriodDetector {
 public:
  struct Options {
    /// False-alarm probability; lower = stricter threshold.
    double false_alarm_probability = 1e-4;
    /// Cap on the number of reported periods (0 = unlimited). The paper's
    /// S2 tool surfaces the best-k periods.
    size_t max_periods = 0;
    /// Ignore periods longer than this fraction of the sequence (a bin
    /// k = 1 or 2 "period" is usually a trend artifact, not a periodicity).
    /// 0.5 means only periods up to N/2 are reported.
    double max_period_fraction = 0.5;
  };

  PeriodDetector() = default;
  explicit PeriodDetector(Options options) : options_(options) {}

  /// Detects significant periods in `x` (raw counts; standardization is
  /// applied internally). Hits are returned in descending power order.
  Result<std::vector<PeriodHit>> Detect(const std::vector<double>& x) const;

  /// The power threshold `T_p` for a given periodogram (excluding DC).
  /// Exposed for plots/benches that display the threshold line (Fig. 13).
  double Threshold(const std::vector<double>& periodogram) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace s2::period

#endif  // S2_PERIOD_PERIOD_DETECTOR_H_
