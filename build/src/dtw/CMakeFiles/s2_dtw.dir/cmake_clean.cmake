file(REMOVE_RECURSE
  "CMakeFiles/s2_dtw.dir/dtw.cc.o"
  "CMakeFiles/s2_dtw.dir/dtw.cc.o.d"
  "CMakeFiles/s2_dtw.dir/dtw_search.cc.o"
  "CMakeFiles/s2_dtw.dir/dtw_search.cc.o.d"
  "libs2_dtw.a"
  "libs2_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
