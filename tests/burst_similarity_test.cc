#include "burst/burst_similarity.h"

#include <gtest/gtest.h>

namespace s2::burst {
namespace {

BurstRegion R(int32_t start, int32_t end, double avg) { return {start, end, avg}; }

TEST(BurstSimilarityTest, OverlapCases) {
  // Fig. 17: fully overlapping, partially overlapping, disjoint.
  EXPECT_EQ(Overlap(R(10, 20, 1), R(10, 20, 1)), 11);  // Identical.
  EXPECT_EQ(Overlap(R(10, 20, 1), R(12, 18, 1)), 7);   // Contained.
  EXPECT_EQ(Overlap(R(10, 20, 1), R(15, 30, 1)), 6);   // Partial.
  EXPECT_EQ(Overlap(R(10, 20, 1), R(20, 25, 1)), 1);   // Touching endpoint.
  EXPECT_EQ(Overlap(R(10, 20, 1), R(21, 30, 1)), 0);   // Adjacent, disjoint.
  EXPECT_EQ(Overlap(R(10, 20, 1), R(40, 50, 1)), 0);   // Far apart.
}

TEST(BurstSimilarityTest, OverlapIsSymmetric) {
  const BurstRegion a = R(5, 15, 1);
  const BurstRegion b = R(10, 30, 2);
  EXPECT_EQ(Overlap(a, b), Overlap(b, a));
}

TEST(BurstSimilarityTest, IntersectRangeAndIdentity) {
  const BurstRegion a = R(10, 19, 1.0);  // Length 10.
  EXPECT_DOUBLE_EQ(Intersect(a, a), 1.0);
  const BurstRegion b = R(15, 24, 1.0);  // Length 10, overlap 5.
  EXPECT_DOUBLE_EQ(Intersect(a, b), 0.5);
  EXPECT_DOUBLE_EQ(Intersect(a, R(30, 40, 1.0)), 0.0);
}

TEST(BurstSimilarityTest, IntersectAsymmetricLengths) {
  const BurstRegion big = R(0, 99, 1.0);    // Length 100.
  const BurstRegion small = R(0, 9, 1.0);   // Length 10, fully inside.
  // 0.5 * (10/100 + 10/10) = 0.55.
  EXPECT_DOUBLE_EQ(Intersect(big, small), 0.55);
  EXPECT_DOUBLE_EQ(Intersect(small, big), 0.55);
}

TEST(BurstSimilarityTest, ValueSimilarityBasics) {
  EXPECT_DOUBLE_EQ(ValueSimilarity(R(0, 1, 2.0), R(0, 1, 2.0)), 1.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity(R(0, 1, 3.0), R(0, 1, 1.0)), 1.0 / 3.0);
  // Absolute difference: order must not matter (the paper's formula without
  // abs would diverge here).
  EXPECT_DOUBLE_EQ(ValueSimilarity(R(0, 1, 1.0), R(0, 1, 3.0)),
                   ValueSimilarity(R(0, 1, 3.0), R(0, 1, 1.0)));
  EXPECT_LE(ValueSimilarity(R(0, 1, -5.0), R(0, 1, 5.0)), 1.0);
  EXPECT_GT(ValueSimilarity(R(0, 1, -5.0), R(0, 1, 5.0)), 0.0);
}

TEST(BurstSimilarityTest, BSimIdenticalSetsScoreHighest) {
  const std::vector<BurstRegion> x = {R(10, 20, 2.0), R(100, 120, 1.5)};
  const double self = BSim(x, x);
  EXPECT_DOUBLE_EQ(self, 2.0);  // Each burst contributes intersect=1 * sim=1.
  const std::vector<BurstRegion> shifted = {R(12, 22, 2.0), R(105, 125, 1.5)};
  EXPECT_LT(BSim(x, shifted), self);
  EXPECT_GT(BSim(x, shifted), 0.0);
}

TEST(BurstSimilarityTest, BSimSymmetric) {
  const std::vector<BurstRegion> x = {R(10, 20, 2.0), R(50, 60, 1.0)};
  const std::vector<BurstRegion> y = {R(15, 30, 1.8)};
  EXPECT_DOUBLE_EQ(BSim(x, y), BSim(y, x));
}

TEST(BurstSimilarityTest, BSimDisjointIsZero) {
  const std::vector<BurstRegion> x = {R(10, 20, 2.0)};
  const std::vector<BurstRegion> y = {R(30, 40, 2.0)};
  EXPECT_DOUBLE_EQ(BSim(x, y), 0.0);
  EXPECT_DOUBLE_EQ(BSim(x, {}), 0.0);
  EXPECT_DOUBLE_EQ(BSim({}, {}), 0.0);
}

TEST(BurstSimilarityTest, BSimPrefersAlignedOverMisaligned) {
  const std::vector<BurstRegion> query = {R(100, 130, 2.0)};
  const std::vector<BurstRegion> aligned = {R(102, 128, 1.9)};
  const std::vector<BurstRegion> misaligned = {R(125, 160, 1.9)};
  EXPECT_GT(BSim(query, aligned), BSim(query, misaligned));
}

TEST(BurstSimilarityTest, BSimPrefersSimilarHeights) {
  const std::vector<BurstRegion> query = {R(100, 130, 2.0)};
  const std::vector<BurstRegion> same_height = {R(100, 130, 2.0)};
  const std::vector<BurstRegion> taller = {R(100, 130, 6.0)};
  EXPECT_GT(BSim(query, same_height), BSim(query, taller));
}

}  // namespace
}  // namespace s2::burst
