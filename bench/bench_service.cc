// Serving-layer benchmark: aggregate throughput and latency percentiles of
// the s2::service stack (thread pool + scheduler + result cache) over a
// synthetic hot-key workload, at 1/2/4/8 worker threads, with and without
// the result cache.
//
//   ./build/bench/bench_service [--series 4096] [--days 512] [--requests 1000]
//                               [--k 10] [--hot 64] [--io-delay-ms 20]
//                               [--io-requests 240]
//
// Two sections:
//   1. RAM-resident: every request is pure CPU (VP-tree search + verify).
//      Thread scaling here is bounded by the machine's hardware threads.
//   2. Emulated disk-resident deployment: each engine call additionally
//      blocks for --io-delay-ms, modeling the paper's DBMS configuration
//      where verification fetches sequences "from the disk" (a 2004-era kNN
//      query performs tens of random reads). Worker threads overlap that
//      blocked time, which is precisely what a serving layer buys on top of
//      the index — throughput scales with threads even on few cores.
//
// The workload is hot-key skewed: 80% of requests hammer a small hot set
// (cacheable), the rest draws uniformly from the whole corpus — mirroring
// real query-log traffic where a few head queries dominate.

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/s2_engine.h"
#include "querylog/corpus_generator.h"
#include "service/result_cache.h"
#include "service/scheduler.h"

using namespace s2;

namespace {

struct RunResult {
  double qps = 0.0;
  uint64_t p50 = 0, p95 = 0, p99 = 0;
  uint64_t cache_hits = 0;
  uint64_t engine_calls = 0;
};

// Pre-generated request stream: ids drawn from a hot set with probability
// `hot_fraction`, uniform otherwise.
std::vector<ts::SeriesId> MakeWorkload(size_t requests, size_t corpus_size,
                                       size_t hot_keys, double hot_fraction,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<ts::SeriesId> ids;
  ids.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    const double limit = hot_fraction > 0 && rng.Bernoulli(hot_fraction)
                             ? static_cast<double>(hot_keys)
                             : static_cast<double>(corpus_size);
    ids.push_back(static_cast<ts::SeriesId>(rng.Uniform(0.0, limit)));
  }
  return ids;
}

// One serving configuration over a shared read-only engine (the engine's
// const read paths are reentrant — see the contract in s2_engine.h — so all
// configurations reuse one index build).
RunResult RunOnce(const core::S2Engine& engine,
                  const std::vector<ts::SeriesId>& ids, size_t threads,
                  size_t cache_capacity, size_t k, size_t io_delay_ms) {
  service::MetricsRegistry metrics;
  std::optional<service::ResultCache> cache;
  if (cache_capacity > 0) cache.emplace(cache_capacity, &metrics);
  service::Counter* engine_calls = metrics.counter("bench_engine_calls");

  service::Scheduler::Options options;
  options.threads = threads;
  options.queue_capacity = ids.size() + 1;  // Size the window to the run.
  service::Scheduler scheduler(
      options,
      [&](const service::QueryRequest& request) {
        service::CacheKey key;
        key.kind = request.kind;
        key.id = request.id;
        key.k = request.k;
        if (cache) {
          if (auto hit = cache->Lookup(key)) return *hit;
        }
        engine_calls->Increment();
        service::QueryResponse response;
        auto neighbors = engine.SimilarTo(request.id, request.k);
        if (neighbors.ok()) {
          response.neighbors = std::move(neighbors).value();
        } else {
          response.status = neighbors.status();
        }
        if (io_delay_ms > 0) {
          // Emulated DBMS/disk round trip of the verification phase.
          std::this_thread::sleep_for(std::chrono::milliseconds(io_delay_ms));
        }
        if (cache && response.status.ok()) cache->Insert(key, response);
        return response;
      },
      &metrics);

  std::vector<service::RequestTicket> tickets;
  tickets.reserve(ids.size());
  bench::Timer timer;
  for (ts::SeriesId id : ids) {
    service::QueryRequest request;
    request.kind = service::RequestKind::kSimilarTo;
    request.id = id;
    request.k = k;
    auto ticket = scheduler.Submit(request);
    if (ticket.ok()) tickets.push_back(std::move(*ticket));
  }
  for (auto& ticket : tickets) ticket.Get();
  RunResult result;
  result.qps = static_cast<double>(tickets.size()) / timer.Seconds();
  const auto* hist = metrics.histogram("server_latency");
  result.p50 = hist->Percentile(50);
  result.p95 = hist->Percentile(95);
  result.p99 = hist->Percentile(99);
  result.cache_hits = cache ? cache->hits() : 0;
  result.engine_calls = engine_calls->value();
  scheduler.Shutdown();
  return result;
}

void PrintRow(size_t threads, size_t cache_capacity, const RunResult& r) {
  std::printf("  %-8zu %-8s %10.0f %10llu %10llu %10llu %12llu %12llu\n",
              threads, cache_capacity == 0 ? "off" : "on", r.qps,
              static_cast<unsigned long long>(r.p50),
              static_cast<unsigned long long>(r.p95),
              static_cast<unsigned long long>(r.p99),
              static_cast<unsigned long long>(r.cache_hits),
              static_cast<unsigned long long>(r.engine_calls));
}

bench::Json JsonRow(size_t threads, size_t cache_capacity, const RunResult& r) {
  return bench::Json::Object()
      .Add("threads", static_cast<uint64_t>(threads))
      .Add("cache", cache_capacity == 0 ? "off" : "on")
      .Add("qps", r.qps)
      .Add("p50_us", r.p50)
      .Add("p95_us", r.p95)
      .Add("p99_us", r.p99)
      .Add("cache_hits", r.cache_hits)
      .Add("engine_calls", r.engine_calls);
}

core::S2Engine BuildEngine(size_t num_series, size_t n_days) {
  qlog::CorpusSpec spec;
  spec.num_series = num_series;
  spec.n_days = n_days;
  spec.seed = 404;
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    std::exit(1);
  }
  core::S2Engine::Options options;
  options.index.budget_c = 16;
  auto engine = core::S2Engine::Build(std::move(corpus).ValueOrDie(), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(engine).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_series = bench::ArgSize(argc, argv, "--series", 4096);
  const size_t n_days = bench::ArgSize(argc, argv, "--days", 512);
  const size_t requests = bench::ArgSize(argc, argv, "--requests", 1000);
  const size_t k = bench::ArgSize(argc, argv, "--k", 10);
  const size_t hot_keys = bench::ArgSize(argc, argv, "--hot", 64);
  const size_t io_delay_ms = bench::ArgSize(argc, argv, "--io-delay-ms", 20);
  const size_t io_requests = bench::ArgSize(argc, argv, "--io-requests", 240);
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_service.json");
  const size_t threads_list[] = {1, 2, 4, 8};

  const core::S2Engine engine = BuildEngine(num_series, n_days);

  bench::PrintHeader(
      "Serving layer: throughput & latency vs threads and cache\n(corpus " +
      std::to_string(num_series) + " series x " + std::to_string(n_days) +
      " days, " + std::to_string(requests) +
      " SimilarTo requests, 80% traffic on " + std::to_string(hot_keys) +
      " hot keys, " +
      std::to_string(std::thread::hardware_concurrency()) +
      " hardware thread(s))");

  const std::vector<ts::SeriesId> workload =
      MakeWorkload(requests, num_series, hot_keys, 0.8, 99);

  std::printf("\n-- Section 1: RAM-resident (pure CPU per request) --\n");
  std::printf("  %-8s %-8s %10s %10s %10s %10s %12s %12s\n", "threads",
              "cache", "qps", "p50(us)", "p95(us)", "p99(us)", "cache hits",
              "engine calls");
  double cpu_qps_1 = 0.0, cpu_qps_4 = 0.0;
  bench::Json ram_rows = bench::Json::Array();
  for (size_t cache_capacity : {size_t{0}, size_t{1024}}) {
    for (size_t threads : threads_list) {
      RunResult r =
          RunOnce(engine, workload, threads, cache_capacity, k, /*delay=*/0);
      PrintRow(threads, cache_capacity, r);
      ram_rows.Push(JsonRow(threads, cache_capacity, r));
      if (cache_capacity == 0 && threads == 1) cpu_qps_1 = r.qps;
      if (cache_capacity == 0 && threads == 4) cpu_qps_4 = r.qps;
    }
  }

  std::printf(
      "\n-- Section 2: emulated disk-resident deployment "
      "(+%zu ms blocking I/O per engine call, %zu requests) --\n",
      io_delay_ms, io_requests);
  std::printf("  %-8s %-8s %10s %10s %10s %10s %12s %12s\n", "threads",
              "cache", "qps", "p50(us)", "p95(us)", "p99(us)", "cache hits",
              "engine calls");
  const std::vector<ts::SeriesId> io_workload =
      MakeWorkload(io_requests, num_series, hot_keys, 0.8, 77);
  double io_qps_1 = 0.0, io_qps_4 = 0.0;
  bench::Json disk_rows = bench::Json::Array();
  for (size_t threads : threads_list) {
    RunResult r = RunOnce(engine, io_workload, threads, /*cache=*/0, k,
                          io_delay_ms);
    PrintRow(threads, 0, r);
    disk_rows.Push(JsonRow(threads, 0, r));
    if (threads == 1) io_qps_1 = r.qps;
    if (threads == 4) io_qps_4 = r.qps;
  }
  // With the cache on, hot keys skip both the search CPU and the emulated
  // I/O stall — the two effects compound.
  for (size_t threads : threads_list) {
    RunResult r = RunOnce(engine, io_workload, threads, /*cache=*/1024, k,
                          io_delay_ms);
    PrintRow(threads, 1024, r);
    disk_rows.Push(JsonRow(threads, 1024, r));
  }

  std::printf("\n  speedup 4 threads vs 1, RAM-resident (cache off):  %.2fx\n",
              cpu_qps_4 / cpu_qps_1);
  std::printf("  speedup 4 threads vs 1, disk-resident (cache off): %.2fx\n",
              io_qps_4 / io_qps_1);
  std::printf(
      "  (RAM-resident scaling is bounded by hardware threads; the\n"
      "   disk-resident section shows the scheduler overlapping blocked\n"
      "   time. cache-on rows: engine calls < requests proves hot-key hits\n"
      "   skip the VP-tree and sequence store entirely)\n");

  bench::WriteJsonFile(
      json_path,
      bench::Json::Object()
          .Add("bench", "bench_service")
          .Add("spec",
               bench::Json::Object()
                   .Add("series", static_cast<uint64_t>(num_series))
                   .Add("days", static_cast<uint64_t>(n_days))
                   .Add("requests", static_cast<uint64_t>(requests))
                   .Add("k", static_cast<uint64_t>(k))
                   .Add("hot_keys", static_cast<uint64_t>(hot_keys))
                   .Add("io_delay_ms", static_cast<uint64_t>(io_delay_ms))
                   .Add("io_requests", static_cast<uint64_t>(io_requests))
                   .Add("hardware_threads",
                        static_cast<uint64_t>(
                            std::thread::hardware_concurrency())))
          .Add("ram_resident", std::move(ram_rows))
          .Add("disk_resident", std::move(disk_rows))
          .Add("speedup_4v1_ram", cpu_qps_4 / cpu_qps_1)
          .Add("speedup_4v1_disk", io_qps_4 / io_qps_1));
  return 0;
}
