#ifndef S2_INDEX_LINEAR_SCAN_H_
#define S2_INDEX_LINEAR_SCAN_H_

#include <vector>

#include "common/result.h"
#include "index/knn.h"
#include "storage/sequence_store.h"

namespace s2::index {

/// The paper's baseline: sequential scan over the uncompressed sequences
/// with early termination of each Euclidean computation once the running
/// sum exceeds the best-so-far match (Section 7.4).
class LinearScan {
 public:
  /// `source` must outlive this object.
  explicit LinearScan(storage::SequenceSource* source) : source_(source) {}

  /// Exact k nearest neighbors of `query` (ascending distance).
  Result<std::vector<Neighbor>> Search(const std::vector<double>& query,
                                       size_t k) const;

 private:
  storage::SequenceSource* source_;
};

}  // namespace s2::index

#endif  // S2_INDEX_LINEAR_SCAN_H_
