# Empty dependencies file for bench_ablation_coeffs.
# This may be replaced when dependencies are built.
