#ifndef S2_STREAM_DELTA_INDEX_H_
#define S2_STREAM_DELTA_INDEX_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/result.h"
#include "index/vp_tree.h"

namespace s2::stream {

/// The small, mutable tier of the LSM-style two-tier index: series touched
/// by streaming appends live here (in a VP-tree grown purely by `Insert`)
/// until a background compaction folds them back into the large, mostly
/// immutable main tree.
///
/// Membership is tracked explicitly: at any moment every indexed series is
/// in *exactly one* tier, so a query searches both trees under one shared
/// pruning radius and merges by (distance, id) — the same exactness
/// argument as the cross-shard scatter-gather merge, with the two tiers
/// playing the role of disjoint partitions.
class DeltaIndex {
 public:
  /// An empty delta tier compatible with the main tree's options (same
  /// representation, basis, bound method and budget, so both tiers' bounds
  /// live in the same metric).
  static Result<DeltaIndex> Create(const index::VpTreeIndex::Options& options,
                                   uint32_t series_length);

  /// Inserts `id` under `row`; `source->Get(id)` must already return `row`.
  Status Insert(ts::SeriesId id, const std::vector<double>& row,
                storage::SequenceSource* source);

  /// Removes `id` (an already-delta-resident series being appended to
  /// again). `pinned_row` — the row the series was indexed under — is
  /// forwarded to the tree so a tombstoned vantage keeps routing correctly
  /// after the store's row changes.
  Status Remove(ts::SeriesId id, const std::vector<double>* pinned_row);

  bool Contains(ts::SeriesId id) const { return members_.count(id) != 0; }

  /// Live members, ascending — the compaction order.
  std::vector<ts::SeriesId> MemberIds() const {
    return std::vector<ts::SeriesId>(members_.begin(), members_.end());
  }

  /// Drops every member and resets the tree (post-compaction).
  Status Clear();

  /// Live series in this tier (tombstones excluded).
  size_t size() const { return members_.size(); }

  const index::VpTreeIndex& tree() const { return tree_; }

  Result<std::vector<index::Neighbor>> Search(
      const std::vector<double>& query, size_t k,
      storage::SequenceSource* source, index::VpTreeIndex::SearchStats* stats,
      index::SharedRadius* shared = nullptr) const {
    return tree_.Search(query, k, source, stats, shared);
  }

  /// Tree self-check plus the membership census (tree size == member set).
  Status Validate(storage::SequenceSource* source = nullptr) const;

 private:
  DeltaIndex(index::VpTreeIndex tree, index::VpTreeIndex::Options options,
             uint32_t series_length)
      : tree_(std::move(tree)),
        options_(options),
        series_length_(series_length) {}

  index::VpTreeIndex tree_;
  index::VpTreeIndex::Options options_;
  uint32_t series_length_;
  std::set<ts::SeriesId> members_;
};

}  // namespace s2::stream

#endif  // S2_STREAM_DELTA_INDEX_H_
