#include "io/wal_segment.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "io/durable.h"

namespace s2::io::walseg {

namespace {

constexpr char kSegSuffix[] = ".seg";
constexpr size_t kSegSuffixLen = sizeof(kSegSuffix) - 1;
constexpr size_t kSeqDigits = 6;

/// One discovered segment file plus its decoded header. For the base file
/// (seq 0, legacy layout) the "header" is synthesized: base_records 0,
/// chain_seed = hash of the format magic.
struct Candidate {
  std::string path;
  uint64_t size = 0;
  SegmentHeader header;
  bool is_base = false;
};

size_t HeaderBytes(const Candidate& cand) {
  return cand.is_base ? kMagicBytes : kSegmentHeaderBytes;
}

/// Discovers and validates every live segment of the log, oldest first.
/// Handles the crashed-rotation artifact (an invalid *last* segment is
/// dropped, its size reported via `artifact_bytes`); every other defect is
/// Corruption. An empty result means the log does not exist yet.
Result<std::vector<Candidate>> Discover(Env* env, const std::string& base,
                                        const char* base_magic,
                                        const char* seg_magic,
                                        uint64_t* artifact_bytes) {
  *artifact_bytes = 0;
  std::vector<Candidate> cands;

  const bool base_exists = env->FileExists(base);
  if (base_exists) {
    Candidate cand;
    cand.path = base;
    cand.is_base = true;
    cand.header.chain_seed = durable::Fnv1a64(base_magic, kMagicBytes);
    S2_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                        env->Open(base, OpenMode::kRead));
    S2_ASSIGN_OR_RETURN(cand.size, file->Size());
    if (cand.size > 0) {
      if (cand.size < kMagicBytes) {
        return Status::Corruption("walseg: truncated header in " + base);
      }
      char magic[kMagicBytes];
      S2_RETURN_NOT_OK(ReadExactAt(file.get(), magic, sizeof(magic), 0));
      if (std::memcmp(magic, base_magic, kMagicBytes) != 0) {
        return Status::Corruption("walseg: bad magic in " + base);
      }
      cands.push_back(std::move(cand));
    }
    // A zero-byte base with no rotated segments is "log absent" (fresh
    // create); with rotated segments it is a hole in the history, caught
    // by the seq-continuity check below because seq 0 is missing.
  }

  std::vector<std::string> seg_paths;
  {
    auto listed = env->ListPrefix(base + kSegSuffix);
    if (listed.ok()) {
      seg_paths = std::move(listed).ValueOrDie();
    } else if (listed.status().code() != StatusCode::kInvalidArgument) {
      return listed.status();
    }
    // InvalidArgument: the env cannot list directories. Rotation-free logs
    // (the legacy single-file layout) still work; a rotated log behind such
    // an env would surface as a seq gap at the first reopen.
  }

  std::vector<std::pair<uint64_t, std::string>> ordered;
  for (const std::string& path : seg_paths) {
    uint64_t seq = 0;
    if (ParseSegmentSeq(base, path, &seq)) ordered.emplace_back(seq, path);
  }
  std::sort(ordered.begin(), ordered.end());

  for (size_t i = 0; i < ordered.size(); ++i) {
    const bool last = i + 1 == ordered.size();
    Candidate cand;
    cand.path = ordered[i].second;
    S2_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                        env->Open(cand.path, OpenMode::kRead));
    S2_ASSIGN_OR_RETURN(cand.size, file->Size());
    Status header_status;
    if (cand.size < kSegmentHeaderBytes) {
      header_status =
          Status::Corruption("walseg: truncated segment header in " + cand.path);
    } else {
      char buf[kSegmentHeaderBytes];
      S2_RETURN_NOT_OK(ReadExactAt(file.get(), buf, sizeof(buf), 0));
      header_status = DecodeSegmentHeader(seg_magic, buf, sizeof(buf),
                                          &cand.header);
      if (header_status.ok() && cand.header.seq != ordered[i].first) {
        header_status = Status::Corruption(
            "walseg: segment header seq mismatch in " + cand.path);
      }
    }
    if (!header_status.ok()) {
      if (last && !cands.empty()) {
        // The artifact of a rotation that crashed before its header became
        // durable. The previous segment is the live tail; a rotation retry
        // overwrites this same path.
        *artifact_bytes += cand.size;
        break;
      }
      return header_status;
    }
    cands.push_back(std::move(cand));
  }

  for (size_t i = 1; i < cands.size(); ++i) {
    if (cands[i].header.seq != cands[i - 1].header.seq + 1) {
      return Status::Corruption("walseg: segment sequence gap before " +
                                cands[i].path);
    }
    if (cands[i].header.base_records < cands[i - 1].header.base_records) {
      return Status::Corruption("walseg: non-monotone segment base in " +
                                cands[i].path);
    }
  }
  return cands;
}

}  // namespace

std::string SegmentPath(const std::string& base, uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(seq));
  return base + kSegSuffix + buf;
}

bool ParseSegmentSeq(const std::string& base, const std::string& path,
                     uint64_t* seq) {
  if (path.size() < base.size() + kSegSuffixLen + 1) return false;
  if (path.compare(0, base.size(), base) != 0) return false;
  if (path.compare(base.size(), kSegSuffixLen, kSegSuffix) != 0) return false;
  uint64_t value = 0;
  for (size_t i = base.size() + kSegSuffixLen; i < path.size(); ++i) {
    const char c = path[i];
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + (c - '0');
  }
  *seq = value;
  return true;
}

void EncodeSegmentHeader(const char* seg_magic, const SegmentHeader& header,
                         char* out) {
  std::memcpy(out, seg_magic, kMagicBytes);
  std::memcpy(out + 8, &header.seq, sizeof(header.seq));
  std::memcpy(out + 16, &header.base_records, sizeof(header.base_records));
  std::memcpy(out + 24, &header.chain_seed, sizeof(header.chain_seed));
  const uint64_t sum = durable::Fnv1a64(out, 32);
  std::memcpy(out + 32, &sum, sizeof(sum));
}

Status DecodeSegmentHeader(const char* seg_magic, const char* in, size_t n,
                           SegmentHeader* out) {
  if (n < kSegmentHeaderBytes) {
    return Status::Corruption("walseg: short segment header");
  }
  if (std::memcmp(in, seg_magic, kMagicBytes) != 0) {
    return Status::Corruption("walseg: bad segment magic");
  }
  uint64_t stored = 0;
  std::memcpy(&stored, in + 32, sizeof(stored));
  if (stored != durable::Fnv1a64(in, 32)) {
    return Status::Corruption("walseg: segment header checksum mismatch");
  }
  std::memcpy(&out->seq, in + 8, sizeof(out->seq));
  std::memcpy(&out->base_records, in + 16, sizeof(out->base_records));
  std::memcpy(&out->chain_seed, in + 24, sizeof(out->chain_seed));
  return Status::OK();
}

Result<OpenResult> OpenLog(Env* env, const std::string& base,
                           const char* base_magic, const char* seg_magic,
                           uint64_t replay_from, const RecordScanner& scan) {
  if (env == nullptr) env = Env::Default();
  OpenResult out;
  S2_ASSIGN_OR_RETURN(std::vector<Candidate> cands,
                      Discover(env, base, base_magic, seg_magic,
                               &out.dropped_bytes));

  if (cands.empty()) {
    if (replay_from > 0) {
      return Status::Corruption(
          "walseg: log at " + base + " is missing but replay starts at " +
          std::to_string(replay_from));
    }
    // Fresh log: write and sync the base header before acknowledging
    // anything (the legacy single-file creation path, op for op).
    S2_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                        env->Open(base, OpenMode::kReadWrite));
    S2_RETURN_NOT_OK(WriteExactAt(file.get(), base_magic, kMagicBytes, 0));
    S2_RETURN_NOT_OK(file->Sync());
    out.tail_file = std::move(file);
    out.tail_path = base;
    out.tail_offset = kMagicBytes;
    out.chain = durable::Fnv1a64(base_magic, kMagicBytes);
    out.segments.push_back(SegmentInfo{base, 0, 0});
    return out;
  }

  if (cands.front().header.base_records > replay_from) {
    return Status::Corruption(
        "walseg: surviving history of " + base + " starts at record " +
        std::to_string(cands.front().header.base_records) +
        ", above replay point " + std::to_string(replay_from));
  }

  // Start at the last segment whose base does not exceed the replay point;
  // everything before it is skipped without reading a byte of its body.
  size_t start = 0;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].header.base_records <= replay_from) start = i;
    out.segments.push_back(
        SegmentInfo{cands[i].path, cands[i].header.seq,
                    cands[i].header.base_records});
  }

  out.chain = cands[start].header.chain_seed;
  out.record_count = cands[start].header.base_records;

  for (size_t i = start; i < cands.size(); ++i) {
    const Candidate& cand = cands[i];
    const bool is_tail = i + 1 == cands.size();
    // Segment-boundary continuity: the sealed predecessor must hand over
    // exactly the state this header claims. (For i == start the state was
    // seeded *from* the header, so the check is vacuous.)
    if (cand.header.base_records != out.record_count ||
        (i != start && cand.header.chain_seed != out.chain)) {
      return Status::Corruption(
          "walseg: chain break at segment boundary " + cand.path +
          " (acknowledged records lost)");
    }
    S2_ASSIGN_OR_RETURN(
        std::unique_ptr<File> file,
        env->Open(cand.path,
                  is_tail ? OpenMode::kReadWrite : OpenMode::kRead));
    const size_t header_bytes = HeaderBytes(cand);
    const uint64_t body = cand.size - header_bytes;
    std::vector<char> bytes(static_cast<size_t>(body));
    if (body > 0) {
      S2_RETURN_NOT_OK(
          ReadExactAt(file.get(), bytes.data(), bytes.size(), header_bytes));
    }
    size_t off = 0;
    while (off < bytes.size()) {
      size_t consumed = 0;
      uint64_t next_chain = 0;
      S2_RETURN_NOT_OK(scan(bytes.data() + off, bytes.size() - off, out.chain,
                            out.record_count >= replay_from, &consumed,
                            &next_chain));
      if (consumed == 0) break;  // Torn or stale tail; scanning stops here.
      if (out.record_count >= replay_from) ++out.applied;
      ++out.record_count;
      out.chain = next_chain;
      off += consumed;
    }
    // Bytes past the intact prefix: in the tail segment, the torn tail the
    // next append overwrites; in a sealed segment, stale garbage from a
    // pre-rotation tear (benign — the successor header's continuity check
    // above is what distinguishes this from lost data).
    out.dropped_bytes += body - off;
    if (is_tail) {
      out.tail_file = std::move(file);
      out.tail_path = cand.path;
      out.tail_offset = header_bytes + off;
      out.tail_seq = cand.header.seq;
      out.tail_base_records = cand.header.base_records;
    }
  }

  if (out.record_count < replay_from) {
    return Status::Corruption(
        "walseg: log at " + base + " ends at record " +
        std::to_string(out.record_count) + ", before replay point " +
        std::to_string(replay_from));
  }
  return out;
}

Result<std::unique_ptr<File>> CreateSegment(Env* env, const std::string& base,
                                            const char* seg_magic,
                                            const SegmentHeader& header) {
  if (env == nullptr) env = Env::Default();
  const std::string path = SegmentPath(base, header.seq);
  char buf[kSegmentHeaderBytes];
  EncodeSegmentHeader(seg_magic, header, buf);
  S2_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      env->Open(path, OpenMode::kTruncate));
  S2_RETURN_NOT_OK(WriteExactAt(file.get(), buf, sizeof(buf), 0));
  S2_RETURN_NOT_OK(file->Sync());
  S2_RETURN_NOT_OK(env->SyncDir(path));
  return file;
}

Result<size_t> RemoveSegmentsBelow(Env* env,
                                   std::vector<SegmentInfo>* segments,
                                   uint64_t keep_from) {
  if (env == nullptr) env = Env::Default();
  size_t removed = 0;
  // A segment is removable iff its *successor* starts at or below the safe
  // point — then every record it holds is also below it. The tail has no
  // successor and always survives.
  while (segments->size() >= 2 && (*segments)[1].base_records <= keep_from) {
    S2_RETURN_NOT_OK(env->Remove(segments->front().path));
    segments->erase(segments->begin());
    ++removed;
  }
  if (removed > 0) {
    // Unlink durability is best-effort: a resurrected segment below the
    // replay point is skipped (never read) at the next open, then removed
    // again by the next checkpoint's GC.
    (void)env->SyncDir(segments->front().path);
  }
  return removed;
}

Result<std::vector<SegmentInfo>> ListSegments(Env* env,
                                              const std::string& base,
                                              const char* base_magic,
                                              const char* seg_magic) {
  if (env == nullptr) env = Env::Default();
  uint64_t artifact_bytes = 0;
  S2_ASSIGN_OR_RETURN(std::vector<Candidate> cands,
                      Discover(env, base, base_magic, seg_magic,
                               &artifact_bytes));
  std::vector<SegmentInfo> out;
  out.reserve(cands.size());
  for (const Candidate& cand : cands) {
    out.push_back(SegmentInfo{cand.path, cand.header.seq,
                              cand.header.base_records});
  }
  return out;
}

}  // namespace s2::io::walseg
