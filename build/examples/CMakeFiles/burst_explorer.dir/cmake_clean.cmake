file(REMOVE_RECURSE
  "CMakeFiles/burst_explorer.dir/burst_explorer.cpp.o"
  "CMakeFiles/burst_explorer.dir/burst_explorer.cpp.o.d"
  "burst_explorer"
  "burst_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
