#include "io/env.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace s2::io {

namespace {

std::string ErrnoText(const char* op, const std::string& path, int err) {
  std::string out(op);
  out += " failed for ";
  out += path;
  out += ": ";
  out += std::strerror(err);
  out += " (errno ";
  out += std::to_string(err);
  out += ")";
  return out;
}

/// Maps an errno from a failed syscall to the repository's error taxonomy:
/// interruptions and would-blocks are transient (retryable), everything
/// else is a hard I/O error. The errno text always survives into the
/// message — "short read" with no cause is exactly the anti-pattern this
/// layer removes.
Status ErrnoStatus(const char* op, const std::string& path, int err) {
  if (err == EINTR || err == EAGAIN || err == EWOULDBLOCK) {
    return Status::TransientIo(ErrnoText(op, path, err));
  }
  return Status::IoError(ErrnoText(op, path, err));
}

class PosixFile : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> Read(void* buf, size_t n) override {
    const ssize_t got = ::read(fd_, buf, n);
    if (got < 0) return ErrnoStatus("read", path_, errno);
    return static_cast<size_t>(got);
  }

  Result<size_t> Write(const void* buf, size_t n) override {
    const ssize_t put = ::write(fd_, buf, n);
    if (put < 0) return ErrnoStatus("write", path_, errno);
    return static_cast<size_t>(put);
  }

  Result<size_t> ReadAt(void* buf, size_t n, uint64_t offset) override {
    const ssize_t got = ::pread(fd_, buf, n, static_cast<off_t>(offset));
    if (got < 0) return ErrnoStatus("pread", path_, errno);
    return static_cast<size_t>(got);
  }

  Result<size_t> WriteAt(const void* buf, size_t n, uint64_t offset) override {
    const ssize_t put = ::pwrite(fd_, buf, n, static_cast<off_t>(offset));
    if (put < 0) return ErrnoStatus("pwrite", path_, errno);
    return static_cast<size_t>(put);
  }

  Status Seek(uint64_t offset) override {
    if (::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
      return ErrnoStatus("lseek", path_, errno);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    struct stat st = {};
    if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat", path_, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<File>> Open(const std::string& path,
                                     OpenMode mode) override {
    int flags = 0;
    switch (mode) {
      case OpenMode::kRead:
        flags = O_RDONLY;
        break;
      case OpenMode::kReadWrite:
        flags = O_RDWR | O_CREAT;
        break;
      case OpenMode::kTruncate:
        flags = O_RDWR | O_CREAT | O_TRUNC;
        break;
    }
    int fd = -1;
    do {
      fd = ::open(path.c_str(), flags, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      // A missing file is NotFound only when the caller asked to read it;
      // for write modes a missing parent directory (also ENOENT) is a real
      // I/O failure.
      if (errno == ENOENT && mode == OpenMode::kRead) {
        return Status::NotFound("open failed for " + path + ": no such file");
      }
      return ErrnoStatus("open", path, errno);
    }
    return std::unique_ptr<File>(new PosixFile(fd, path));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", path, errno);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<std::vector<std::string>> ListPrefix(
      const std::string& prefix) override {
    std::string dir;
    std::string base;
    const size_t slash = prefix.find_last_of('/');
    if (slash == std::string::npos) {
      dir = ".";
      base = prefix;
    } else {
      dir = slash == 0 ? "/" : prefix.substr(0, slash);
      base = prefix.substr(slash + 1);
    }
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) {
      if (errno == ENOENT) return std::vector<std::string>();
      return ErrnoStatus("opendir", dir, errno);
    }
    std::vector<std::string> out;
    errno = 0;
    while (struct dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      if (name.compare(0, base.size(), base) != 0) continue;
      out.push_back(slash == std::string::npos
                        ? name
                        : prefix.substr(0, slash + 1) + name);
      errno = 0;
    }
    const int err = errno;
    ::closedir(handle);
    if (err != 0) return ErrnoStatus("readdir", dir, err);
    std::sort(out.begin(), out.end());
    return out;
  }

  Status SyncDir(const std::string& path) override {
    std::string dir;
    const size_t slash = path.find_last_of('/');
    if (slash == std::string::npos) {
      dir = ".";
    } else if (slash == 0) {
      dir = "/";
    } else {
      dir = path.substr(0, slash);
    }
    int fd = -1;
    do {
      fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return ErrnoStatus("open directory", dir, errno);
    int rc = -1;
    do {
      rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    // Some filesystems refuse fsync on a directory fd (EINVAL); there rename
    // durability is the filesystem's promise and this step degrades to a
    // no-op rather than an error.
    const Status status = (rc == 0 || errno == EINVAL)
                              ? Status::OK()
                              : ErrnoStatus("fsync directory", dir, errno);
    ::close(fd);
    return status;
  }
};

}  // namespace

Status Env::CopyFile(const std::string& from, const std::string& to) {
  S2_ASSIGN_OR_RETURN(std::unique_ptr<File> src, Open(from, OpenMode::kRead));
  S2_ASSIGN_OR_RETURN(std::unique_ptr<File> dst, Open(to, OpenMode::kTruncate));
  std::vector<char> buf(1 << 16);
  uint64_t offset = 0;
  for (;;) {
    S2_ASSIGN_OR_RETURN(size_t got, src->ReadAt(buf.data(), buf.size(), offset));
    if (got == 0) break;
    S2_RETURN_NOT_OK(WriteExactAt(dst.get(), buf.data(), got, offset));
    offset += got;
  }
  return dst->Sync();
}

Status Env::SyncDir(const std::string&) { return Status::OK(); }

Status Env::DropUnsynced() {
  return Status::InvalidArgument(
      "Env::DropUnsynced: crash simulation is only supported by simulation "
      "environments (MemEnv)");
}

Result<std::vector<std::string>> Env::ListPrefix(const std::string&) {
  return Status::InvalidArgument(
      "Env::ListPrefix: directory listing is not supported by this "
      "environment");
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Status ReadExact(File* file, void* buf, size_t n) {
  char* dst = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    S2_ASSIGN_OR_RETURN(size_t got, file->Read(dst + done, n - done));
    if (got == 0) {
      return Status::Corruption("truncated read: wanted " + std::to_string(n) +
                                " bytes, file ended after " +
                                std::to_string(done));
    }
    done += got;
  }
  return Status::OK();
}

Status ReadExactAt(File* file, void* buf, size_t n, uint64_t offset) {
  char* dst = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    S2_ASSIGN_OR_RETURN(size_t got,
                        file->ReadAt(dst + done, n - done, offset + done));
    if (got == 0) {
      return Status::Corruption("truncated read at offset " +
                                std::to_string(offset) + ": wanted " +
                                std::to_string(n) + " bytes, got " +
                                std::to_string(done));
    }
    done += got;
  }
  return Status::OK();
}

Status WriteExact(File* file, const void* buf, size_t n) {
  const char* src = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    S2_ASSIGN_OR_RETURN(size_t put, file->Write(src + done, n - done));
    if (put == 0) return Status::IoError("write made no progress");
    done += put;
  }
  return Status::OK();
}

Status WriteExactAt(File* file, const void* buf, size_t n, uint64_t offset) {
  const char* src = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    S2_ASSIGN_OR_RETURN(size_t put,
                        file->WriteAt(src + done, n - done, offset + done));
    if (put == 0) return Status::IoError("write made no progress");
    done += put;
  }
  return Status::OK();
}

Status ReadFileToBuffer(Env* env, const std::string& path,
                        std::vector<char>* out) {
  S2_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      env->Open(path, OpenMode::kRead));
  S2_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  out->resize(static_cast<size_t>(size));
  if (size == 0) return Status::OK();
  return ReadExactAt(file.get(), out->data(), out->size(), 0);
}

Result<size_t> BufferFile::Read(void* buf, size_t n) {
  S2_ASSIGN_OR_RETURN(size_t got, ReadAt(buf, n, pos_));
  pos_ += got;
  return got;
}

Result<size_t> BufferFile::Write(const void* buf, size_t n) {
  S2_ASSIGN_OR_RETURN(size_t put, WriteAt(buf, n, pos_));
  pos_ += put;
  return put;
}

Result<size_t> BufferFile::ReadAt(void* buf, size_t n, uint64_t offset) {
  if (offset >= bytes_.size()) return static_cast<size_t>(0);
  const size_t got = std::min(n, bytes_.size() - static_cast<size_t>(offset));
  std::memcpy(buf, bytes_.data() + offset, got);
  return got;
}

Result<size_t> BufferFile::WriteAt(const void* buf, size_t n, uint64_t offset) {
  const size_t end = static_cast<size_t>(offset) + n;
  if (end > bytes_.size()) bytes_.resize(end);
  std::memcpy(bytes_.data() + offset, buf, n);
  return n;
}

Status BufferFile::Seek(uint64_t offset) {
  pos_ = static_cast<size_t>(offset);
  return Status::OK();
}

}  // namespace s2::io
