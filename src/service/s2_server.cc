#include "service/s2_server.h"

#include <mutex>
#include <utility>

#include "diag/check.h"

namespace s2::service {

namespace {

CacheKey KeyFor(const QueryRequest& request) {
  CacheKey key;
  key.kind = request.kind;
  key.id = request.id;
  key.k = request.k;
  key.horizon = (request.kind == RequestKind::kBurstsOf ||
                 request.kind == RequestKind::kQueryByBurst)
                    ? static_cast<int>(request.horizon)
                    : 0;
  return key;
}

/// Copies a Result's payload into the response or records its error.
template <typename T>
void Fill(Result<T> result, T* payload, QueryResponse* response) {
  if (result.ok()) {
    *payload = std::move(result).value();
  } else {
    response->status = result.status();
  }
}

}  // namespace

std::unique_ptr<S2Server> S2Server::Create(core::S2Engine engine,
                                           const Options& options) {
  return std::unique_ptr<S2Server>(new S2Server(std::move(engine), options));
}

S2Server::S2Server(core::S2Engine engine, const Options& options)
    : engine_(std::move(engine)),
      cache_(options.cache_capacity, &metrics_),
      engine_calls_(metrics_.counter("server_engine_calls")) {
  // The scheduler is built last: its workers may call Execute (via the
  // handler) as soon as requests arrive, so everything above must be live.
  scheduler_ = std::make_unique<Scheduler>(
      options.scheduler,
      [this](const QueryRequest& request) { return Execute(request); },
      &metrics_);
}

QueryResponse S2Server::Execute(const QueryRequest& request) {
  QueryResponse response;
  const CacheKey key = KeyFor(request);
  if (std::optional<QueryResponse> hit = cache_.Lookup(key)) {
    return *std::move(hit);
  }

  {
    std::shared_lock<std::shared_mutex> lock(engine_mu_);
    engine_calls_->Increment();
    switch (request.kind) {
      case RequestKind::kSimilarTo:
        Fill(engine_.SimilarTo(request.id, request.k), &response.neighbors,
             &response);
        break;
      case RequestKind::kSimilarToDtw:
        Fill(engine_.SimilarToDtw(request.id, request.k), &response.neighbors,
             &response);
        break;
      case RequestKind::kPeriodsOf:
        Fill(engine_.FindPeriods(request.id), &response.periods, &response);
        break;
      case RequestKind::kBurstsOf:
        Fill(engine_.BurstsOf(request.id, request.horizon), &response.bursts,
             &response);
        break;
      case RequestKind::kQueryByBurst:
        Fill(engine_.QueryByBurst(request.id, request.k, request.horizon),
             &response.burst_matches, &response);
        break;
    }
    // Insert before releasing the shared lock: inserting after release could
    // race an AddSeries invalidation and re-publish a stale answer.
    if (response.status.ok()) cache_.Insert(key, response);
  }

  return response;
}

Result<ts::SeriesId> S2Server::AddSeries(ts::TimeSeries series) {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  S2_ASSIGN_OR_RETURN(ts::SeriesId id, engine_.AddSeries(std::move(series)));
  // Checked builds re-validate the whole engine while no reader can observe
  // it (we still hold the writer lock).
  S2_DCHECK_OK(engine_.ValidateInvariants());
  // Invalidate while still holding the writer lock: a reader admitted after
  // us must not see a stale answer re-inserted for the old corpus.
  cache_.Invalidate();
  return id;
}

}  // namespace s2::service
