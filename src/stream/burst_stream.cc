#include "stream/burst_stream.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace s2::stream {

namespace {

// Trailing moving average of the last `w` entries ending at deque index `i`,
// prefix-clipped exactly like dsp::TrailingMovingAverage.
double ClippedMeanAt(const std::deque<double>& x, size_t i, size_t w) {
  const size_t first = i + 1 >= w ? i + 1 - w : 0;
  double sum = 0.0;
  for (size_t j = first; j <= i; ++j) sum += x[j];
  return sum / static_cast<double>(i - first + 1);
}

}  // namespace

Result<BurstStream> BurstStream::Create(burst::BurstDetector::Options options,
                                        const std::vector<double>& window) {
  if (options.window == 0) {
    return Status::InvalidArgument("BurstStream: window must be > 0");
  }
  if (window.size() < options.window) {
    return Status::InvalidArgument("BurstStream: sequence shorter than window");
  }
  std::deque<double> x(window.begin(), window.end());
  std::deque<double> ma;
  double sum = 0.0;
  double sumsq = 0.0;
  double ma_sum = 0.0;
  double ma_sumsq = 0.0;
  double prefix = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum += x[i];
    sumsq += x[i] * x[i];
    prefix += x[i];
    if (i >= options.window) prefix -= x[i - options.window];
    const size_t count = std::min(i + 1, options.window);
    const double m = prefix / static_cast<double>(count);
    ma.push_back(m);
    ma_sum += m;
    ma_sumsq += m * m;
  }
  return BurstStream(options, std::move(x), std::move(ma), sum, sumsq, ma_sum,
                     ma_sumsq);
}

void BurstStream::Slide(double x_new) {
  const size_t w = options_.window;
  const double x_old = x_.front();
  x_.pop_front();
  x_.push_back(x_new);
  sum_ += x_new - x_old;
  sumsq_ += x_new * x_new - x_old * x_old;

  // The trailing MA shifts stably for full windows: new ma[j] for j >= w-1
  // averages the same w samples old ma[j+1] did. Only the w-1 prefix-clipped
  // entries change their sample set (they lose the dropped front sample from
  // their denominator) and the new tail is fresh — O(w) recompute total.
  const double ma_old = ma_.front();
  ma_.pop_front();
  ma_sum_ -= ma_old;
  ma_sumsq_ -= ma_old * ma_old;
  for (size_t j = 0; j + 1 < w && j < ma_.size(); ++j) {
    const double prev = ma_[j];
    const double next = ClippedMeanAt(x_, j, w);
    ma_[j] = next;
    ma_sum_ += next - prev;
    ma_sumsq_ += next * next - prev * prev;
  }
  const double tail = ClippedMeanAt(x_, x_.size() - 1, w);
  ma_.push_back(tail);
  ma_sum_ += tail;
  ma_sumsq_ += tail * tail;
}

double BurstStream::raw_cutoff() const {
  const double n = static_cast<double>(ma_.size());
  const double mean = ma_sum_ / n;
  const double var = std::max(0.0, ma_sumsq_ / n - mean * mean);
  return mean + options_.cutoff_stds * std::sqrt(var);
}

std::vector<burst::BurstRegion> BurstStream::Regions() const {
  const double n = static_cast<double>(x_.size());
  const double mu = sum_ / n;
  const double sigma =
      std::sqrt(std::max(0.0, sumsq_ / n - mu * mu));
  // A constant window standardizes to all-zeros: every MA is zero, the
  // cutoff is zero, and `0 > 0` admits no burst days — match the batch
  // detector by returning nothing.
  if (options_.standardize && sigma == 0.0) return {};

  const double cutoff = raw_cutoff();
  std::vector<burst::BurstRegion> regions;
  int32_t run_start = -1;
  double run_sum = 0.0;  // Raw-space sum over the run.
  auto flush = [&](int32_t end_inclusive) {
    if (run_start < 0) return;
    burst::BurstRegion region;
    region.start = run_start;
    region.end = end_inclusive;
    const double raw_avg = run_sum / static_cast<double>(region.length());
    region.avg_value =
        options_.standardize ? (raw_avg - mu) / sigma : raw_avg;
    if (region.avg_value >= options_.min_avg_value &&
        region.length() >= options_.min_length) {
      regions.push_back(region);
    }
    run_start = -1;
    run_sum = 0.0;
  };
  for (size_t i = 0; i < ma_.size(); ++i) {
    if (ma_[i] > cutoff) {
      if (run_start < 0) run_start = static_cast<int32_t>(i);
      run_sum += x_[i];
    } else {
      flush(static_cast<int32_t>(i) - 1);
    }
  }
  flush(static_cast<int32_t>(ma_.size()) - 1);
  return regions;
}

}  // namespace s2::stream
