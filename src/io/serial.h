#ifndef S2_IO_SERIAL_H_
#define S2_IO_SERIAL_H_

#include <type_traits>

#include "io/env.h"

namespace s2::io {

/// Cursor-based scalar primitives shared by the binary format writers
/// (corpus, feature records, VP-tree image). Native endianness, matching
/// every existing on-disk format in the repository.

template <typename T>
Status WriteScalar(File* file, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return WriteExact(file, &value, sizeof(T));
}

template <typename T>
Status ReadScalar(File* file, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return ReadExact(file, value, sizeof(T));
}

}  // namespace s2::io

#endif  // S2_IO_SERIAL_H_
