#include "querylog/corpus_generator.h"

#include <string>

#include <gtest/gtest.h>

namespace s2::qlog {
namespace {

TEST(CorpusGeneratorTest, RejectsEmptySpecs) {
  CorpusSpec spec;
  spec.num_series = 0;
  EXPECT_FALSE(GenerateCorpus(spec).ok());
  spec.num_series = 4;
  spec.n_days = 0;
  EXPECT_FALSE(GenerateCorpus(spec).ok());
}

TEST(CorpusGeneratorTest, ProducesRequestedCorpus) {
  CorpusSpec spec;
  spec.num_series = 50;
  spec.n_days = 128;
  auto corpus = GenerateCorpus(spec);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->size(), 50u);
  for (const auto& series : corpus->series()) {
    EXPECT_EQ(series.size(), 128u);
    EXPECT_FALSE(series.name.empty());
  }
}

TEST(CorpusGeneratorTest, DeterministicForSameSeed) {
  CorpusSpec spec;
  spec.num_series = 20;
  spec.n_days = 64;
  spec.seed = 99;
  auto a = GenerateCorpus(spec);
  auto b = GenerateCorpus(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->at(static_cast<ts::SeriesId>(i)).values,
              b->at(static_cast<ts::SeriesId>(i)).values);
    EXPECT_EQ(a->at(static_cast<ts::SeriesId>(i)).name,
              b->at(static_cast<ts::SeriesId>(i)).name);
  }
}

TEST(CorpusGeneratorTest, DifferentSeedsDiffer) {
  CorpusSpec spec;
  spec.num_series = 5;
  spec.n_days = 64;
  spec.seed = 1;
  auto a = GenerateCorpus(spec);
  spec.seed = 2;
  auto b = GenerateCorpus(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->at(0).values, b->at(0).values);
}

TEST(CorpusGeneratorTest, NamesEncodeFamilies) {
  CorpusSpec spec;
  spec.num_series = 200;
  spec.n_days = 32;
  auto corpus = GenerateCorpus(spec);
  ASSERT_TRUE(corpus.ok());
  size_t weekly = 0;
  size_t aperiodic = 0;
  size_t seasonal = 0;
  for (const auto& series : corpus->series()) {
    if (series.name.starts_with("weekly_")) ++weekly;
    if (series.name.starts_with("aperiodic_")) ++aperiodic;
    if (series.name.starts_with("seasonal_")) ++seasonal;
  }
  // Default mix: 35% weekly, 30% aperiodic, 15% seasonal, with sampling slack.
  EXPECT_GT(weekly, 40u);
  EXPECT_GT(aperiodic, 30u);
  EXPECT_GT(seasonal, 10u);
}

TEST(CorpusGeneratorTest, MixWeightsAreHonored) {
  CorpusSpec spec;
  spec.num_series = 100;
  spec.n_days = 32;
  spec.mix = {1.0, 0.0, 0.0, 0.0, 0.0};  // Weekly only.
  auto corpus = GenerateCorpus(spec);
  ASSERT_TRUE(corpus.ok());
  for (const auto& series : corpus->series()) {
    EXPECT_TRUE(series.name.starts_with("weekly_")) << series.name;
  }
}

TEST(CorpusGeneratorTest, HeldOutQueriesDifferFromCorpus) {
  CorpusSpec spec;
  spec.num_series = 30;
  spec.n_days = 64;
  auto corpus = GenerateCorpus(spec);
  auto queries = GenerateQueries(spec, 10);
  ASSERT_TRUE(corpus.ok());
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->size(), 10u);
  for (const auto& query : *queries) {
    EXPECT_TRUE(query.name.starts_with("query_"));
    for (const auto& member : corpus->series()) {
      EXPECT_NE(query.values, member.values);
    }
  }
}

}  // namespace
}  // namespace s2::qlog
