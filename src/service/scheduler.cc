#include "service/scheduler.h"

#include <string>
#include <utility>

namespace s2::service {

std::string_view RequestKindToString(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSimilarTo:
      return "similar_to";
    case RequestKind::kSimilarToDtw:
      return "similar_to_dtw";
    case RequestKind::kPeriodsOf:
      return "periods_of";
    case RequestKind::kBurstsOf:
      return "bursts_of";
    case RequestKind::kQueryByBurst:
      return "query_by_burst";
    case RequestKind::kApproxKnn:
      return "approx_knn";
  }
  return "unknown";
}

Scheduler::Scheduler(const Options& options,
                     std::function<QueryResponse(const QueryRequest&)> handler,
                     MetricsRegistry* metrics)
    : options_(options),
      handler_(std::move(handler)),
      pool_(options.threads) {
  if (metrics != nullptr) {
    accepted_ = metrics->counter("server_accepted");
    rejected_ = metrics->counter("server_rejected");
    completed_ = metrics->counter("server_completed");
    expired_ = metrics->counter("server_expired");
    cancelled_count_ = metrics->counter("server_cancelled");
    for (RequestKind kind :
         {RequestKind::kSimilarTo, RequestKind::kSimilarToDtw,
          RequestKind::kPeriodsOf, RequestKind::kBurstsOf,
          RequestKind::kQueryByBurst, RequestKind::kApproxKnn}) {
      kind_counters_[static_cast<size_t>(kind)] = metrics->counter(
          "server_requests_" + std::string(RequestKindToString(kind)));
    }
    latency_ = metrics->histogram("server_latency");
  }
}

Scheduler::~Scheduler() { Shutdown(); }

Result<RequestTicket> Scheduler::Submit(const QueryRequest& request) {
  if (shutdown_.load(std::memory_order_acquire)) {
    if (rejected_ != nullptr) rejected_->Increment();
    return Status::Unavailable("Scheduler: shut down");
  }
  // Optimistically claim a slot in the admission window.
  if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.queue_capacity) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (rejected_ != nullptr) rejected_->Increment();
    return Status::Unavailable("Scheduler: queue full (" +
                               std::to_string(options_.queue_capacity) +
                               " in flight)");
  }
  if (accepted_ != nullptr) accepted_->Increment();
  if (kind_counters_[static_cast<size_t>(request.kind)] != nullptr) {
    kind_counters_[static_cast<size_t>(request.kind)]->Increment();
  }

  auto promise = std::make_shared<std::promise<QueryResponse>>();
  auto cancelled = std::make_shared<std::atomic<bool>>(false);
  RequestTicket ticket;
  ticket.future_ = promise->get_future();
  ticket.cancelled_ = cancelled;

  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline = request.timeout.count() > 0
                                         ? Clock::now() + request.timeout
                                         : Clock::time_point::max();

  const bool enqueued = pool_.Submit([this, request, promise, cancelled,
                                      deadline] {
    QueryResponse response;
    if (cancelled->load(std::memory_order_relaxed)) {
      response.status = Status::Cancelled("Scheduler: cancelled before execution");
      if (cancelled_count_ != nullptr) cancelled_count_->Increment();
    } else if (Clock::now() > deadline) {
      response.status =
          Status::DeadlineExceeded("Scheduler: deadline passed in queue");
      if (expired_ != nullptr) expired_->Increment();
    } else {
      const Clock::time_point start = Clock::now();
      response = handler_(request);
      response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - start);
      if (latency_ != nullptr) {
        latency_->Record(static_cast<uint64_t>(response.latency.count()));
      }
    }
    if (completed_ != nullptr) completed_->Increment();
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    promise->set_value(std::move(response));
  });

  if (!enqueued) {
    // Pool refused (shutdown raced the admission check): fail the request
    // ourselves so the future is never left broken.
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (rejected_ != nullptr) rejected_->Increment();
    QueryResponse response;
    response.status = Status::Unavailable("Scheduler: shut down");
    promise->set_value(std::move(response));
  }
  return ticket;
}

void Scheduler::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  pool_.Shutdown();
}

}  // namespace s2::service
