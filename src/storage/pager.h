#ifndef S2_STORAGE_PAGER_H_
#define S2_STORAGE_PAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "io/env.h"

namespace s2::storage {

/// Fixed database page size.
inline constexpr size_t kPageSize = 4096;

/// Identifier of a page within a paged file; page 0 is conventionally the
/// client's metadata page.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// A paged file with an LRU buffer pool — the storage substrate under the
/// disk-resident B+-tree (disk_bptree.h).
///
/// * `Fetch` pins a page frame in memory; `Unpin` releases it and marks it
///   dirty when modified. Pinned pages are never evicted.
/// * On a pool miss the least-recently-used unpinned frame is evicted,
///   writing it back first if dirty.
/// * `FlushAll` persists every dirty frame; the destructor flushes too.
/// * Read/write/hit counters expose the I/O behaviour to tests and benches.
///
/// All I/O routes through an `io::Env` (default: the POSIX environment), so
/// tests can substitute an in-memory filesystem or a fault injector.
///
/// Durability comes in two modes:
/// * Non-durable (default): pages are updated in place at `path`. A crash
///   between Unpin and FlushAll can lose recent modifications, and a crash
///   mid-write-back can tear the file. Matches the original behaviour; fine
///   for scratch/rebuildable data.
/// * Durable (`Options::durable`): the pager works on a private shadow copy
///   (`<path>.shadow`); readers of `path` never see in-place updates.
///   `Publish` (called by `Sync`) flushes and fsyncs the shadow, copies it
///   to `<path>.tmp`, fsyncs that, and atomically renames it over `path` —
///   so `path` always holds a complete generation: the last published state
///   survives a crash at any point. Stale shadows from a crashed run are
///   discarded at Open (the shadow is re-seeded from `path`).
///
/// Not thread-safe.
class Pager {
 public:
  struct Options {
    /// Filesystem to operate in; null means `io::Env::Default()`.
    io::Env* env = nullptr;
    /// Shadow-copy crash-safe publishing (see class comment).
    bool durable = false;
  };

  /// Opens (or creates) the paged file with a pool of `pool_pages` frames.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                             size_t pool_pages,
                                             Options options);
  static Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                             size_t pool_pages) {
    return Open(path, pool_pages, Options());
  }

  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Appends a zeroed page to the file and returns its id. The new page is
  /// fetched (pinned) into the pool; callers must Unpin it.
  Result<PageId> Allocate(char** data);

  /// Pins the page and returns its frame data (kPageSize bytes).
  Result<char*> Fetch(PageId id);

  /// Releases a pin. `dirty` marks the frame for write-back.
  Status Unpin(PageId id, bool dirty);

  /// Writes every dirty frame to the working file (shadow in durable mode).
  Status FlushAll();

  /// Makes the current state durable: FlushAll + fsync, and in durable mode
  /// publishes the shadow over `path` via copy + atomic rename.
  Status Sync();

  /// Number of pages in the file.
  size_t num_pages() const { return num_pages_; }

  /// Structural self-check: buffer-pool bookkeeping (frame table, LRU list,
  /// pin counts, page-id ranges) and the file-size/page-count agreement.
  /// Reports the exact violation as `Status::Corruption`.
  Status Validate() const;

  uint64_t disk_reads() const { return disk_reads_; }
  uint64_t disk_writes() const { return disk_writes_; }
  uint64_t cache_hits() const { return cache_hits_; }
  void ResetCounters() {
    disk_reads_ = 0;
    disk_writes_ = 0;
    cache_hits_ = 0;
  }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<char[]> data;
  };

  Pager(std::string path, io::Env* env, bool durable,
        std::unique_ptr<io::File> file, size_t pool_pages, size_t num_pages);

  Result<size_t> FrameFor(PageId id);  // Loads into the pool if needed.
  Status WriteBack(Frame* frame);
  void TouchLru(size_t frame_idx);
  std::string WorkingPath() const;

  std::string path_;
  io::Env* env_;
  bool durable_;
  std::unique_ptr<io::File> file_;
  size_t num_pages_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> frame_of_page_;
  // LRU order of frame indices; back = most recently used.
  std::list<size_t> lru_;
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;

  uint64_t disk_reads_ = 0;
  uint64_t disk_writes_ = 0;
  uint64_t cache_hits_ = 0;
};

}  // namespace s2::storage

#endif  // S2_STORAGE_PAGER_H_
