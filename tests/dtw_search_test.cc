#include "dtw/dtw_search.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "dsp/stats.h"
#include "dtw/dtw.h"
#include "querylog/corpus_generator.h"
#include "storage/sequence_store.h"

namespace s2::dtw {
namespace {

struct Fixture {
  std::vector<std::vector<double>> rows;
  std::vector<std::vector<double>> queries;
  std::unique_ptr<storage::InMemorySequenceSource> source;
};

Fixture MakeFixture(size_t num_series, size_t n_days, size_t num_queries,
                    uint64_t seed) {
  qlog::CorpusSpec spec;
  spec.num_series = num_series;
  spec.n_days = n_days;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  Fixture fx;
  for (const auto& series : corpus->series()) {
    fx.rows.push_back(dsp::Standardize(series.values));
  }
  auto queries = qlog::GenerateQueries(spec, num_queries);
  EXPECT_TRUE(queries.ok());
  for (const auto& q : *queries) fx.queries.push_back(dsp::Standardize(q.values));
  auto source = storage::InMemorySequenceSource::Create(fx.rows);
  EXPECT_TRUE(source.ok());
  fx.source = std::move(source).ValueOrDie();
  return fx;
}

std::vector<std::pair<double, ts::SeriesId>> BruteForceDtw(
    const Fixture& fx, const std::vector<double>& query, size_t window, size_t k) {
  std::vector<std::pair<double, ts::SeriesId>> dists;
  for (ts::SeriesId id = 0; id < fx.rows.size(); ++id) {
    dists.emplace_back(*DtwDistance(query, fx.rows[id], window), id);
  }
  std::sort(dists.begin(), dists.end());
  dists.resize(std::min(k, dists.size()));
  return dists;
}

TEST(DtwKnnSearchTest, ValidatesArguments) {
  Fixture fx = MakeFixture(20, 64, 1, 1);
  DtwKnnSearch::Options options;
  auto search = DtwKnnSearch::BuildFeatures(fx.rows, options);
  ASSERT_TRUE(search.ok());
  EXPECT_FALSE(search->Search(fx.queries[0], 0, fx.source.get(), nullptr).ok());
  EXPECT_FALSE(search->Search(fx.queries[0], 1, nullptr, nullptr).ok());
  EXPECT_FALSE(
      search->Search(std::vector<double>(5, 0.0), 1, fx.source.get(), nullptr).ok());
}

TEST(DtwKnnSearchTest, RejectsBoundlessFeatureKinds) {
  Fixture fx = MakeFixture(5, 64, 0, 2);
  std::vector<repr::CompressedSpectrum> features;
  for (const auto& row : fx.rows) {
    auto spectrum = repr::HalfSpectrum::FromSeries(row);
    ASSERT_TRUE(spectrum.ok());
    auto compressed = repr::CompressedSpectrum::Compress(
        *spectrum, repr::ReprKind::kFirstKMiddle, 8);  // GEMINI: no UB.
    ASSERT_TRUE(compressed.ok());
    features.push_back(std::move(compressed).ValueOrDie());
  }
  EXPECT_FALSE(DtwKnnSearch::Create(std::move(features), {}).ok());
}

class DtwExactnessTest : public ::testing::TestWithParam<size_t /*window*/> {};

TEST_P(DtwExactnessTest, MatchesBruteForce) {
  const size_t window = GetParam();
  Fixture fx = MakeFixture(120, 128, 6, 42);
  DtwKnnSearch::Options options;
  options.window = window;
  options.budget_c = 16;
  auto search = DtwKnnSearch::BuildFeatures(fx.rows, options);
  ASSERT_TRUE(search.ok());

  for (const auto& query : fx.queries) {
    for (size_t k : {1u, 5u}) {
      const auto expected = BruteForceDtw(fx, query, window, k);
      auto got = search->Search(query, k, fx.source.get(), nullptr);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR((*got)[i].distance, expected[i].first, 1e-9)
            << "w=" << window << " k=" << k << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, DtwExactnessTest, ::testing::Values(4u, 16u));

TEST(DtwKnnSearchTest, AblationsStayExact) {
  Fixture fx = MakeFixture(80, 128, 4, 7);
  for (bool use_ub : {true, false}) {
    for (bool use_lb : {true, false}) {
      DtwKnnSearch::Options options;
      options.window = 8;
      options.use_compressed_upper_bounds = use_ub;
      options.use_lb_keogh = use_lb;
      auto search = DtwKnnSearch::BuildFeatures(fx.rows, options);
      ASSERT_TRUE(search.ok());
      for (const auto& query : fx.queries) {
        const auto expected = BruteForceDtw(fx, query, 8, 3);
        auto got = search->Search(query, 3, fx.source.get(), nullptr);
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got->size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_NEAR((*got)[i].distance, expected[i].first, 1e-9)
              << "ub=" << use_ub << " lb=" << use_lb;
        }
      }
    }
  }
}

TEST(DtwKnnSearchTest, PruningActuallySkipsDpComputations) {
  Fixture fx = MakeFixture(300, 256, 5, 11);
  DtwKnnSearch::Options options;
  options.window = 16;
  auto search = DtwKnnSearch::BuildFeatures(fx.rows, options);
  ASSERT_TRUE(search.ok());
  size_t total_dtw = 0;
  for (const auto& query : fx.queries) {
    DtwKnnSearch::SearchStats stats;
    auto got = search->Search(query, 1, fx.source.get(), &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(stats.upper_bounds_computed, 300u);
    EXPECT_EQ(stats.lb_keogh_computed, stats.lb_keogh_skips + stats.dtw_computed);
    total_dtw += stats.dtw_computed;
  }
  // The cascade must skip the DP for a substantial fraction of candidates
  // (the exact rate depends on the workload; the ablation bench quantifies it).
  EXPECT_LT(total_dtw, 5u * 300u * 3 / 4);
}

TEST(DtwKnnSearchTest, SelfQueryFindsSelf) {
  Fixture fx = MakeFixture(50, 128, 0, 13);
  DtwKnnSearch::Options options;
  options.window = 8;
  auto search = DtwKnnSearch::BuildFeatures(fx.rows, options);
  ASSERT_TRUE(search.ok());
  for (ts::SeriesId id = 0; id < 50; id += 11) {
    auto got = search->Search(fx.rows[id], 1, fx.source.get(), nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_NEAR((*got)[0].distance, 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace s2::dtw
