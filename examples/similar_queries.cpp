// Semantic similarity through demand patterns (the paper's "recommendation"
// use case, Section 1): queries with similar request curves are often
// semantically related. This example builds a 10,000-series corpus with
// labelled families (weekly / monthly / seasonal / event / aperiodic) and
// measures how often a query's nearest neighbors come from its own family —
// a quantitative version of the paper's anecdotal examples.
//
//   ./build/examples/similar_queries [corpus_size] [k]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/s2_engine.h"
#include "dsp/stats.h"
#include "querylog/corpus_generator.h"

using namespace s2;

namespace {

std::string FamilyOf(const std::string& name) {
  const size_t underscore = name.find('_');
  return underscore == std::string::npos ? name : name.substr(0, underscore);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t corpus_size = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10000;
  const size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;

  qlog::CorpusSpec spec;
  spec.num_series = corpus_size;
  spec.n_days = 1024;
  spec.seed = 2024;
  std::printf("generating %zu series of %zu days ...\n", spec.num_series,
              spec.n_days);
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) return 1;

  core::S2Engine::Options options;
  options.index.budget_c = 16;
  std::printf("building engine (VP-tree over best-coefficient features) ...\n");
  auto engine = core::S2Engine::Build(std::move(*corpus), options);
  if (!engine.ok()) {
    std::printf("build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("index holds %zu objects in %zu KiB of compressed features\n",
              engine->index().size(), engine->index().CompressedBytes() / 1024);

  // For a sample of queries, check the family purity of the k-NN lists.
  std::map<std::string, std::pair<size_t, size_t>> by_family;  // hits, total
  const size_t sample = std::min<size_t>(200, engine->corpus().size());
  index::VpTreeIndex::SearchStats totals;
  for (ts::SeriesId id = 0; id < sample; ++id) {
    index::VpTreeIndex::SearchStats stats;
    auto neighbors = engine->SimilarTo(id, k, &stats);
    if (!neighbors.ok()) continue;
    totals.full_retrievals += stats.full_retrievals;
    totals.bound_computations += stats.bound_computations;
    const std::string family = FamilyOf(engine->corpus().at(id).name);
    auto& [hits, total] = by_family[family];
    for (const auto& n : *neighbors) {
      hits += FamilyOf(engine->corpus().at(n.id).name) == family ? 1 : 0;
      ++total;
    }
  }

  std::printf("\nfamily purity of %zu-NN lists (%zu sampled queries):\n", k, sample);
  for (const auto& [family, counts] : by_family) {
    std::printf("  %-12s %5.1f%%  (%zu/%zu neighbors from the same family)\n",
                family.c_str(),
                100.0 * static_cast<double>(counts.first) /
                    static_cast<double>(counts.second),
                counts.first, counts.second);
  }
  std::printf(
      "\nindex effort: %.1f full-sequence fetches per query (of %zu objects)\n",
      static_cast<double>(totals.full_retrievals) / static_cast<double>(sample),
      engine->corpus().size());

  // Show one concrete recommendation list.
  std::printf("\nexample: neighbors of '%s':\n",
              engine->corpus().at(0).name.c_str());
  auto neighbors = engine->SimilarTo(0, k);
  if (neighbors.ok()) {
    for (const auto& n : *neighbors) {
      std::printf("  %-22s distance %.2f\n",
                  engine->corpus().at(n.id).name.c_str(), n.distance);
    }
  }
  return 0;
}
