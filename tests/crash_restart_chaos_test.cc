// Process-level crash-restart chaos harness for checkpointed recovery.
//
// The sweep re-executes this very test binary as a child process running
// ChaosChildWorkload.ChildWorkload: a deterministic verb schedule
// (subscriptions, appends, durable acks, coordinated checkpoints) against
// a real on-disk server whose I/O runs through a `FaultInjectingEnv` with
// `crash_is_fatal` — at mutating operation K the child `_exit(42)`s
// mid-syscall-sequence, exactly like a SIGKILL at that point. The child
// appends one fsynced byte to an `acked` file after each verb that
// returned OK, so the parent knows the acknowledged prefix precisely.
//
// The parent sweeps K = 1, 2, 3, ... until the child finishes crash-free,
// so every write/sync/rename/unlink boundary in the whole stack — WAL
// record writes, segment rotation, snapshot commit, manifest rename,
// checkpoint GC — is a crash site. After each crash it revives the server
// in-process from the same directory and requires the recovered state to
// equal a WAL-less shadow fed exactly the acknowledged verb prefix (or
// prefix+1 when the crash struck between a verb's durable WAL record and
// its acknowledgement — the unavoidable at-least-once boundary), and that
// recovery replayed only the WAL tail past the checkpoint anchor.

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/env.h"
#include "io/fault_env.h"
#include "monitor/subscription.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"

namespace s2::service {
namespace {

constexpr size_t kNumSeries = 12;
constexpr size_t kDays = 32;
constexpr int kFirstCheckpointVerb = 14;
constexpr int kSecondCheckpointVerb = 26;
constexpr int kVerbs = 36;

ts::Corpus MakeCorpus() {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = 4242;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions() {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 4;
  return options;
}

S2Server::Options ChaosOptions(io::Env* env, const std::string& dir) {
  S2Server::Options options;
  options.scheduler.threads = 1;
  options.compaction_threshold = 0;
  options.wal_path = dir + "/wal";
  options.wal_env = env;
  options.checkpoint_enabled = true;
  options.checkpoint_gc = true;
  // Small segments so the schedule rotates several times and GC has
  // segments to unlink — both are crash sites the sweep must cover.
  options.wal_rotate_bytes = 256;
  return options;
}

/// Applies verb `verb` of the deterministic schedule. The shadow (`live ==
/// false`) skips checkpoints — they change no logical state.
Status ApplyVerb(S2Server* server, int verb, bool live) {
  monitor::Subscription sub;
  switch (verb) {
    case 0:
      sub.kind = monitor::SubscriptionKind::kBurstThreshold;
      sub.series = 0;
      sub.burst.window = 5;
      sub.burst.enter_ratio = 1.3;
      sub.burst.exit_ratio = 1.1;
      return server->Subscribe(sub).status();
    case 1:
      sub.kind = monitor::SubscriptionKind::kPeriodicityChange;
      sub.series = 1;
      return server->Subscribe(sub).status();
    case 2:
      sub.kind = monitor::SubscriptionKind::kSimilarityWatch;
      sub.series = 2;
      sub.similarity.radius = 1.5;
      sub.similarity.query = server->engine().corpus().at(2).values;
      return server->Subscribe(sub).status();
    case 13: {
      const auto info = server->monitor_info();
      if (info.next_seq == 0) return Status::OK();
      return server->AckAlerts(info.next_seq - 1);
    }
    case kFirstCheckpointVerb:
    case kSecondCheckpointVerb:
      return live ? server->Checkpoint() : Status::OK();
    case 25:
      sub.kind = monitor::SubscriptionKind::kBurstThreshold;
      sub.series = 3;
      sub.burst.window = 5;
      sub.burst.enter_ratio = 1.2;
      sub.burst.exit_ratio = 1.05;
      return server->Subscribe(sub).status();
    case 33: {
      // Retire the periodicity subscription (found by kind+series so the
      // schedule does not depend on absolute id assignment).
      for (const auto& entry : server->engine().monitor_registry().List()) {
        if (entry.sub.kind == monitor::SubscriptionKind::kPeriodicityChange &&
            entry.sub.series == 1) {
          return server->Unsubscribe(entry.sub.id);
        }
      }
      return Status::OK();
    }
    default: {
      // The burst-watched series runs hot until the first checkpoint and
      // cold afterwards; series 3 spikes late to engage the second watch.
      const auto id = static_cast<ts::SeriesId>(verb % 4);
      double value = 10.0 + 0.5 * verb;
      if (id == 0) value = verb < kFirstCheckpointVerb ? 5000.0 + verb : 1.0;
      if (id == 3 && verb > kSecondCheckpointVerb) value = 900.0;
      return server->AppendPoint(id, value);
    }
  }
}

/// Appends among the first `n` verbs of the schedule.
uint64_t CountAppends(uint64_t n) {
  uint64_t appends = 0;
  for (uint64_t verb = 0; verb < n; ++verb) {
    if (verb > 2 && verb != 13 && verb != kFirstCheckpointVerb &&
        verb != kSecondCheckpointVerb && verb != 25 && verb != 33) {
      ++appends;
    }
  }
  return appends;
}

/// A WAL-less server fed exactly the first `n` verbs.
std::unique_ptr<S2Server> BuildShadow(uint64_t n) {
  S2Server::Options options;
  options.scheduler.threads = 1;
  options.compaction_threshold = 0;
  auto server = S2Server::Build(MakeCorpus(), EngineOptions(), options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  std::unique_ptr<S2Server> shadow = std::move(server).ValueOrDie();
  for (uint64_t verb = 0; verb < n; ++verb) {
    const Status status =
        ApplyVerb(shadow.get(), static_cast<int>(verb), /*live=*/false);
    EXPECT_TRUE(status.ok()) << "shadow verb " << verb << ": "
                             << status.ToString();
  }
  return shadow;
}

/// Non-mutating bit-level equality: corpus windows, registry entries with
/// hysteresis state, and the alert queue image (polling would perturb the
/// candidates, so the queue is read through its snapshot).
bool StatesEqual(S2Server* a, S2Server* b) {
  for (ts::SeriesId id = 0; id < kNumSeries; ++id) {
    const ts::TimeSeries& x = a->engine().corpus().at(id);
    const ts::TimeSeries& y = b->engine().corpus().at(id);
    if (x.start_day != y.start_day || x.values != y.values) return false;
  }
  const auto xs = a->engine().monitor_registry().List();
  const auto ys = b->engine().monitor_registry().List();
  if (xs.size() != ys.size()) return false;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i].sub.id != ys[i].sub.id || xs[i].sub.kind != ys[i].sub.kind ||
        xs[i].sub.series != ys[i].sub.series ||
        xs[i].engaged != ys[i].engaged || xs[i].bin != ys[i].bin) {
      return false;
    }
  }
  const auto qa = a->alerts().Snapshot();
  const auto qb = b->alerts().Snapshot();
  if (qa.next_seq != qb.next_seq || qa.fired != qb.fired ||
      qa.dropped != qb.dropped || qa.acked != qb.acked ||
      qa.acked_upto != qb.acked_upto || qa.any_acked != qb.any_acked ||
      qa.queued.size() != qb.queued.size()) {
    return false;
  }
  for (size_t i = 0; i < qa.queued.size(); ++i) {
    if (qa.queued[i].seq != qb.queued[i].seq ||
        qa.queued[i].subscription != qb.queued[i].subscription ||
        qa.queued[i].kind != qb.queued[i].kind ||
        qa.queued[i].series != qb.queued[i].series ||
        qa.queued[i].day != qb.queued[i].day ||
        qa.queued[i].value != qb.queued[i].value) {
      return false;
    }
  }
  return true;
}

std::string AckedPath(const std::string& dir) { return dir + "/acked"; }

void AppendAckByte(const std::string& dir) {
  const int fd = ::open(AckedPath(dir).c_str(),
                        O_WRONLY | O_APPEND | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "k", 1), 1);
  ASSERT_EQ(::fsync(fd), 0);
  ::close(fd);
}

uint64_t AckedCount(const std::string& dir) {
  struct stat st;
  if (::stat(AckedPath(dir).c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

// The child workload: only meaningful when the parent sweep set the
// environment; under a plain ctest run it skips.
TEST(ChaosChildWorkload, ChildWorkload) {
  const char* dir_env = std::getenv("S2_CHAOS_DIR");
  const char* crash_env = std::getenv("S2_CHAOS_CRASH_AT");
  if (dir_env == nullptr || crash_env == nullptr) {
    GTEST_SKIP() << "chaos child: run via CrashRestartChaosTest";
  }
  const std::string dir = dir_env;
  io::FaultPlan plan;
  plan.crash_at_op = std::strtoull(crash_env, nullptr, 10);
  plan.crash_is_fatal = true;
  plan.count_metadata_ops = true;
  io::FaultInjectingEnv env(io::Env::Default(), plan);

  auto server =
      S2Server::Recover(MakeCorpus(), EngineOptions(), ChaosOptions(&env, dir));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  for (int verb = 0; verb < kVerbs; ++verb) {
    // A fatal injected crash never returns, so any error here is a real
    // bug in the workload, not an injected fault.
    const Status status = ApplyVerb(server->get(), verb, /*live=*/true);
    ASSERT_TRUE(status.ok()) << "verb " << verb << ": " << status.ToString();
    AppendAckByte(dir);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }
  (*server)->Shutdown();
}

TEST(CrashRestartChaosTest, RecoveryMatchesAckedPrefixAtEveryFaultSite) {
  namespace fs = std::filesystem;
  constexpr uint64_t kMaxOps = 4096;
  const std::string self = "/proc/self/exe";
  bool completed = false;
  for (uint64_t crash_at = 1; crash_at <= kMaxOps && !completed; ++crash_at) {
    SCOPED_TRACE("crash at mutating op " + std::to_string(crash_at));
    const fs::path dir =
        fs::temp_directory_path() /
        ("s2_chaos_" + std::to_string(::getpid()) + "_" +
         std::to_string(crash_at));
    fs::remove_all(dir);
    fs::create_directories(dir);

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::setenv("S2_CHAOS_DIR", dir.c_str(), 1);
      ::setenv("S2_CHAOS_CRASH_AT", std::to_string(crash_at).c_str(), 1);
      ::execl(self.c_str(), self.c_str(),
              "--gtest_filter=*ChildWorkload*", "--gtest_brief=1",
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child did not exit normally";
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == io::kCrashExitCode)
        << "child exit code " << code;
    completed = code == 0;
    const uint64_t acked = AckedCount(dir.string());
    if (completed) {
      ASSERT_EQ(acked, static_cast<uint64_t>(kVerbs));
    }

    // Revive in-process over whatever the crash left on disk.
    auto revived = S2Server::Recover(MakeCorpus(), EngineOptions(),
                                     ChaosOptions(nullptr, dir.string()));
    ASSERT_TRUE(revived.ok()) << revived.status().ToString();

    // The revived server must equal the shadow at the acknowledged prefix
    // — or prefix+1 when the crash hit between a verb's durable WAL
    // record and its acknowledgement byte.
    uint64_t matched_prefix = kVerbs + 1;
    for (uint64_t prefix : {acked, acked + 1}) {
      if (prefix > static_cast<uint64_t>(kVerbs)) break;
      std::unique_ptr<S2Server> shadow = BuildShadow(prefix);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
      if (StatesEqual(shadow.get(), revived->get())) {
        matched_prefix = prefix;
        break;
      }
      if (completed) break;  // Crash-free runs must match exactly.
    }
    ASSERT_LE(matched_prefix, static_cast<uint64_t>(kVerbs))
        << "revived state matches neither the acked prefix (" << acked
        << ") nor acked+1";

    // Once a checkpoint was acknowledged, recovery must come up from it
    // and replay only the tail past its anchor.
    const auto info = (*revived)->checkpoint_info();
    if (acked > kFirstCheckpointVerb) {
      EXPECT_TRUE(info.recovered_from_checkpoint);
    }
    if (info.recovered_from_checkpoint) {
      EXPECT_EQ((*revived)->stream_info().replayed_records,
                CountAppends(matched_prefix) - info.recovery_anchor_appends);
    }
    fs::remove_all(dir);
  }
  EXPECT_TRUE(completed) << "sweep did not terminate within " << kMaxOps
                         << " mutating ops";
}

}  // namespace
}  // namespace s2::service
