#include "resilience/retrying_source.h"

#include <algorithm>
#include <thread>

namespace s2::resilience {

RetryingSequenceSource::RetryingSequenceSource(
    std::unique_ptr<storage::SequenceSource> base, RetryPolicy policy)
    : RetryingSequenceSource(std::move(base), policy,
                             [](std::chrono::microseconds d) {
                               std::this_thread::sleep_for(d);
                             }) {}

RetryingSequenceSource::RetryingSequenceSource(
    std::unique_ptr<storage::SequenceSource> base, RetryPolicy policy,
    Retrier::Sleeper sleeper)
    : base_(std::move(base)),
      policy_(policy),
      sleeper_(std::move(sleeper)),
      rng_(policy.seed) {}

std::chrono::microseconds RetryingSequenceSource::Backoff(int retry_index) {
  int64_t backoff_us = policy_.base_backoff.count();
  const int64_t cap_us = policy_.max_backoff.count();
  for (int k = 0; k < retry_index && backoff_us < cap_us; ++k) backoff_us *= 2;
  backoff_us = std::min(backoff_us, cap_us);
  if (policy_.jitter > 0.0) {
    sync::MutexLock lock(&rng_mu_);
    const double factor =
        rng_.Uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
    backoff_us = static_cast<int64_t>(static_cast<double>(backoff_us) * factor);
  }
  return std::chrono::microseconds(std::max<int64_t>(backoff_us, 0));
}

Result<std::vector<double>> RetryingSequenceSource::Get(ts::SeriesId id) {
  const int attempts = std::max(policy_.max_attempts, 1);
  Result<std::vector<double>> out =
      Status::Internal("retry loop never ran");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      sleeper_(Backoff(attempt - 1));
    }
    out = base_->Get(id);
    if (!s2::IsRetryable(out.status())) return out;
  }
  giveups_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

}  // namespace s2::resilience
