#ifndef S2_SERVICE_THREAD_POOL_H_
#define S2_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace s2::service {

/// A fixed-size thread pool with a single shared FIFO task queue.
///
/// Deliberately simple (no work stealing): serving-layer tasks are
/// coarse-grained whole requests, so a shared queue under one mutex is
/// nowhere near contention-bound and keeps FIFO fairness, which the
/// scheduler's deadline semantics rely on.
///
/// Shutdown is graceful: `Shutdown()` stops admission, lets the workers
/// drain every task already queued, then joins them. The destructor calls
/// `Shutdown()` if the caller has not.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task. Returns false (task dropped, never run) when the pool
  /// is shutting down — callers must complete any associated promise
  /// themselves in that case.
  bool Submit(std::function<void()> task);

  /// Drains the queue and joins all workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently queued (not yet picked up by a worker).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace s2::service

#endif  // S2_SERVICE_THREAD_POOL_H_
