#include "resilience/retry.h"

#include <algorithm>
#include <thread>

namespace s2::resilience {

Retrier::Retrier(RetryPolicy policy)
    : Retrier(policy, [](std::chrono::microseconds d) {
        std::this_thread::sleep_for(d);
      }) {}

Retrier::Retrier(RetryPolicy policy, Sleeper sleeper)
    : policy_(policy), sleeper_(std::move(sleeper)), rng_(policy.seed) {}

std::chrono::microseconds Retrier::NextBackoff(int retry_index) {
  // base * 2^k, saturating at max_backoff well before the shift overflows.
  int64_t backoff_us = policy_.base_backoff.count();
  const int64_t cap_us = policy_.max_backoff.count();
  for (int k = 0; k < retry_index && backoff_us < cap_us; ++k) backoff_us *= 2;
  backoff_us = std::min(backoff_us, cap_us);
  if (policy_.jitter > 0.0) {
    const double factor =
        rng_.Uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
    backoff_us = static_cast<int64_t>(static_cast<double>(backoff_us) * factor);
  }
  return std::chrono::microseconds(std::max<int64_t>(backoff_us, 0));
}

Status Retrier::Run(const std::function<Status()>& op) {
  const int attempts = std::max(policy_.max_attempts, 1);
  Status last = Status::Internal("retry loop never ran");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      sleeper_(NextBackoff(attempt - 1));
    }
    ++stats_.attempts;
    last = op();
    if (!s2::IsRetryable(last)) return last;  // success or non-retryable
  }
  ++stats_.giveups;
  return last;
}

}  // namespace s2::resilience
