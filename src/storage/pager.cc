#include "storage/pager.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "diag/validate.h"

namespace s2::storage {

Pager::Pager(std::string path, std::FILE* file, size_t pool_pages,
             size_t num_pages)
    : path_(std::move(path)), file_(file), num_pages_(num_pages) {
  frames_.resize(pool_pages);
  for (Frame& frame : frames_) {
    frame.data = std::make_unique<char[]>(kPageSize);
  }
  // Initially every frame is free; represent free frames as LRU entries with
  // kInvalidPageId so eviction naturally picks them first.
  for (size_t i = 0; i < frames_.size(); ++i) {
    lru_.push_back(i);
    lru_pos_[i] = std::prev(lru_.end());
  }
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           size_t pool_pages) {
  if (pool_pages < 2) {
    return Status::InvalidArgument("Pager: pool must hold at least 2 pages");
  }
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) return Status::IoError("Pager: cannot open " + path);
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IoError("Pager: seek failed on " + path);
  }
  const long size = std::ftell(file);
  if (size < 0) {
    std::fclose(file);
    return Status::IoError("Pager: cannot determine size of " + path);
  }
  if (static_cast<size_t>(size) % kPageSize != 0) {
    std::fclose(file);
    return Status::Corruption(
        "Pager: truncated or misaligned file (size " + std::to_string(size) +
        " is not a multiple of " + std::to_string(kPageSize) + "): " + path);
  }
  const size_t num_pages = static_cast<size_t>(size) / kPageSize;
  if (num_pages >= static_cast<size_t>(kInvalidPageId)) {
    std::fclose(file);
    return Status::Corruption("Pager: page count exceeds the PageId range: " +
                              path);
  }
  return std::unique_ptr<Pager>(new Pager(path, file, pool_pages, num_pages));
}

Pager::~Pager() {
  (void)FlushAll();
  if (file_ != nullptr) std::fclose(file_);
}

void Pager::TouchLru(size_t frame_idx) {
  const auto it = lru_pos_.find(frame_idx);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_back(frame_idx);
  lru_pos_[frame_idx] = std::prev(lru_.end());
}

Status Pager::WriteBack(Frame* frame) {
  if (!frame->dirty || frame->page_id == kInvalidPageId) return Status::OK();
  const uint64_t offset = static_cast<uint64_t>(frame->page_id) * kPageSize;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(frame->data.get(), 1, kPageSize, file_) != kPageSize) {
    return Status::IoError("Pager: write-back failed");
  }
  ++disk_writes_;
  frame->dirty = false;
  return Status::OK();
}

Result<size_t> Pager::FrameFor(PageId id) {
  const auto hit = frame_of_page_.find(id);
  if (hit != frame_of_page_.end()) {
    ++cache_hits_;
    TouchLru(hit->second);
    return hit->second;
  }

  // Evict the least recently used unpinned frame.
  size_t victim = frames_.size();
  for (size_t idx : lru_) {
    if (frames_[idx].pin_count == 0) {
      victim = idx;
      break;
    }
  }
  if (victim == frames_.size()) {
    return Status::Internal("Pager: buffer pool exhausted (all pages pinned)");
  }
  Frame& frame = frames_[victim];
  S2_RETURN_NOT_OK(WriteBack(&frame));
  if (frame.page_id != kInvalidPageId) frame_of_page_.erase(frame.page_id);

  // Load the requested page.
  const uint64_t offset = static_cast<uint64_t>(id) * kPageSize;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fread(frame.data.get(), 1, kPageSize, file_) != kPageSize) {
    frame.page_id = kInvalidPageId;
    return Status::IoError("Pager: read failed for page " + std::to_string(id));
  }
  ++disk_reads_;
  frame.page_id = id;
  frame.dirty = false;
  frame_of_page_[id] = victim;
  TouchLru(victim);
  return victim;
}

Result<PageId> Pager::Allocate(char** data) {
  const PageId id = static_cast<PageId>(num_pages_);
  // Extend the file with a zeroed page.
  std::vector<char> zeros(kPageSize, 0);
  if (std::fseek(file_, 0, SEEK_END) != 0 ||
      std::fwrite(zeros.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IoError("Pager: cannot extend file");
  }
  ++disk_writes_;
  ++num_pages_;
  S2_ASSIGN_OR_RETURN(size_t frame_idx, FrameFor(id));
  Frame& frame = frames_[frame_idx];
  ++frame.pin_count;
  if (data != nullptr) *data = frame.data.get();
  return id;
}

Result<char*> Pager::Fetch(PageId id) {
  if (id >= num_pages_) {
    return Status::OutOfRange("Pager: page " + std::to_string(id) +
                              " beyond end of file");
  }
  S2_ASSIGN_OR_RETURN(size_t frame_idx, FrameFor(id));
  Frame& frame = frames_[frame_idx];
  ++frame.pin_count;
  return frame.data.get();
}

Status Pager::Unpin(PageId id, bool dirty) {
  const auto it = frame_of_page_.find(id);
  if (it == frame_of_page_.end()) {
    return Status::InvalidArgument("Pager: unpin of non-resident page");
  }
  Frame& frame = frames_[it->second];
  if (frame.pin_count <= 0) {
    return Status::InvalidArgument("Pager: unpin without matching pin");
  }
  --frame.pin_count;
  frame.dirty = frame.dirty || dirty;
  return Status::OK();
}

Status Pager::Validate() const {
  diag::Validator v("Pager");
  // Frame table: every mapped page resolves to a frame that agrees.
  for (const auto& [page_id, frame_idx] : frame_of_page_) {
    v.Check(page_id < num_pages_)
        << "frame table maps out-of-range page " << page_id << " (file has "
        << num_pages_ << " pages)";
    if (frame_idx >= frames_.size()) {
      v.AddViolation("frame table points past the pool (frame " +
                     std::to_string(frame_idx) + ")");
      continue;
    }
    v.Check(frames_[frame_idx].page_id == page_id)
        << "frame " << frame_idx << " holds page " << frames_[frame_idx].page_id
        << " but the frame table expects page " << page_id;
  }
  // Frames: non-negative pins; every resident page is in the frame table.
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    v.Check(frame.pin_count >= 0)
        << "frame " << i << " has negative pin count " << frame.pin_count;
    v.Check(frame.data != nullptr) << "frame " << i << " has no buffer";
    if (frame.page_id != kInvalidPageId) {
      const auto it = frame_of_page_.find(frame.page_id);
      v.Check(it != frame_of_page_.end() && it->second == i)
          << "frame " << i << " holds page " << frame.page_id
          << " without a frame-table entry";
    }
  }
  // LRU list: a permutation of the frame indices, mirrored by lru_pos_.
  v.Check(lru_.size() == frames_.size())
      << "LRU list tracks " << lru_.size() << " frames, pool has "
      << frames_.size();
  std::vector<bool> seen(frames_.size(), false);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const size_t idx = *it;
    if (idx >= frames_.size()) {
      v.AddViolation("LRU entry " + std::to_string(idx) + " out of range");
      continue;
    }
    v.Check(!seen[idx]) << "frame " << idx << " appears twice in the LRU list";
    seen[idx] = true;
    const auto pos = lru_pos_.find(idx);
    v.Check(pos != lru_pos_.end() && pos->second == it)
        << "stale LRU position for frame " << idx;
  }
  // File: its size must agree with num_pages() (Allocate extends eagerly).
  struct stat st = {};
  if (file_ == nullptr || ::fstat(fileno(file_), &st) != 0) {
    v.AddViolation("cannot stat the backing file");
  } else {
    v.Check(static_cast<uint64_t>(st.st_size) == num_pages_ * kPageSize)
        << "file size " << st.st_size << " != " << num_pages_ << " pages x "
        << kPageSize << " bytes";
  }
  return v.ToStatus();
}

Status Pager::FlushAll() {
  for (Frame& frame : frames_) {
    S2_RETURN_NOT_OK(WriteBack(&frame));
  }
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return Status::IoError("Pager: fflush failed");
  }
  return Status::OK();
}

}  // namespace s2::storage
