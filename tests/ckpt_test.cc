#include "ckpt/checkpoint_store.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/manifest.h"
#include "ckpt/snapshot.h"
#include "io/durable.h"
#include "io/mem_env.h"
#include "monitor/subscription.h"

namespace s2::ckpt {
namespace {

// A small but fully-populated snapshot: every codec branch (burst and
// similarity subscriptions, engaged hysteresis, queued alerts, watermark)
// is exercised. `tag` shifts the values so generations are distinguishable.
EngineSnapshot MakeSnapshot(uint32_t tag) {
  EngineSnapshot snapshot;
  snapshot.anchor_appends = 100 + tag;
  snapshot.anchor_monitor_ops = 10 + tag;
  snapshot.next_subscription_id = 3 + tag;
  for (uint32_t s = 0; s < 3; ++s) {
    ts::TimeSeries series;
    series.name = "series-" + std::to_string(s);
    series.start_day = static_cast<int32_t>(tag + s);
    for (int i = 0; i < 8; ++i) series.values.push_back(0.5 * i + tag);
    snapshot.corpus.push_back(std::move(series));
  }
  monitor::SubscriptionRegistry::Entry burst;
  burst.sub.id = 1;
  burst.sub.kind = monitor::SubscriptionKind::kBurstThreshold;
  burst.sub.series = 0;
  burst.sub.burst.window = 7;
  burst.sub.burst.enter_ratio = 1.5;
  burst.sub.burst.exit_ratio = 1.1;
  burst.engaged = true;
  burst.bin = 0;
  snapshot.subscriptions.push_back(burst);
  monitor::SubscriptionRegistry::Entry watch;
  watch.sub.id = 2;
  watch.sub.kind = monitor::SubscriptionKind::kSimilarityWatch;
  watch.sub.series = 1;
  watch.sub.similarity.radius = 2.0;
  watch.sub.similarity.query = {1.0, -1.0, 0.5, static_cast<double>(tag)};
  watch.engaged = false;
  watch.bin = 3;
  snapshot.subscriptions.push_back(watch);
  monitor::Alert alert;
  alert.seq = 5;
  alert.subscription = 1;
  alert.kind = monitor::AlertKind::kBurstBegin;
  alert.series = 0;
  alert.day = 1234;
  alert.value = 3.5;
  alert.threshold = 1.5;
  snapshot.alerts.queued.push_back(alert);
  snapshot.alerts.next_seq = 6;
  snapshot.alerts.fired = 6;
  snapshot.alerts.dropped = 1;
  snapshot.alerts.delivered = 4;
  snapshot.alerts.acked = 4;
  snapshot.alerts.acked_upto = 4;
  snapshot.alerts.any_acked = true;
  snapshot.alerts.evaluations = 50 + tag;
  return snapshot;
}

void ExpectSnapshotsEqual(const EngineSnapshot& a, const EngineSnapshot& b) {
  EXPECT_EQ(a.anchor_appends, b.anchor_appends);
  EXPECT_EQ(a.anchor_monitor_ops, b.anchor_monitor_ops);
  EXPECT_EQ(a.next_subscription_id, b.next_subscription_id);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(a.corpus[i].name, b.corpus[i].name);
    EXPECT_EQ(a.corpus[i].start_day, b.corpus[i].start_day);
    EXPECT_EQ(a.corpus[i].values, b.corpus[i].values);
  }
  ASSERT_EQ(a.subscriptions.size(), b.subscriptions.size());
  for (size_t i = 0; i < a.subscriptions.size(); ++i) {
    const auto& x = a.subscriptions[i];
    const auto& y = b.subscriptions[i];
    EXPECT_EQ(x.sub.id, y.sub.id);
    EXPECT_EQ(x.sub.kind, y.sub.kind);
    EXPECT_EQ(x.sub.series, y.sub.series);
    EXPECT_EQ(x.sub.burst.window, y.sub.burst.window);
    EXPECT_DOUBLE_EQ(x.sub.burst.enter_ratio, y.sub.burst.enter_ratio);
    EXPECT_DOUBLE_EQ(x.sub.burst.exit_ratio, y.sub.burst.exit_ratio);
    EXPECT_DOUBLE_EQ(x.sub.similarity.radius, y.sub.similarity.radius);
    EXPECT_EQ(x.sub.similarity.query, y.sub.similarity.query);
    EXPECT_EQ(x.engaged, y.engaged);
    EXPECT_EQ(x.bin, y.bin);
  }
  ASSERT_EQ(a.alerts.queued.size(), b.alerts.queued.size());
  for (size_t i = 0; i < a.alerts.queued.size(); ++i) {
    EXPECT_EQ(a.alerts.queued[i].seq, b.alerts.queued[i].seq);
    EXPECT_EQ(a.alerts.queued[i].subscription, b.alerts.queued[i].subscription);
    EXPECT_EQ(a.alerts.queued[i].kind, b.alerts.queued[i].kind);
    EXPECT_EQ(a.alerts.queued[i].series, b.alerts.queued[i].series);
    EXPECT_EQ(a.alerts.queued[i].day, b.alerts.queued[i].day);
    EXPECT_DOUBLE_EQ(a.alerts.queued[i].value, b.alerts.queued[i].value);
  }
  EXPECT_EQ(a.alerts.next_seq, b.alerts.next_seq);
  EXPECT_EQ(a.alerts.fired, b.alerts.fired);
  EXPECT_EQ(a.alerts.dropped, b.alerts.dropped);
  EXPECT_EQ(a.alerts.delivered, b.alerts.delivered);
  EXPECT_EQ(a.alerts.acked, b.alerts.acked);
  EXPECT_EQ(a.alerts.acked_upto, b.alerts.acked_upto);
  EXPECT_EQ(a.alerts.any_acked, b.alerts.any_acked);
  EXPECT_EQ(a.alerts.evaluations, b.alerts.evaluations);
}

TEST(SnapshotCodecTest, RoundTrips) {
  const EngineSnapshot original = MakeSnapshot(7);
  const std::vector<char> encoded = EncodeSnapshot(original);
  EngineSnapshot decoded;
  const Status status = DecodeSnapshot(encoded.data(), encoded.size(), &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectSnapshotsEqual(original, decoded);
}

TEST(SnapshotCodecTest, RejectsStructuralDamage) {
  const std::vector<char> encoded = EncodeSnapshot(MakeSnapshot(1));
  EngineSnapshot decoded;
  // Wrong magic.
  {
    std::vector<char> bad = encoded;
    bad[0] ^= 0x7f;
    EXPECT_EQ(DecodeSnapshot(bad.data(), bad.size(), &decoded).code(),
              StatusCode::kCorruption);
  }
  // Every truncation point fails cleanly (no UB, no crash).
  for (size_t n = 0; n < encoded.size(); n += 7) {
    EXPECT_EQ(DecodeSnapshot(encoded.data(), n, &decoded).code(),
              StatusCode::kCorruption)
        << "truncated to " << n;
  }
  // Trailing garbage is also corruption: the codec owns every byte.
  {
    std::vector<char> bad = encoded;
    bad.push_back('x');
    EXPECT_EQ(DecodeSnapshot(bad.data(), bad.size(), &decoded).code(),
              StatusCode::kCorruption);
  }
}

TEST(SnapshotCodecTest, RejectsAbsurdCounts) {
  // A corpus count far beyond the payload must fail the bounds check
  // up front instead of attempting a giant allocation.
  const std::vector<char> encoded = EncodeSnapshot(MakeSnapshot(2));
  std::vector<char> bad = encoded;
  // Corpus count lives right after magic(8) + version(4) + 3 u64 anchors.
  const size_t count_off = 8 + 4 + 3 * 8;
  const uint64_t absurd = ~0ull / 2;
  std::memcpy(bad.data() + count_off, &absurd, sizeof(absurd));
  EngineSnapshot decoded;
  EXPECT_EQ(DecodeSnapshot(bad.data(), bad.size(), &decoded).code(),
            StatusCode::kCorruption);
}

TEST(ManifestCodecTest, RoundTrips) {
  Manifest manifest;
  manifest.current = {5, 1000, 30};
  manifest.has_prev = true;
  manifest.prev = {4, 800, 24};
  manifest.shard_count = 3;
  manifest.shard_checksums = {111, 222, 333};
  manifest.data_segments = {{0, 0}, {1, 400}, {2, 900}};
  manifest.monitor_segments = {{0, 0}};
  const std::vector<char> encoded = EncodeManifest(manifest);
  Manifest decoded;
  const Status status = DecodeManifest(encoded.data(), encoded.size(), &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded.current.generation, 5u);
  EXPECT_EQ(decoded.current.anchor_appends, 1000u);
  EXPECT_TRUE(decoded.has_prev);
  EXPECT_EQ(decoded.prev.generation, 4u);
  EXPECT_EQ(decoded.shard_count, 3u);
  EXPECT_EQ(decoded.shard_checksums, manifest.shard_checksums);
  ASSERT_EQ(decoded.data_segments.size(), 3u);
  EXPECT_EQ(decoded.data_segments[2].seq, 2u);
  EXPECT_EQ(decoded.data_segments[2].base_records, 900u);
  ASSERT_EQ(decoded.monitor_segments.size(), 1u);
}

TEST(ManifestCodecTest, RejectsNonMonotoneFallbackGeneration) {
  Manifest manifest;
  manifest.current = {5, 1000, 30};
  manifest.has_prev = true;
  manifest.prev = {5, 800, 24};  // Must be strictly older than current.
  const std::vector<char> encoded = EncodeManifest(manifest);
  Manifest decoded;
  EXPECT_EQ(DecodeManifest(encoded.data(), encoded.size(), &decoded).code(),
            StatusCode::kCorruption);
}

TEST(ManifestCodecTest, RejectsTruncation) {
  Manifest manifest;
  manifest.current = {1, 10, 2};
  manifest.data_segments = {{0, 0}};
  const std::vector<char> encoded = EncodeManifest(manifest);
  Manifest decoded;
  for (size_t n = 0; n < encoded.size(); n += 3) {
    EXPECT_EQ(DecodeManifest(encoded.data(), n, &decoded).code(),
              StatusCode::kCorruption)
        << "truncated to " << n;
  }
}

TEST(CheckpointStoreTest, CommitBumpsGenerationAndDemotesCurrentToPrev) {
  io::MemEnv env;
  CheckpointStore store(&env, "ckpt/base");
  Manifest first;
  ASSERT_TRUE(store.Commit(MakeSnapshot(1), 1, {42}, {{0, 0}}, {{0, 0}}, &first)
                  .ok());
  EXPECT_EQ(first.current.generation, 1u);
  EXPECT_FALSE(first.has_prev);
  Manifest second;
  ASSERT_TRUE(
      store.Commit(MakeSnapshot(2), 1, {43}, {{0, 0}, {1, 50}}, {{0, 0}},
                   &second)
          .ok());
  EXPECT_EQ(second.current.generation, 2u);
  ASSERT_TRUE(second.has_prev);
  EXPECT_EQ(second.prev.generation, 1u);
  EXPECT_EQ(second.prev.anchor_appends, 101u);  // MakeSnapshot(1)'s anchor.
  EXPECT_EQ(second.current.anchor_appends, 102u);

  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->from_fallback);
  ExpectSnapshotsEqual(MakeSnapshot(2), loaded->snapshot);
  EXPECT_EQ(loaded->manifest.current.generation, 2u);
  ASSERT_EQ(loaded->manifest.data_segments.size(), 2u);
}

TEST(CheckpointStoreTest, LoadIsNotFoundOnAColdStart) {
  io::MemEnv env;
  CheckpointStore store(&env, "base");
  auto loaded = store.Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, CorruptCurrentSnapshotFallsBackOneGeneration) {
  io::MemEnv env;
  CheckpointStore store(&env, "base");
  ASSERT_TRUE(
      store.Commit(MakeSnapshot(1), 1, {1}, {{0, 0}}, {{0, 0}}, nullptr).ok());
  ASSERT_TRUE(
      store.Commit(MakeSnapshot(2), 1, {2}, {{0, 0}}, {{0, 0}}, nullptr).ok());
  // Damage the newest snapshot mid-payload: the container checksum fails.
  {
    auto file = env.Open(store.SnapshotPath(2), io::OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok());
    char byte = 0;
    ASSERT_TRUE((*file)->ReadAt(&byte, 1, 64).ok());
    byte ^= 0x5a;
    ASSERT_TRUE((*file)->WriteAt(&byte, 1, 64).ok());
  }
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->from_fallback);
  ExpectSnapshotsEqual(MakeSnapshot(1), loaded->snapshot);

  // Both generations gone is unrecoverable-by-checkpoint: Corruption.
  {
    auto file = env.Open(store.SnapshotPath(1), io::OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok());
    char byte = 0;
    ASSERT_TRUE((*file)->ReadAt(&byte, 1, 64).ok());
    byte ^= 0x5a;
    ASSERT_TRUE((*file)->WriteAt(&byte, 1, 64).ok());
  }
  auto dead = store.Load();
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kCorruption);
}

TEST(CheckpointStoreTest, GcKeepsOnlyTheRecordedGenerations) {
  io::MemEnv env;
  CheckpointStore store(&env, "base");
  Manifest manifest;
  for (uint32_t tag = 1; tag <= 3; ++tag) {
    ASSERT_TRUE(store.Commit(MakeSnapshot(tag), 1, {tag}, {{0, 0}}, {{0, 0}},
                             &manifest)
                    .ok());
  }
  // Plant an orphan above current — the residue of a crash between the
  // snapshot commit and the manifest commit.
  {
    const std::vector<char> payload = EncodeSnapshot(MakeSnapshot(9));
    const Status planted = io::durable::Commit(&env, store.SnapshotPath(9),
                                               payload.data(), payload.size(),
                                               /*generation=*/9);
    ASSERT_TRUE(planted.ok()) << planted.ToString();
  }
  ASSERT_TRUE(env.FileExists(store.SnapshotPath(1)));
  auto removed = store.GarbageCollectSnapshots(manifest);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(*removed, 2u);  // Generation 1 and the orphan 9.
  EXPECT_FALSE(env.FileExists(store.SnapshotPath(1)));
  EXPECT_TRUE(env.FileExists(store.SnapshotPath(2)));
  EXPECT_TRUE(env.FileExists(store.SnapshotPath(3)));
  EXPECT_FALSE(env.FileExists(store.SnapshotPath(9)));
  // Both survivors still load.
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  ExpectSnapshotsEqual(MakeSnapshot(3), loaded->snapshot);
}

TEST(CheckpointStoreTest, CorpusChecksumSeesEveryField) {
  std::vector<ts::TimeSeries> corpus(1);
  corpus[0].name = "a";
  corpus[0].start_day = 10;
  corpus[0].values = {1.0, 2.0};
  const uint64_t base = CheckpointStore::CorpusChecksum(corpus);
  auto tweaked = corpus;
  tweaked[0].name = "b";
  EXPECT_NE(CheckpointStore::CorpusChecksum(tweaked), base);
  tweaked = corpus;
  tweaked[0].start_day = 11;
  EXPECT_NE(CheckpointStore::CorpusChecksum(tweaked), base);
  tweaked = corpus;
  tweaked[0].values[1] = 2.5;
  EXPECT_NE(CheckpointStore::CorpusChecksum(tweaked), base);
  EXPECT_EQ(CheckpointStore::CorpusChecksum(corpus), base);
}

}  // namespace
}  // namespace s2::ckpt
