// Ablation (beyond the paper's own tables): the two VP-tree design choices
// of Section 4.1 —
//   1. vantage-point selection: max-deviation heuristic vs random choice,
//   2. guided traversal: most-promising-child-first vs fixed left-first —
// measured by bound computations, surviving candidates and full-sequence
// retrievals per query.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "dsp/stats.h"
#include "index/mvp_tree.h"
#include "index/vp_tree.h"
#include "querylog/corpus_generator.h"
#include "storage/sequence_store.h"

namespace s2 {
namespace {

struct Totals {
  double bounds = 0;
  double candidates = 0;
  double retrievals = 0;
  double nodes = 0;
  double seconds = 0;
};

Totals Evaluate(const index::VpTreeIndex::Options& options,
                const std::vector<std::vector<double>>& rows,
                const std::vector<std::vector<double>>& queries,
                storage::SequenceSource* source) {
  Totals totals;
  auto built = index::VpTreeIndex::Build(rows, options);
  if (!built.ok()) return totals;
  bench::Timer timer;
  for (const auto& query : queries) {
    index::VpTreeIndex::SearchStats stats;
    auto result = built->Search(query, 1, source, &stats);
    if (!result.ok()) return totals;
    totals.bounds += static_cast<double>(stats.bound_computations);
    totals.candidates += static_cast<double>(stats.candidates_surviving);
    totals.retrievals += static_cast<double>(stats.full_retrievals);
    totals.nodes += static_cast<double>(stats.nodes_visited);
  }
  totals.seconds = timer.Seconds();
  const double q = static_cast<double>(queries.size());
  totals.bounds /= q;
  totals.candidates /= q;
  totals.retrievals /= q;
  totals.nodes /= q;
  return totals;
}

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  using namespace s2;
  const size_t db = bench::ArgSize(argc, argv, "--db", 8192);
  const size_t n_queries = bench::ArgSize(argc, argv, "--queries", 50);

  bench::PrintHeader("Ablation: VP-tree construction & traversal choices (db = " +
                     std::to_string(db) + ")");

  qlog::CorpusSpec spec;
  spec.num_series = db;
  spec.n_days = 1024;
  spec.seed = 41;
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) return 1;
  const auto rows = bench::StandardizedRows(*corpus);
  auto held_out = qlog::GenerateQueries(spec, n_queries);
  if (!held_out.ok()) return 1;
  std::vector<std::vector<double>> queries;
  for (const auto& q : *held_out) queries.push_back(dsp::Standardize(q.values));
  auto source = storage::InMemorySequenceSource::Create(rows);
  if (!source.ok()) return 1;

  struct Config {
    const char* label;
    size_t vantage_candidates;
    bool guided;
  };
  const Config configs[] = {
      {"max-deviation VP + guided traversal", 16, true},
      {"max-deviation VP + fixed order", 16, false},
      {"random VP + guided traversal", 1, true},
      {"random VP + fixed order", 1, false},
  };

  std::printf("%-40s %10s %10s %10s %8s\n", "configuration", "bounds/q",
              "cands/q", "fetch/q", "time(s)");
  for (const Config& config : configs) {
    index::VpTreeIndex::Options options;
    options.budget_c = 16;
    options.vantage_candidates = config.vantage_candidates;
    options.guided_traversal = config.guided;
    const Totals totals = Evaluate(options, rows, queries, source->get());
    std::printf("%-40s %10.1f %10.1f %10.1f %8.3f\n", config.label, totals.bounds,
                totals.candidates, totals.retrievals, totals.seconds);
  }

  // Multi-vantage-point variant (Section 4's cited extension).
  {
    index::MvpTreeIndex::Options options;
    options.budget_c = 16;
    auto built = index::MvpTreeIndex::Build(rows, options);
    if (built.ok()) {
      Totals totals;
      bench::Timer timer;
      for (const auto& query : queries) {
        index::MvpTreeIndex::SearchStats stats;
        auto result = built->Search(query, 1, source->get(), &stats);
        if (!result.ok()) break;
        totals.bounds += static_cast<double>(stats.bound_computations);
        totals.candidates += static_cast<double>(stats.candidates_surviving);
        totals.retrievals += static_cast<double>(stats.full_retrievals);
      }
      totals.seconds = timer.Seconds();
      const double q = static_cast<double>(queries.size());
      std::printf("%-40s %10.1f %10.1f %10.1f %8.3f\n",
                  "MVP-tree (2 vantage points, 4-way)", totals.bounds / q,
                  totals.candidates / q, totals.retrievals / q, totals.seconds);
    }
  }

  std::printf(
      "\nReading: the paper's max-deviation vantage selection and the "
      "annulus-guided traversal should each reduce the number of bound "
      "computations and full retrievals per query.\n");
  return 0;
}
