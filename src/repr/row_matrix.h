#ifndef S2_REPR_ROW_MATRIX_H_
#define S2_REPR_ROW_MATRIX_H_

#include <cstddef>
#include <vector>

namespace s2::repr {

/// Contiguous row-major matrix of equal-length series: the SoA layout the
/// index builders and batched leaf evaluation iterate instead of
/// vector<vector<double>> (one allocation, predictable stride, rows
/// friendly to simd::PrefetchRead and the vectorized distance kernels).
/// Rows are padded to a cache-line multiple of doubles; padding is
/// zero-filled and never read by length-bounded kernels.
class RowMatrix {
 public:
  RowMatrix() = default;

  /// Copies `rows` (assumed rectangular — callers validate shape) into one
  /// contiguous buffer.
  static RowMatrix FromRows(const std::vector<std::vector<double>>& rows);

  /// An uninitialized (zero-filled) matrix to fill via mutable_row.
  RowMatrix(size_t num_rows, size_t row_length);

  size_t num_rows() const { return num_rows_; }
  size_t row_length() const { return row_length_; }

  const double* row(size_t i) const { return data_.data() + i * stride_; }
  double* mutable_row(size_t i) { return data_.data() + i * stride_; }

 private:
  size_t num_rows_ = 0;
  size_t row_length_ = 0;
  size_t stride_ = 0;  // row_length_ rounded up to 8 doubles (64 bytes).
  std::vector<double> data_;
};

}  // namespace s2::repr

#endif  // S2_REPR_ROW_MATRIX_H_
