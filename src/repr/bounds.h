#ifndef S2_REPR_BOUNDS_H_
#define S2_REPR_BOUNDS_H_

#include <string_view>

#include "common/result.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"

namespace s2::repr {

/// Lower/upper bracket on the true Euclidean distance between an
/// uncompressed query and a compressed object.
struct DistanceBounds {
  double lower = 0.0;
  double upper = 0.0;
};

/// The bounding algorithms of the paper's Section 3, plus two variants:
///
/// * `kGemini`        — LB from the retained coefficients only (symmetric
///                      half-spectrum weighting per Rafiei et al.); no upper
///                      bound (+infinity). Works with any representation.
/// * `kWang`          — first-k + stored error: reverse/forward triangle
///                      inequality on the omitted subvector.
/// * `kBestMin`       — best-k + minProperty (Figure 7): per-coefficient
///                      bounds using the smallest retained magnitude.
/// * `kBestError`     — best-k + stored error (Figure 8): Wang's bounds with
///                      best coefficients.
/// * `kBestMinError`  — best-k + minProperty + error (Figure 9), in a
///                      *provably sound* formulation: the paper's printed
///                      pseudocode can violate both the lower and the upper
///                      bound in corner cases (see bounds.cc for the
///                      analysis); we take the tightest combination of the
///                      per-coefficient credits and energy bookkeeping that
///                      remains a true bracket.
/// * `kBestMinErrorLiteral` — the paper's Figure 9 pseudocode verbatim, kept
///                      for the fidelity ablation (bench_ablation_bounds).
///                      NOT guaranteed to bracket the true distance.
/// * `kBestMinErrorWaterfill` — extension: the *exactly tight* upper bound
///                      under the stored information, via concave
///                      water-filling of the omitted energy (see bounds.cc);
///                      lower bound as in kBestMinError.
enum class BoundMethod {
  kGemini,
  kWang,
  kBestMin,
  kBestError,
  kBestMinError,
  kBestMinErrorLiteral,
  kBestMinErrorWaterfill,
};

/// Display name of a bound method ("LB/UB_BestMinError" style tag).
std::string_view BoundMethodToString(BoundMethod method);

/// The representation kind a method requires.
/// kGemini accepts any kind; error-based methods require a stored error;
/// min-based methods require a best-k representation.
bool MethodCompatibleWith(BoundMethod method, ReprKind kind);

/// Computes the distance bracket between the full `query` spectrum and the
/// compressed `object`. Returns InvalidArgument when lengths differ or the
/// method is incompatible with the object's representation kind.
Result<DistanceBounds> ComputeBounds(const HalfSpectrum& query,
                                     const CompressedSpectrum& object,
                                     BoundMethod method);

}  // namespace s2::repr

#endif  // S2_REPR_BOUNDS_H_
