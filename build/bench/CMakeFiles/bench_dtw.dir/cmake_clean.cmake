file(REMOVE_RECURSE
  "CMakeFiles/bench_dtw.dir/bench_dtw.cc.o"
  "CMakeFiles/bench_dtw.dir/bench_dtw.cc.o.d"
  "bench_dtw"
  "bench_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
