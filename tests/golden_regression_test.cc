// Golden regression tests: the numeric outputs of every query verb on a
// fixed-seed corpus, frozen as text files under tests/golden/. Any change to
// the DSP chain, the index, the burst detector or the shard merge that moves
// a single bit of a served answer fails here with a readable diff — the
// cross-PR complement to the shard equivalence suite (which only proves
// topologies agree with *each other*, not with yesterday).
//
// Regeneration: run the binary with S2_UPDATE_GOLDEN=1 in the environment;
// it rewrites the files in the source tree (S2_GOLDEN_DIR is a compile-time
// define pointing at tests/golden/) and every test passes trivially. Commit
// the diff only when the change is intentional.
//
// Doubles are printed with %.17g — enough digits to round-trip an IEEE754
// double exactly, so the files pin bit-identical behaviour, not "close".

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/s2_engine.h"
#include "querylog/corpus_generator.h"
#include "shard/sharded_engine.h"

namespace s2 {
namespace {

constexpr uint64_t kSeed = 424242;
constexpr size_t kNumSeries = 48;
constexpr size_t kDays = 128;
constexpr size_t kK = 6;
// Ids spread across the corpus (and, under sharding, across shards).
constexpr ts::SeriesId kProbeIds[] = {0, 7, 19, 30, 47};

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

ts::Corpus MakeCorpus() {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = kSeed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions() {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 4;
  return options;
}

bool UpdateMode() { return std::getenv("S2_UPDATE_GOLDEN") != nullptr; }

std::string GoldenPath(const std::string& name) {
  return std::string(S2_GOLDEN_DIR) + "/" + name + ".golden";
}

/// In normal runs, compares `actual` against the committed golden file.
/// Under S2_UPDATE_GOLDEN, (re)writes the file instead.
void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (UpdateMode()) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with S2_UPDATE_GOLDEN=1 to create it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "golden mismatch for " << name
      << "; if the change is intentional, regenerate with S2_UPDATE_GOLDEN=1";
}

// --- Renderers (one canonical text form per verb) ---------------------------

std::string RenderNeighbors(ts::SeriesId id,
                            const std::vector<index::Neighbor>& neighbors) {
  std::ostringstream out;
  out << "query " << id << "\n";
  for (const index::Neighbor& n : neighbors) {
    out << "  " << n.id << " " << FormatDouble(n.distance) << "\n";
  }
  return out.str();
}

std::string RenderPeriods(ts::SeriesId id,
                          const std::vector<period::PeriodHit>& hits) {
  std::ostringstream out;
  out << "series " << id << "\n";
  for (const period::PeriodHit& hit : hits) {
    out << "  bin=" << hit.bin << " period=" << FormatDouble(hit.period)
        << " freq=" << FormatDouble(hit.frequency)
        << " power=" << FormatDouble(hit.power) << "\n";
  }
  return out.str();
}

std::string RenderBursts(ts::SeriesId id,
                         const std::vector<burst::BurstRegion>& regions) {
  std::ostringstream out;
  out << "series " << id << "\n";
  for (const burst::BurstRegion& region : regions) {
    out << "  [" << region.start << "," << region.end
        << "] avg=" << FormatDouble(region.avg_value) << "\n";
  }
  return out.str();
}

std::string RenderMatches(ts::SeriesId id,
                          const std::vector<burst::BurstMatch>& matches) {
  std::ostringstream out;
  out << "query " << id << "\n";
  for (const burst::BurstMatch& match : matches) {
    out << "  " << match.series_id << " " << FormatDouble(match.bsim) << "\n";
  }
  return out.str();
}

// --- The frozen transcript, producible by either topology -------------------

template <typename Engine>
std::string SimilarTranscript(const Engine& engine) {
  std::string out;
  for (ts::SeriesId id : kProbeIds) {
    auto result = engine.SimilarTo(id, kK);
    EXPECT_TRUE(result.ok());
    out += RenderNeighbors(id, *result);
  }
  return out;
}

template <typename Engine>
std::string DtwTranscript(const Engine& engine) {
  std::string out;
  for (ts::SeriesId id : kProbeIds) {
    auto result = engine.SimilarToDtw(id, kK);
    EXPECT_TRUE(result.ok());
    out += RenderNeighbors(id, *result);
  }
  return out;
}

template <typename Engine>
std::string PeriodTranscript(const Engine& engine) {
  std::string out;
  for (ts::SeriesId id : kProbeIds) {
    auto result = engine.FindPeriods(id);
    EXPECT_TRUE(result.ok());
    out += RenderPeriods(id, *result);
  }
  return out;
}

template <typename Engine>
std::string BurstTranscript(const Engine& engine, core::BurstHorizon horizon) {
  std::string out;
  for (ts::SeriesId id : kProbeIds) {
    auto bursts = engine.BurstsOf(id, horizon);
    EXPECT_TRUE(bursts.ok());
    out += RenderBursts(id, *bursts);
    auto matches = engine.QueryByBurst(id, kK, horizon);
    EXPECT_TRUE(matches.ok());
    out += RenderMatches(id, *matches);
  }
  return out;
}

class GoldenRegressionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = core::S2Engine::Build(MakeCorpus(), EngineOptions());
    ASSERT_TRUE(built.ok());
    single_ = new core::S2Engine(std::move(built).ValueOrDie());
    shard::ShardedEngine::Options options;
    options.num_shards = 3;
    options.engine = EngineOptions();
    auto sharded = shard::ShardedEngine::Build(MakeCorpus(), options);
    ASSERT_TRUE(sharded.ok());
    sharded_ = new shard::ShardedEngine(std::move(sharded).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete single_;
    single_ = nullptr;
    delete sharded_;
    sharded_ = nullptr;
  }

  static core::S2Engine* single_;
  static shard::ShardedEngine* sharded_;
};

core::S2Engine* GoldenRegressionTest::single_ = nullptr;
shard::ShardedEngine* GoldenRegressionTest::sharded_ = nullptr;

TEST_F(GoldenRegressionTest, SimilarToMatchesGolden) {
  CheckGolden("similar_to", SimilarTranscript(*single_));
}

TEST_F(GoldenRegressionTest, SimilarToDtwMatchesGolden) {
  CheckGolden("similar_to_dtw", DtwTranscript(*single_));
}

TEST_F(GoldenRegressionTest, PeriodsMatchGolden) {
  CheckGolden("periods", PeriodTranscript(*single_));
}

TEST_F(GoldenRegressionTest, LongTermBurstsMatchGolden) {
  CheckGolden("bursts_long",
              BurstTranscript(*single_, core::BurstHorizon::kLongTerm));
}

TEST_F(GoldenRegressionTest, ShortTermBurstsMatchGolden) {
  CheckGolden("bursts_short",
              BurstTranscript(*single_, core::BurstHorizon::kShortTerm));
}

// The same files must be reproducible through the scatter-gather path: a
// merge or globalization bug shows up as a golden diff even if both
// topologies drift together relative to each other's tests.
TEST_F(GoldenRegressionTest, ShardedEngineReproducesEveryGolden) {
  if (UpdateMode()) GTEST_SKIP() << "goldens are written from the single engine";
  CheckGolden("similar_to", SimilarTranscript(*sharded_));
  CheckGolden("similar_to_dtw", DtwTranscript(*sharded_));
  CheckGolden("periods", PeriodTranscript(*sharded_));
  CheckGolden("bursts_long",
              BurstTranscript(*sharded_, core::BurstHorizon::kLongTerm));
  CheckGolden("bursts_short",
              BurstTranscript(*sharded_, core::BurstHorizon::kShortTerm));
}

}  // namespace
}  // namespace s2
