#!/usr/bin/env bash
# Full correctness matrix: builds and runs the test suite under
#   1. plain Debug (assertions + S2_DCHECK on),
#   2. AddressSanitizer,
#   3. ThreadSanitizer,
#   4. UndefinedBehaviorSanitizer,
# then runs clang-tidy via tools/lint.sh. Exits nonzero on the first
# configuration that fails to build or test, or if lint fails.
#
# Usage: tools/verify_all.sh [jobs]
#        tools/verify_all.sh faults [jobs]
#        tools/verify_all.sh sharding [jobs]
#        tools/verify_all.sh stream [jobs]
#        tools/verify_all.sh monitor [jobs]
#        tools/verify_all.sh analysis [jobs]
#        tools/verify_all.sh durability [jobs]
#        tools/verify_all.sh kernels [jobs]
#        tools/verify_all.sh approx [jobs]
#
# The `faults` profile is a focused resilience gate: it builds under
# AddressSanitizer and runs only the fault-injection / crash-safety tests
# (ctest label `resilience`, see tests/CMakeLists.txt) plus one pass of
# bench_faults — much faster than the full matrix, intended for iterating
# on the s2::io / s2::resilience layers.
#
# The `sharding` profile is the scatter-gather gate: it builds under
# ThreadSanitizer and runs the shard equivalence / stress / golden tests
# (ctest label `sharding`) plus the thread-pool contract tests and one short
# bench_shard pass — TSan over exactly the code that shares a pruning radius
# across threads.
#
# The `stream` profile is the streaming-ingestion gate: it builds under
# AddressSanitizer and runs the stream-labelled tests (WAL round-trip and
# torn-tail handling, incremental-vs-batch feature drift, delta-tier
# equivalence including the WAL crash-point sweep in
# stream_equivalence_test.cc) plus one short bench_stream pass that checks
# the delta-tier query-cost bar.
#
# The `monitor` profile is the standing-query gate: it builds under
# ThreadSanitizer (the alert queue's lock-free polls race the append path's
# pushes — see monitor_server_test.cc) and runs the monitor-labelled tests
# (registry state machines, alert-stream shard/maintenance equivalence, the
# monitor-WAL crash sweep) plus one short bench_monitor pass pricing the
# append-path evaluation cost.
#
# The `analysis` profile is the compile-time concurrency gate: with clang++
# on PATH it builds src/ under -Wthread-safety -Werror so every annotation
# in base/thread_annotations.h is actually checked (GCC compiles them to
# no-ops); without clang++ it falls back to the default compiler so the
# debug lock-rank checker still runs. Either way it then runs tools/lint.sh
# (concurrency clang-tidy checks) and the concurrency-labelled tests —
# the sync-layer unit tests (lock-rank inversion/CondVar), the thread-pool
# and scheduler contract tests, and the racy monitor/shard stress tests.
#
# The `durability` profile is the checkpoint/recovery gate: it builds under
# ASan+UBSan combined (the corruption fuzzers in fuzz_manifest_test.cc and
# fuzz_wal_segment_test.cc lean on the sanitizers to turn any latent UB in
# the decoders into hard failures) and runs the durability-labelled tests —
# snapshot/manifest codecs, WAL segmentation, snapshot+tail equivalence,
# and the process-level crash-restart chaos sweep — plus one bench_recovery
# pass that checks the bounded-replay bar.
#
# The `kernels` profile is the simd bit-compatibility gate: it builds under
# ASan+UBSan (misaligned vector loads and out-of-bounds tails become hard
# failures) and runs the kernels-labelled tests — the differential fuzz
# harness in simd_kernel_test.cc, the standardization edge cases, and the
# dispatch-matrix re-runs of the golden/equivalence suites — once with
# default dispatch and once with S2_SIMD=off, so both sides of every
# backend-vs-scalar comparison are themselves exercised under sanitizers.
# (tools/lint.sh discovers src/simd automatically via its `find src` walk.)
#
# The `approx` profile is the approximate-tier gate: it builds under
# ASan+UBSan (the summary serialization fuzzers in
# fuzz_approx_summary_test.cc lean on the sanitizers the same way the other
# decoder fuzzers do) and runs the approx-labelled tests — the soundness /
# determinism unit suite, the recall + shard-invariance harness, the serving
# degrade-ladder and cache-identity tests — plus one small bench_approx pass
# that checks the recall/speedup bar at smoke scale.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if [ "${1:-}" = "faults" ]; then
  jobs="${2:-$(nproc 2> /dev/null || echo 4)}"
  build_dir="${repo_root}/build-verify-faults"
  echo "==== [faults] ASan build + resilience-labelled tests + bench_faults ===="
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DS2_SANITIZE=address > "${build_dir}.configure.log" 2>&1 \
    || { echo "FAIL [faults]: configure (see ${build_dir}.configure.log)" >&2; exit 1; }
  cmake --build "${build_dir}" -j "${jobs}" > "${build_dir}.build.log" 2>&1 \
    || { echo "FAIL [faults]: build (see ${build_dir}.build.log)" >&2; exit 1; }
  ctest --test-dir "${build_dir}" -L resilience --output-on-failure -j "${jobs}" \
    || { echo "FAIL [faults]: resilience tests" >&2; exit 1; }
  "${build_dir}/bench/bench_faults" --series 128 --days 128 --requests 120 \
    || { echo "FAIL [faults]: bench_faults" >&2; exit 1; }
  echo "verify_all.sh: faults profile green."
  exit 0
fi

if [ "${1:-}" = "sharding" ]; then
  jobs="${2:-$(nproc 2> /dev/null || echo 4)}"
  build_dir="${repo_root}/build-verify-sharding"
  echo "==== [sharding] TSan build + sharding-labelled tests + bench_shard ===="
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DS2_SANITIZE=thread > "${build_dir}.configure.log" 2>&1 \
    || { echo "FAIL [sharding]: configure (see ${build_dir}.configure.log)" >&2; exit 1; }
  cmake --build "${build_dir}" -j "${jobs}" > "${build_dir}.build.log" 2>&1 \
    || { echo "FAIL [sharding]: build (see ${build_dir}.build.log)" >&2; exit 1; }
  ctest --test-dir "${build_dir}" -L sharding --output-on-failure -j "${jobs}" \
    || { echo "FAIL [sharding]: sharding tests" >&2; exit 1; }
  "${build_dir}/tests/thread_pool_test" > /dev/null \
    || { echo "FAIL [sharding]: thread_pool_test" >&2; exit 1; }
  "${build_dir}/bench/bench_shard" --series 256 --days 128 --requests 40 \
    --shards-max 4 \
    || { echo "FAIL [sharding]: bench_shard" >&2; exit 1; }
  echo "verify_all.sh: sharding profile green."
  exit 0
fi

if [ "${1:-}" = "stream" ]; then
  jobs="${2:-$(nproc 2> /dev/null || echo 4)}"
  build_dir="${repo_root}/build-verify-stream"
  echo "==== [stream] ASan build + stream-labelled tests + bench_stream ===="
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DS2_SANITIZE=address > "${build_dir}.configure.log" 2>&1 \
    || { echo "FAIL [stream]: configure (see ${build_dir}.configure.log)" >&2; exit 1; }
  cmake --build "${build_dir}" -j "${jobs}" > "${build_dir}.build.log" 2>&1 \
    || { echo "FAIL [stream]: build (see ${build_dir}.build.log)" >&2; exit 1; }
  ctest --test-dir "${build_dir}" -L stream --output-on-failure -j "${jobs}" \
    || { echo "FAIL [stream]: stream tests" >&2; exit 1; }
  "${build_dir}/bench/bench_stream" --series 256 --days 128 --appends 600 \
    --requests 60 --delta 32 \
    || { echo "FAIL [stream]: bench_stream" >&2; exit 1; }
  echo "verify_all.sh: stream profile green."
  exit 0
fi

if [ "${1:-}" = "monitor" ]; then
  jobs="${2:-$(nproc 2> /dev/null || echo 4)}"
  build_dir="${repo_root}/build-verify-monitor"
  echo "==== [monitor] TSan build + monitor-labelled tests + bench_monitor ===="
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DS2_SANITIZE=thread > "${build_dir}.configure.log" 2>&1 \
    || { echo "FAIL [monitor]: configure (see ${build_dir}.configure.log)" >&2; exit 1; }
  cmake --build "${build_dir}" -j "${jobs}" > "${build_dir}.build.log" 2>&1 \
    || { echo "FAIL [monitor]: build (see ${build_dir}.build.log)" >&2; exit 1; }
  ctest --test-dir "${build_dir}" -L monitor --output-on-failure -j "${jobs}" \
    || { echo "FAIL [monitor]: monitor tests" >&2; exit 1; }
  "${build_dir}/bench/bench_monitor" --series 128 --days 128 --appends 600 \
    --watched 32 --json "${build_dir}/BENCH_monitor.json" \
    || { echo "FAIL [monitor]: bench_monitor" >&2; exit 1; }
  echo "verify_all.sh: monitor profile green."
  exit 0
fi

if [ "${1:-}" = "analysis" ]; then
  jobs="${2:-$(nproc 2> /dev/null || echo 4)}"
  build_dir="${repo_root}/build-verify-analysis"
  echo "==== [analysis] thread-safety build + lint + concurrency tests ===="
  extra_flags=()
  if command -v clang++ > /dev/null 2>&1 && command -v clang > /dev/null 2>&1; then
    echo "[analysis] clang found: building with -Wthread-safety -Werror"
    extra_flags+=(-DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++)
  else
    echo "[analysis] clang++ not on PATH; thread-safety annotations compile" \
         "to no-ops under this compiler. Building with the default toolchain" \
         "so the debug lock-rank checker still gates."
  fi
  # Debug: S2_DCHECK on, so the runtime lock-rank checker is compiled in and
  # the inversion test in sync_test.cc asserts the structured failure.
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    "${extra_flags[@]+"${extra_flags[@]}"}" > "${build_dir}.configure.log" 2>&1 \
    || { echo "FAIL [analysis]: configure (see ${build_dir}.configure.log)" >&2; exit 1; }
  cmake --build "${build_dir}" -j "${jobs}" > "${build_dir}.build.log" 2>&1 \
    || { echo "FAIL [analysis]: build (see ${build_dir}.build.log)" >&2; exit 1; }
  "${repo_root}/tools/lint.sh" "${build_dir}" \
    || { echo "FAIL [analysis]: lint" >&2; exit 1; }
  ctest --test-dir "${build_dir}" -L concurrency --output-on-failure -j "${jobs}" \
    || { echo "FAIL [analysis]: concurrency tests" >&2; exit 1; }
  echo "verify_all.sh: analysis profile green."
  exit 0
fi

if [ "${1:-}" = "durability" ]; then
  jobs="${2:-$(nproc 2> /dev/null || echo 4)}"
  build_dir="${repo_root}/build-verify-durability"
  echo "==== [durability] ASan+UBSan build + durability-labelled tests + bench_recovery ===="
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DS2_SANITIZE=address,undefined > "${build_dir}.configure.log" 2>&1 \
    || { echo "FAIL [durability]: configure (see ${build_dir}.configure.log)" >&2; exit 1; }
  cmake --build "${build_dir}" -j "${jobs}" > "${build_dir}.build.log" 2>&1 \
    || { echo "FAIL [durability]: build (see ${build_dir}.build.log)" >&2; exit 1; }
  ctest --test-dir "${build_dir}" -L durability --output-on-failure -j "${jobs}" \
    || { echo "FAIL [durability]: durability tests" >&2; exit 1; }
  "${build_dir}/bench/bench_recovery" --series 64 --days 64 --appends 600 \
    --interval 128 --json "${build_dir}/BENCH_recovery.json" \
    || { echo "FAIL [durability]: bench_recovery" >&2; exit 1; }
  echo "verify_all.sh: durability profile green."
  exit 0
fi

if [ "${1:-}" = "kernels" ]; then
  jobs="${2:-$(nproc 2> /dev/null || echo 4)}"
  build_dir="${repo_root}/build-verify-kernels"
  echo "==== [kernels] ASan+UBSan build + kernels-labelled tests, both dispatch modes ===="
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DS2_SANITIZE=address,undefined > "${build_dir}.configure.log" 2>&1 \
    || { echo "FAIL [kernels]: configure (see ${build_dir}.configure.log)" >&2; exit 1; }
  cmake --build "${build_dir}" -j "${jobs}" > "${build_dir}.build.log" 2>&1 \
    || { echo "FAIL [kernels]: build (see ${build_dir}.build.log)" >&2; exit 1; }
  ctest --test-dir "${build_dir}" -L kernels --output-on-failure -j "${jobs}" \
    || { echo "FAIL [kernels]: kernels tests (default dispatch)" >&2; exit 1; }
  S2_SIMD=off ctest --test-dir "${build_dir}" -L kernels --output-on-failure \
    -j "${jobs}" \
    || { echo "FAIL [kernels]: kernels tests (S2_SIMD=off)" >&2; exit 1; }
  "${build_dir}/bench/bench_kernels" --reps 2000 \
    --json "${build_dir}/BENCH_kernels.json" \
    || { echo "FAIL [kernels]: bench_kernels" >&2; exit 1; }
  echo "verify_all.sh: kernels profile green."
  exit 0
fi

if [ "${1:-}" = "approx" ]; then
  jobs="${2:-$(nproc 2> /dev/null || echo 4)}"
  build_dir="${repo_root}/build-verify-approx"
  echo "==== [approx] ASan+UBSan build + approx-labelled tests + bench_approx ===="
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DS2_SANITIZE=address,undefined > "${build_dir}.configure.log" 2>&1 \
    || { echo "FAIL [approx]: configure (see ${build_dir}.configure.log)" >&2; exit 1; }
  cmake --build "${build_dir}" -j "${jobs}" > "${build_dir}.build.log" 2>&1 \
    || { echo "FAIL [approx]: build (see ${build_dir}.build.log)" >&2; exit 1; }
  ctest --test-dir "${build_dir}" -L approx --output-on-failure -j "${jobs}" \
    || { echo "FAIL [approx]: approx tests" >&2; exit 1; }
  "${build_dir}/bench/bench_approx" --series 2048 --queries 50 \
    --json "${build_dir}/BENCH_approx.json" \
    || { echo "FAIL [approx]: bench_approx" >&2; exit 1; }
  echo "verify_all.sh: approx profile green."
  exit 0
fi

jobs="${1:-$(nproc 2> /dev/null || echo 4)}"
failed=0

run_config() {
  local label="$1" build_dir="$2" sanitize="$3"
  echo "==== [${label}] configure + build + ctest ===="
  if ! cmake -S "${repo_root}" -B "${build_dir}" \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DS2_SANITIZE="${sanitize}" > "${build_dir}.configure.log" 2>&1; then
    echo "FAIL [${label}]: configure (see ${build_dir}.configure.log)" >&2
    return 1
  fi
  if ! cmake --build "${build_dir}" -j "${jobs}" > "${build_dir}.build.log" 2>&1; then
    echo "FAIL [${label}]: build (see ${build_dir}.build.log)" >&2
    return 1
  fi
  if ! ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
      > "${build_dir}.ctest.log" 2>&1; then
    echo "FAIL [${label}]: tests (see ${build_dir}.ctest.log)" >&2
    return 1
  fi
  echo "PASS [${label}]"
}

run_config "plain" "${repo_root}/build-verify-plain" "" || failed=1
run_config "asan" "${repo_root}/build-verify-asan" "address" || failed=1
run_config "tsan" "${repo_root}/build-verify-tsan" "thread" || failed=1
run_config "ubsan" "${repo_root}/build-verify-ubsan" "undefined" || failed=1

echo "==== [lint] clang-tidy ===="
if ! "${repo_root}/tools/lint.sh" "${repo_root}/build-verify-plain"; then
  echo "FAIL [lint]" >&2
  failed=1
fi

if [ "${failed}" -ne 0 ]; then
  echo "verify_all.sh: FAILURES detected." >&2
  exit 1
fi
echo "verify_all.sh: all configurations green."
