#ifndef S2_STORAGE_CORPUS_IO_H_
#define S2_STORAGE_CORPUS_IO_H_

#include <string>

#include "common/result.h"
#include "timeseries/time_series.h"

namespace s2::storage {

/// Binary serialization of a whole corpus (names, start days, daily counts).
///
/// Format (native endianness):
///   magic "S2CORP01" | u64 series_count
///   per series: u32 name_length | name bytes | i32 start_day |
///               u64 value_count | doubles
///
/// The S2 tool keeps its sequence database on disk and reloads it across
/// sessions; this is the corresponding library facility.
Status WriteCorpus(const std::string& path, const ts::Corpus& corpus);

/// Reads a corpus previously written by `WriteCorpus`.
Result<ts::Corpus> ReadCorpus(const std::string& path);

}  // namespace s2::storage

#endif  // S2_STORAGE_CORPUS_IO_H_
