file(REMOVE_RECURSE
  "CMakeFiles/bench_index_perf.dir/bench_index_perf.cc.o"
  "CMakeFiles/bench_index_perf.dir/bench_index_perf.cc.o.d"
  "bench_index_perf"
  "bench_index_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
