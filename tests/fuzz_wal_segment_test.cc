#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fuzz_util.h"
#include "io/env.h"
#include "io/wal_segment.h"
#include "stream/wal.h"

namespace s2::stream {
namespace {

// Corruption fuzzing for the segmented WAL layout: any mutation of a
// segment header or body must come back from `Wal::Open` as either a
// clean open (torn tails and rotation artifacts are dropped and counted)
// or `Corruption` — never a crash or out-of-bounds read. Run under the
// durability profile's sanitizers, this is the UB check the segment
// format's bounds reasoning rests on.

constexpr uint64_t kRotateBytes = 3 * Wal::kRecordBytes;
constexpr uint32_t kRecords = 10;  // Rotates into base + 3 segments.

std::function<Status(const WalRecord&)> Discard() {
  return [](const WalRecord&) { return Status::OK(); };
}

// Builds a fresh rotated log at `path` and returns every live file of it,
// in segment order (base first).
std::vector<std::string> BuildRotatedLog(const std::string& path) {
  Wal::Options options;
  options.rotate_bytes = kRotateBytes;
  auto wal = Wal::Open(io::Env::Default(), path, Discard(), nullptr, options);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  for (uint32_t i = 0; i < kRecords; ++i) {
    EXPECT_TRUE((*wal)->Append({i, 10.0 * i}).ok());
  }
  auto segments = Wal::ListSegments(io::Env::Default(), path);
  EXPECT_TRUE(segments.ok()) << segments.status().ToString();
  std::vector<std::string> files;
  for (const auto& segment : *segments) files.push_back(segment.path);
  return files;
}

void RemoveLog(const std::vector<std::string>& files) {
  for (const auto& file : files) std::remove(file.c_str());
}

// Opens the mutated log and checks the contract: OK (replaying a bounded
// record count, possibly with dropped bytes) or Corruption, nothing else.
void ExpectCleanOpenOrCorruption(const std::string& path,
                                 uint64_t replay_from) {
  Wal::Options options;
  options.rotate_bytes = kRotateBytes;
  options.replay_from = replay_from;
  auto wal = Wal::Open(io::Env::Default(), path, Discard(), nullptr, options);
  if (wal.ok()) {
    EXPECT_LE((*wal)->record_count(), uint64_t{1} << 20);
  } else {
    EXPECT_EQ(wal.status().code(), StatusCode::kCorruption)
        << wal.status().ToString();
  }
}

TEST(FuzzWalSegment, MutatedSegmentFilesNeverCrashTheOpen) {
  s2::Rng rng(0xBADB10C5);
  const std::string path = fuzz::TempPath("s2_fuzz_walseg");
  const std::vector<std::string> files = BuildRotatedLog(path);
  ASSERT_GE(files.size(), 3u);
  std::vector<std::vector<char>> images;
  for (const auto& file : files) images.push_back(fuzz::ReadFileBytes(file));

  for (int round = 0; round < 200; ++round) {
    const size_t victim = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(files.size()) - 1));
    fuzz::WriteFileBytes(files[victim], fuzz::Mutate(images[victim], &rng));
    ExpectCleanOpenOrCorruption(path, /*replay_from=*/0);
    // Restore the victim so each round mutates exactly one pristine file.
    fuzz::WriteFileBytes(files[victim], images[victim]);
  }
  RemoveLog(files);
}

TEST(FuzzWalSegment, MutatedHeaderBytesNeverCrashTheOpen) {
  s2::Rng rng(0x5E6D0E57);
  const std::string path = fuzz::TempPath("s2_fuzz_walseg_hdr");
  const std::vector<std::string> files = BuildRotatedLog(path);
  ASSERT_GE(files.size(), 3u);
  std::vector<std::vector<char>> images;
  for (const auto& file : files) images.push_back(fuzz::ReadFileBytes(file));

  for (int round = 0; round < 200; ++round) {
    // Rotated segments only (index >= 1): flip a byte inside the 40-byte
    // header, the part a crash can never tear mid-history.
    const size_t victim = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(files.size()) - 1));
    std::vector<char> mutated = images[victim];
    ASSERT_GE(mutated.size(), io::walseg::kSegmentHeaderBytes);
    const size_t at = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(io::walseg::kSegmentHeaderBytes) - 1));
    mutated[at] = static_cast<char>(rng.UniformInt(0, 255));
    fuzz::WriteFileBytes(files[victim], mutated);
    ExpectCleanOpenOrCorruption(path, /*replay_from=*/0);
    fuzz::WriteFileBytes(files[victim], images[victim]);
  }
  RemoveLog(files);
}

TEST(FuzzWalSegment, MutationsUnderAnAnchoredReplayNeverCrashTheOpen) {
  s2::Rng rng(0xA2C407ED);
  const std::string path = fuzz::TempPath("s2_fuzz_walseg_anchor");
  const std::vector<std::string> files = BuildRotatedLog(path);
  ASSERT_GE(files.size(), 3u);
  std::vector<std::vector<char>> images;
  for (const auto& file : files) images.push_back(fuzz::ReadFileBytes(file));

  for (int round = 0; round < 200; ++round) {
    const size_t victim = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(files.size()) - 1));
    fuzz::WriteFileBytes(files[victim], fuzz::Mutate(images[victim], &rng));
    // An anchored open additionally cross-checks the anchor against the
    // surviving history; the contract is the same.
    ExpectCleanOpenOrCorruption(path, /*replay_from=*/4);
    fuzz::WriteFileBytes(files[victim], images[victim]);
  }
  RemoveLog(files);
}

TEST(FuzzWalSegment, HeaderTruncationAtEveryByteIsHandled) {
  const std::string path = fuzz::TempPath("s2_fuzz_walseg_trunc");
  const std::vector<std::string> files = BuildRotatedLog(path);
  ASSERT_GE(files.size(), 3u);
  // Truncating the LAST segment inside its header is exactly what a crashed
  // rotation leaves; every cut must open cleanly (artifact dropped) with
  // the previous segment as the live tail. The same cut in a MIDDLE
  // segment loses acknowledged history and must fail as Corruption.
  const std::vector<char> last = fuzz::ReadFileBytes(files.back());
  const std::vector<char> middle = fuzz::ReadFileBytes(files[1]);
  for (size_t cut = 0; cut < io::walseg::kSegmentHeaderBytes; ++cut) {
    fuzz::WriteFileBytes(
        files.back(),
        std::vector<char>(last.begin(),
                          last.begin() + static_cast<ptrdiff_t>(cut)));
    Wal::Options options;
    options.rotate_bytes = kRotateBytes;
    auto wal = Wal::Open(io::Env::Default(), path, Discard(), nullptr,
                         options);
    ASSERT_TRUE(wal.ok()) << "cut at " << cut << ": "
                          << wal.status().ToString();
    // The artifact (1 record lived in the full last segment) is gone; the
    // 9 records of the sealed chain survive.
    EXPECT_EQ((*wal)->record_count(), kRecords - 1) << "cut at " << cut;
    wal->reset();
    fuzz::WriteFileBytes(files.back(), last);

    fuzz::WriteFileBytes(
        files[1],
        std::vector<char>(middle.begin(),
                          middle.begin() + static_cast<ptrdiff_t>(cut)));
    auto broken = Wal::Open(io::Env::Default(), path, Discard(), nullptr,
                            options);
    EXPECT_FALSE(broken.ok()) << "middle cut at " << cut;
    fuzz::WriteFileBytes(files[1], middle);
  }
  RemoveLog(files);
}

}  // namespace
}  // namespace s2::stream
