#ifndef S2_INDEX_KNN_H_
#define S2_INDEX_KNN_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "timeseries/time_series.h"

namespace s2::index {

/// One nearest-neighbor answer.
struct Neighbor {
  ts::SeriesId id = ts::kInvalidSeriesId;
  double distance = 0.0;
};

/// A bounded best-k list ordered by ascending distance.
///
/// Keeps at most `k` neighbors; `Threshold()` is the current k-th distance
/// (the pruning radius), +infinity until the list fills.
class BestList {
 public:
  explicit BestList(size_t k) : k_(k) {}

  /// Offers a candidate; keeps it if it beats the current k-th distance.
  void Offer(ts::SeriesId id, double distance) {
    if (items_.size() == k_ && distance >= Threshold()) return;
    // Insert sorted; lists are tiny (k is small), linear insertion is fine.
    auto it = std::lower_bound(
        items_.begin(), items_.end(), distance,
        [](const Neighbor& n, double d) { return n.distance < d; });
    items_.insert(it, Neighbor{id, distance});
    if (items_.size() > k_) items_.pop_back();
  }

  /// Current pruning radius: k-th best distance, +infinity while unfilled.
  double Threshold() const {
    if (items_.size() < k_) return std::numeric_limits<double>::infinity();
    return items_.back().distance;
  }

  bool Full() const { return items_.size() == k_; }
  const std::vector<Neighbor>& items() const { return items_; }
  std::vector<Neighbor> Take() && { return std::move(items_); }

 private:
  size_t k_;
  std::vector<Neighbor> items_;
};

}  // namespace s2::index

#endif  // S2_INDEX_KNN_H_
