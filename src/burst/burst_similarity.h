#ifndef S2_BURST_BURST_SIMILARITY_H_
#define S2_BURST_BURST_SIMILARITY_H_

#include <vector>

#include "burst/burst_detector.h"

namespace s2::burst {

/// Number of shared days between two bursts (0 when disjoint). Days are
/// inclusive on both ends, matching `BurstRegion::length`.
int32_t Overlap(const BurstRegion& a, const BurstRegion& b);

/// The paper's `intersect`: the mean of the overlap fractions relative to
/// each burst's length. In [0, 1]; 1 iff the bursts coincide exactly.
double Intersect(const BurstRegion& a, const BurstRegion& b);

/// The paper's `similarity`: closeness of the average burst values,
/// `1 / (1 + |avg_a - avg_b|)`. (The paper prints the difference without the
/// absolute value — an obvious typo, since a negative difference would make
/// the "similarity" exceed 1 or diverge.) In (0, 1].
double ValueSimilarity(const BurstRegion& a, const BurstRegion& b);

/// The paper's burst similarity measure (Section 6.3):
///   `BSim(X, Y) = sum_i sum_j Intersect(B_i, B_j) * ValueSimilarity(B_i, B_j)`.
/// Only overlapping pairs contribute (Intersect is 0 otherwise). Symmetric.
double BSim(const std::vector<BurstRegion>& x, const std::vector<BurstRegion>& y);

}  // namespace s2::burst

#endif  // S2_BURST_BURST_SIMILARITY_H_
