file(REMOVE_RECURSE
  "CMakeFiles/s2_dsp.dir/fft.cc.o"
  "CMakeFiles/s2_dsp.dir/fft.cc.o.d"
  "CMakeFiles/s2_dsp.dir/moving_average.cc.o"
  "CMakeFiles/s2_dsp.dir/moving_average.cc.o.d"
  "CMakeFiles/s2_dsp.dir/periodogram.cc.o"
  "CMakeFiles/s2_dsp.dir/periodogram.cc.o.d"
  "CMakeFiles/s2_dsp.dir/stats.cc.o"
  "CMakeFiles/s2_dsp.dir/stats.cc.o.d"
  "CMakeFiles/s2_dsp.dir/wavelet.cc.o"
  "CMakeFiles/s2_dsp.dir/wavelet.cc.o.d"
  "libs2_dsp.a"
  "libs2_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
