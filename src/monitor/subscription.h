#ifndef S2_MONITOR_SUBSCRIPTION_H_
#define S2_MONITOR_SUBSCRIPTION_H_

#include <cstdint>
#include <vector>

#include "timeseries/time_series.h"

namespace s2::monitor {

/// Identifies one standing subscription for its whole lifetime. Assigned by
/// the registering layer (the server hands out a dense counter restored
/// from the monitor WAL), never reused.
using SubscriptionId = uint64_t;
inline constexpr SubscriptionId kInvalidSubscriptionId =
    static_cast<SubscriptionId>(-1);

/// The three standing-query shapes (DESIGN.md §9). Each is the continuous
/// form of one of the paper's pull verbs: burst detection (§6), period
/// detection (§5) and similarity search (§4) run forever over the stream.
enum class SubscriptionKind : uint32_t {
  /// Moving-average ratio crossing with hysteresis: fire when the trailing
  /// `window`-day moving average rises to `enter_ratio` times the
  /// full-window mean, re-arm once it falls below `exit_ratio` times it.
  kBurstThreshold = 0,
  /// Dominant-periodicity tracking against the exponential threshold
  /// `T_p = -mu ln(p)`: fire when a significant period appears, disappears,
  /// or the dominant periodogram bin moves.
  kPeriodicityChange = 1,
  /// "Alert when series X enters the kNN ball of query Q within radius r":
  /// fire when the watched series' standardized row crosses into (and back
  /// out of) the Euclidean ball around the standardized query.
  kSimilarityWatch = 2,
};

struct BurstThresholdParams {
  /// Trailing moving-average span, in days; must fit the corpus window.
  uint32_t window = 7;
  /// Fire when MA(window) / mean(full window) reaches this ratio.
  double enter_ratio = 1.5;
  /// Re-arm when the ratio falls strictly below this (hysteresis: must not
  /// exceed enter_ratio, or the state machine would chatter on the bound).
  double exit_ratio = 1.2;
};

struct SimilarityWatchParams {
  /// The query sequence, in *raw* space (standardized at registration with
  /// the same dsp::Standardize every engine row goes through, so replaying
  /// a logged subscription reproduces the working state bit-for-bit). Must
  /// match the corpus window length.
  std::vector<double> query;
  /// Fire when the standardized Euclidean distance drops to <= radius.
  double radius = 1.0;
  /// Re-arm when the distance exceeds this; 0 means "same as radius".
  double exit_radius = 0.0;
};

/// One registered standing query. `series` is the id alerts report — the
/// *global* id when a sharding layer routes the registration, which is what
/// keeps the alert stream shard-count invisible; single engines use their
/// own ids. Kind-specific parameters live side by side (only the active
/// member is consulted); keeping the struct flat keeps the WAL encoding and
/// the registry trivially copyable.
struct Subscription {
  SubscriptionId id = kInvalidSubscriptionId;
  SubscriptionKind kind = SubscriptionKind::kBurstThreshold;
  ts::SeriesId series = ts::kInvalidSeriesId;
  BurstThresholdParams burst;
  SimilarityWatchParams similarity;
};

/// What a fired subscription reports.
enum class AlertKind : uint32_t {
  kBurstBegin = 0,       ///< Ratio rose to enter_ratio.
  kBurstEnd = 1,         ///< Ratio fell below exit_ratio.
  kPeriodGained = 2,     ///< A bin first crossed the exponential threshold.
  kPeriodShift = 3,      ///< The dominant significant bin moved.
  kPeriodLost = 4,       ///< No bin clears the threshold any more.
  kSimilarityEnter = 5,  ///< Distance dropped into the query ball.
  kSimilarityLeave = 6,  ///< Distance left the (exit-)ball again.
};

/// One fired alert. `seq` is assigned by the delivery queue in fire order
/// and is globally monotone across all series and shards — consumers detect
/// overflow-dropped alerts as gaps in the sequence. The pinned delivery
/// order is (seq, series): seq alone is already total, the series id is the
/// documented tiebreak so the contract names a deterministic order even if
/// a future queue ever batches.
struct Alert {
  uint64_t seq = 0;
  SubscriptionId subscription = kInvalidSubscriptionId;
  AlertKind kind = AlertKind::kBurstBegin;
  /// Global series id (see Subscription::series).
  ts::SeriesId series = ts::kInvalidSeriesId;
  /// Absolute day index of the appended sample that triggered the alert.
  int64_t day = 0;
  /// The observed trigger value: the MA ratio, the dominant bin's power, or
  /// the Euclidean distance.
  double value = 0.0;
  /// The bound it crossed: enter/exit ratio, `T_p`, or the (exit) radius.
  double threshold = 0.0;
  /// Periodicity alerts: the dominant periodogram bin involved.
  uint32_t bin = 0;
};

}  // namespace s2::monitor

#endif  // S2_MONITOR_SUBSCRIPTION_H_
