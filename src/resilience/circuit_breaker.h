#ifndef S2_RESILIENCE_CIRCUIT_BREAKER_H_
#define S2_RESILIENCE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "base/sync.h"
#include "base/thread_annotations.h"

namespace s2::resilience {

/// A classic three-state circuit breaker.
///
/// Closed (healthy): every call is allowed; `consecutive_failures` counts
/// back-to-back failures and trips the breaker Open at `failure_threshold`.
/// Open: calls are rejected without touching the failing dependency, turning
/// retry storms into fast load-shedding; after `cooldown` one probe is let
/// through (Half-open). Half-open: a success closes the breaker, a failure
/// re-opens it and restarts the cooldown.
///
/// The clock is injectable so tests drive state transitions without real
/// sleeps. Thread-safe.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive failures that trip the breaker.
    int failure_threshold = 5;
    /// How long the breaker stays Open before probing.
    std::chrono::milliseconds cooldown{1000};
  };

  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  explicit CircuitBreaker(Options options);
  CircuitBreaker(Options options, Clock clock);

  /// True when a call may proceed. In Open state this flips to Half-open
  /// (and returns true) once the cooldown has elapsed — exactly one caller
  /// wins the probe; the rest keep getting false until the probe reports.
  bool AllowRequest();

  /// Reports the outcome of an allowed call.
  void RecordSuccess();
  void RecordFailure();

  /// Reports an allowed call that failed for reasons unrelated to the
  /// protected dependency (caller errors: NotFound, InvalidArgument...).
  /// Every allowed call must report exactly one of the three outcomes —
  /// otherwise a half-open probe's slot leaks and the breaker rejects
  /// traffic forever. The request did reach the dependency, so a half-open
  /// probe closes the breaker; unlike RecordSuccess, the Closed-state
  /// failure streak is left alone so caller errors interleaved with
  /// infrastructure failures cannot mask a flapping dependency.
  void RecordNonFailure();

  State state() const;

  /// Times the breaker rejected a request (for metrics).
  uint64_t rejected_count() const;
  /// Times the breaker tripped Closed/HalfOpen -> Open.
  uint64_t trip_count() const;

 private:
  Options options_;
  Clock clock_;

  mutable sync::Mutex mu_{sync::LockRank::kCircuitBreaker,
                          "resilience::CircuitBreaker"};
  State state_ S2_GUARDED_BY(mu_) = State::kClosed;
  int consecutive_failures_ S2_GUARDED_BY(mu_) = 0;
  bool probe_in_flight_ S2_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point opened_at_ S2_GUARDED_BY(mu_){};
  uint64_t rejected_ S2_GUARDED_BY(mu_) = 0;
  uint64_t trips_ S2_GUARDED_BY(mu_) = 0;
};

}  // namespace s2::resilience

#endif  // S2_RESILIENCE_CIRCUIT_BREAKER_H_
