#ifndef S2_SIMD_VEC_H_
#define S2_SIMD_VEC_H_

/// Backend vector wrappers: four double lanes per logical vector, one
/// struct per ISA. Each backend exposes the identical static interface
/// consumed by the generic kernels in kernels_inl.h:
///
///   struct B {
///     using Vec = ...;                       // 4 double lanes
///     static Vec Zero();
///     static Vec Broadcast(double v);
///     static Vec Load(const double* p);      // 4 consecutive, unaligned
///     static void Store(double* p, Vec v);
///     static Vec Add(Vec a, Vec b);          // lane-wise IEEE ops
///     static Vec Sub(Vec a, Vec b);
///     static Vec Mul(Vec a, Vec b);
///     static Vec Div(Vec a, Vec b);
///     static Vec GtZeroize(Vec x, Vec y, Vec v);  // lane: x>y ? v : +0.0
///     static double Reduce(Vec v);           // (l0+l2)+(l1+l3), exactly
///   };
///
/// Lane-wise +-*/ are IEEE-754 deterministic, GtZeroize is a bitwise
/// mask-and (comparisons with NaN are false, so NaN lanes zeroize — same
/// as the scalar ternary), and every Reduce implements the same tree, so
/// any two backends are bit-interchangeable. Only the ISA blocks that the
/// current translation unit is compiled for are defined; kernels_scalar.cc
/// sees just VecScalar while kernels_avx2.cc (built with -mavx2) also sees
/// VecAvx2.
///
/// Keep FMA out: these translation units build with -ffp-contract=off and
/// no backend uses fused ops, so a*b+c never contracts on any ISA
/// (aarch64 would otherwise fuse by default and break bit-compatibility).

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace s2::simd::detail {

struct VecScalar {
  struct Vec {
    double l0, l1, l2, l3;
  };
  static Vec Zero() { return {0.0, 0.0, 0.0, 0.0}; }
  static Vec Broadcast(double v) { return {v, v, v, v}; }
  static Vec Load(const double* p) { return {p[0], p[1], p[2], p[3]}; }
  static void Store(double* p, Vec v) {
    p[0] = v.l0;
    p[1] = v.l1;
    p[2] = v.l2;
    p[3] = v.l3;
  }
  static Vec Add(Vec a, Vec b) {
    return {a.l0 + b.l0, a.l1 + b.l1, a.l2 + b.l2, a.l3 + b.l3};
  }
  static Vec Sub(Vec a, Vec b) {
    return {a.l0 - b.l0, a.l1 - b.l1, a.l2 - b.l2, a.l3 - b.l3};
  }
  static Vec Mul(Vec a, Vec b) {
    return {a.l0 * b.l0, a.l1 * b.l1, a.l2 * b.l2, a.l3 * b.l3};
  }
  static Vec Div(Vec a, Vec b) {
    return {a.l0 / b.l0, a.l1 / b.l1, a.l2 / b.l2, a.l3 / b.l3};
  }
  static Vec GtZeroize(Vec x, Vec y, Vec v) {
    return {x.l0 > y.l0 ? v.l0 : 0.0, x.l1 > y.l1 ? v.l1 : 0.0,
            x.l2 > y.l2 ? v.l2 : 0.0, x.l3 > y.l3 ? v.l3 : 0.0};
  }
  static double Reduce(Vec v) { return (v.l0 + v.l2) + (v.l1 + v.l3); }
};

#if defined(__SSE2__)
// Two 128-bit halves: lo = (l0, l1), hi = (l2, l3).
struct VecSse2 {
  struct Vec {
    __m128d lo, hi;
  };
  static Vec Zero() { return {_mm_setzero_pd(), _mm_setzero_pd()}; }
  static Vec Broadcast(double v) { return {_mm_set1_pd(v), _mm_set1_pd(v)}; }
  static Vec Load(const double* p) {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  static void Store(double* p, Vec v) {
    _mm_storeu_pd(p, v.lo);
    _mm_storeu_pd(p + 2, v.hi);
  }
  static Vec Add(Vec a, Vec b) {
    return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
  }
  static Vec Sub(Vec a, Vec b) {
    return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
  }
  static Vec Mul(Vec a, Vec b) {
    return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
  }
  static Vec Div(Vec a, Vec b) {
    return {_mm_div_pd(a.lo, b.lo), _mm_div_pd(a.hi, b.hi)};
  }
  static Vec GtZeroize(Vec x, Vec y, Vec v) {
    return {_mm_and_pd(_mm_cmpgt_pd(x.lo, y.lo), v.lo),
            _mm_and_pd(_mm_cmpgt_pd(x.hi, y.hi), v.hi)};
  }
  static double Reduce(Vec v) {
    const __m128d s = _mm_add_pd(v.lo, v.hi);  // (l0+l2, l1+l3)
    const __m128d swapped = _mm_unpackhi_pd(s, s);
    return _mm_cvtsd_f64(_mm_add_sd(s, swapped));
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
// One 256-bit register: lanes (l0, l1, l2, l3).
struct VecAvx2 {
  using Vec = __m256d;
  static Vec Zero() { return _mm256_setzero_pd(); }
  static Vec Broadcast(double v) { return _mm256_set1_pd(v); }
  static Vec Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, Vec v) { _mm256_storeu_pd(p, v); }
  static Vec Add(Vec a, Vec b) { return _mm256_add_pd(a, b); }
  static Vec Sub(Vec a, Vec b) { return _mm256_sub_pd(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm256_mul_pd(a, b); }
  static Vec Div(Vec a, Vec b) { return _mm256_div_pd(a, b); }
  static Vec GtZeroize(Vec x, Vec y, Vec v) {
    return _mm256_and_pd(_mm256_cmp_pd(x, y, _CMP_GT_OQ), v);
  }
  static double Reduce(Vec v) {
    const __m128d lo = _mm256_castpd256_pd128(v);        // (l0, l1)
    const __m128d hi = _mm256_extractf128_pd(v, 1);      // (l2, l3)
    const __m128d s = _mm_add_pd(lo, hi);                // (l0+l2, l1+l3)
    const __m128d swapped = _mm_unpackhi_pd(s, s);
    return _mm_cvtsd_f64(_mm_add_sd(s, swapped));
  }
};
#endif  // __AVX2__

#if defined(__aarch64__)
// Two 128-bit halves: lo = (l0, l1), hi = (l2, l3).
struct VecNeon {
  struct Vec {
    float64x2_t lo, hi;
  };
  static Vec Zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
  static Vec Broadcast(double v) { return {vdupq_n_f64(v), vdupq_n_f64(v)}; }
  static Vec Load(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
  static void Store(double* p, Vec v) {
    vst1q_f64(p, v.lo);
    vst1q_f64(p + 2, v.hi);
  }
  static Vec Add(Vec a, Vec b) {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  static Vec Sub(Vec a, Vec b) {
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
  }
  static Vec Mul(Vec a, Vec b) {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  static Vec Div(Vec a, Vec b) {
    return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
  }
  static Vec GtZeroize(Vec x, Vec y, Vec v) {
    const uint64x2_t mlo = vcgtq_f64(x.lo, y.lo);
    const uint64x2_t mhi = vcgtq_f64(x.hi, y.hi);
    return {vreinterpretq_f64_u64(
                vandq_u64(mlo, vreinterpretq_u64_f64(v.lo))),
            vreinterpretq_f64_u64(
                vandq_u64(mhi, vreinterpretq_u64_f64(v.hi)))};
  }
  static double Reduce(Vec v) {
    const float64x2_t s = vaddq_f64(v.lo, v.hi);  // (l0+l2, l1+l3)
    return vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1);
  }
};
#endif  // __aarch64__

}  // namespace s2::simd::detail

#endif  // S2_SIMD_VEC_H_
