// The approximate-first tier at scale (DESIGN.md §13): recall-vs-latency
// trade-off curve of summary-scan + exact-verify against the exact indexed
// k-NN baseline, on a 2^15-series corpus by default. Each candidate budget
// row reports measured recall against the exact ground truth, p50/p99
// latency, the p99 speedup over the exact baseline, and the fraction of
// queries whose quality bound certified exactness. The acceptance bar:
// some budget reaches >= 0.95 recall while cutting p99 by >= 5x. Results
// land in BENCH_approx.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "approx/summary.h"
#include "bench/bench_util.h"
#include "core/s2_engine.h"
#include "querylog/corpus_generator.h"

namespace s2 {
namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Recall(const std::vector<index::Neighbor>& truth,
              const std::vector<index::Neighbor>& got) {
  size_t hits = 0;
  for (const auto& t : truth) {
    for (const auto& g : got) {
      if (g.id == t.id) {
        ++hits;
        break;
      }
    }
  }
  return truth.empty() ? 1.0
                       : static_cast<double>(hits) /
                             static_cast<double>(truth.size());
}

volatile double g_sink = 0.0;

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  using namespace s2;
  const size_t num_series = bench::ArgSize(argc, argv, "--series", 1u << 15);
  const size_t n_days = bench::ArgSize(argc, argv, "--days", 128);
  const size_t num_queries = bench::ArgSize(argc, argv, "--queries", 200);
  const size_t k = bench::ArgSize(argc, argv, "--k", 10);
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_approx.json");

  bench::PrintHeader("approximate-first tier: recall vs latency, " +
                     std::to_string(num_series) + " series x " +
                     std::to_string(n_days) + " days, k=" + std::to_string(k));

  qlog::CorpusSpec spec;
  spec.num_series = num_series;
  spec.n_days = n_days;
  spec.seed = 17;
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  bench::Timer build_timer;
  core::S2Engine::Options options;
  auto engine = core::S2Engine::Build(std::move(corpus).ValueOrDie(), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "build: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  const double build_s = build_timer.Seconds();
  std::printf("  engine build: %.2fs (summary: %.2f MiB over %zu dims)\n",
              build_s,
              static_cast<double>(engine->summary()->SummaryBytes()) /
                  (1024.0 * 1024.0),
              engine->summary()->config().dims);

  // Query sample, spread deterministically over the corpus.
  std::vector<ts::SeriesId> query_ids;
  for (size_t q = 0; q < num_queries; ++q) {
    query_ids.push_back(
        static_cast<ts::SeriesId>(q * 2654435761u % num_series));
  }

  // Exact baseline: the indexed (VP-tree) k-NN, which is also the ground
  // truth for recall.
  std::vector<std::vector<index::Neighbor>> truth(query_ids.size());
  std::vector<double> exact_us;
  double checksum = 0.0;
  for (size_t q = 0; q < query_ids.size(); ++q) {
    bench::Timer timer;
    auto neighbors = engine->SimilarTo(query_ids[q], k);
    exact_us.push_back(timer.Seconds() * 1e6);
    if (!neighbors.ok()) {
      std::fprintf(stderr, "exact: %s\n",
                   neighbors.status().ToString().c_str());
      return 1;
    }
    checksum += neighbors->front().distance;
    truth[q] = std::move(neighbors).ValueOrDie();
  }
  g_sink = checksum;
  const double exact_p50 = Percentile(exact_us, 0.50);
  const double exact_p99 = Percentile(exact_us, 0.99);
  std::printf("\n  exact baseline: p50 %8.1fus  p99 %8.1fus\n", exact_p50,
              exact_p99);

  std::printf("\n  %10s %8s %10s %10s %10s %8s %8s\n", "candidates", "recall",
              "p50_us", "p99_us", "p99_speedup", "exact%", "eps_mean");

  const size_t budgets_raw[] = {64,  128,  256,
                                512, 1024, std::max<size_t>(1, num_series / 8)};
  bench::Json rows = bench::Json::Array();
  bool bar_met = false;
  std::vector<size_t> seen_budgets;
  for (size_t budget : budgets_raw) {
    if (budget >= num_series) continue;
    if (std::find(seen_budgets.begin(), seen_budgets.end(), budget) !=
        seen_budgets.end()) {
      continue;
    }
    seen_budgets.push_back(budget);
    approx::QueryParams params;
    params.k = k;
    params.max_candidates = budget;
    std::vector<double> approx_us;
    double recall_sum = 0.0, epsilon_sum = 0.0;
    size_t exact_certified = 0, epsilon_finite = 0;
    checksum = 0.0;
    for (size_t q = 0; q < query_ids.size(); ++q) {
      bench::Timer timer;
      auto answer = engine->ApproxKnn(query_ids[q], params);
      approx_us.push_back(timer.Seconds() * 1e6);
      if (!answer.ok()) {
        std::fprintf(stderr, "approx: %s\n",
                     answer.status().ToString().c_str());
        return 1;
      }
      checksum += answer->neighbors.front().distance;
      recall_sum += Recall(truth[q], answer->neighbors);
      if (answer->bound.guaranteed_exact) ++exact_certified;
      if (std::isfinite(answer->bound.epsilon)) {
        epsilon_sum += answer->bound.epsilon;
        ++epsilon_finite;
      }
    }
    g_sink = checksum;
    const double recall = recall_sum / static_cast<double>(query_ids.size());
    const double p50 = Percentile(approx_us, 0.50);
    const double p99 = Percentile(approx_us, 0.99);
    const double speedup = p99 > 0.0 ? exact_p99 / p99 : 0.0;
    const double exact_frac = static_cast<double>(exact_certified) /
                              static_cast<double>(query_ids.size());
    const double eps_mean =
        epsilon_finite > 0
            ? epsilon_sum / static_cast<double>(epsilon_finite)
            : 0.0;
    std::printf("  %10zu %7.3f%% %9.1f %9.1f %10.2fx %7.1f%% %8.4f\n", budget,
                recall * 100.0, p50, p99, speedup, exact_frac * 100.0,
                eps_mean);
    if (recall >= 0.95 && speedup >= 5.0) bar_met = true;
    rows.Push(bench::Json::Object()
                  .Add("max_candidates", static_cast<uint64_t>(budget))
                  .Add("recall", recall)
                  .Add("p50_us", p50)
                  .Add("p99_us", p99)
                  .Add("p99_speedup", speedup)
                  .Add("guaranteed_exact_fraction", exact_frac)
                  .Add("epsilon_mean", eps_mean));
  }

  bench::WriteJsonFile(
      json_path,
      bench::Json::Object()
          .Add("bench", "bench_approx")
          .Add("contract",
               "summary scan + exact verify vs exact indexed kNN; recall "
               "measured against the exact top-k; bar = some budget with "
               "recall >= 0.95 and p99 speedup >= 5x")
          .Add("num_series", static_cast<uint64_t>(num_series))
          .Add("n_days", static_cast<uint64_t>(n_days))
          .Add("num_queries", static_cast<uint64_t>(num_queries))
          .Add("k", static_cast<uint64_t>(k))
          .Add("summary_dims",
               static_cast<uint64_t>(engine->summary()->config().dims))
          .Add("summary_cells",
               static_cast<uint64_t>(engine->summary()->config().cells))
          .Add("summary_bytes",
               static_cast<uint64_t>(engine->summary()->SummaryBytes()))
          .Add("build_seconds", build_s)
          .Add("exact_p50_us", exact_p50)
          .Add("exact_p99_us", exact_p99)
          .Add("rows", std::move(rows))
          .Add("p99_5x_recall_95_bar",
               bench::Json::String(bar_met ? "PASS" : "MISS")));
  std::printf("\n  5x p99 at >= 0.95 recall bar: %s\n",
              bar_met ? "PASS" : "MISS");
  return bar_met ? 0 : 1;
}
