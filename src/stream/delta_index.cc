#include "stream/delta_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "diag/validate.h"
#include "dsp/stats.h"
#include "simd/simd.h"

namespace s2::stream {

Result<DeltaIndex> DeltaIndex::Create(
    const index::VpTreeIndex::Options& options, uint32_t series_length) {
  S2_ASSIGN_OR_RETURN(index::VpTreeIndex tree,
                      index::VpTreeIndex::CreateEmpty(options, series_length));
  return DeltaIndex(std::move(tree), options, series_length);
}

void DeltaIndex::CacheRow(size_t slot, const std::vector<double>& row) {
  if (slot >= rows_.num_rows()) {
    // Doubling growth; RowMatrix has no append, so reallocate and copy the
    // live rows (row_length stride, the padding is rebuilt zero-filled).
    size_t capacity = std::max<size_t>(rows_.num_rows() * 2, 16);
    if (capacity <= slot) capacity = slot + 1;
    repr::RowMatrix grown(capacity, series_length_);
    for (size_t i = 0; i < slot_ids_.size(); ++i) {
      std::memcpy(grown.mutable_row(i), rows_.row(i),
                  series_length_ * sizeof(double));
    }
    rows_ = std::move(grown);
  }
  std::memcpy(rows_.mutable_row(slot), row.data(),
              series_length_ * sizeof(double));
}

Status DeltaIndex::Insert(ts::SeriesId id, const std::vector<double>& row,
                          storage::SequenceSource* source) {
  if (members_.count(id) != 0) {
    return Status::AlreadyExists("DeltaIndex: id already a member");
  }
  S2_RETURN_NOT_OK(tree_.Insert(id, row, source));
  const size_t slot = slot_ids_.size();
  CacheRow(slot, row);
  slot_ids_.push_back(id);
  slot_of_.emplace(id, slot);
  members_.insert(id);
  return Status::OK();
}

Status DeltaIndex::Remove(ts::SeriesId id,
                          const std::vector<double>* pinned_row) {
  if (members_.count(id) == 0) {
    return Status::NotFound("DeltaIndex: id not a member");
  }
  S2_RETURN_NOT_OK(tree_.Remove(id, pinned_row));
  // Swap-with-last keeps the row cache dense.
  const size_t slot = slot_of_.at(id);
  const size_t last = slot_ids_.size() - 1;
  if (slot != last) {
    std::memcpy(rows_.mutable_row(slot), rows_.row(last),
                series_length_ * sizeof(double));
    slot_ids_[slot] = slot_ids_[last];
    slot_of_[slot_ids_[slot]] = slot;
  }
  slot_ids_.pop_back();
  slot_of_.erase(id);
  members_.erase(id);
  return Status::OK();
}

Status DeltaIndex::Clear() {
  S2_ASSIGN_OR_RETURN(tree_,
                      index::VpTreeIndex::CreateEmpty(options_, series_length_));
  members_.clear();
  rows_ = repr::RowMatrix();
  slot_ids_.clear();
  slot_of_.clear();
  return Status::OK();
}

Result<std::vector<index::Neighbor>> DeltaIndex::Search(
    const std::vector<double>& query, size_t k,
    storage::SequenceSource* source, index::VpTreeIndex::SearchStats* stats,
    index::SharedRadius* shared) const {
  index::VpTreeIndex::SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (source == nullptr) {
    return Status::InvalidArgument("DeltaIndex: source must not be null");
  }
  S2_ASSIGN_OR_RETURN(std::vector<index::VpTreeIndex::Candidate> candidates,
                      tree_.CollectCandidates(query, k, stats, shared));

  // Verbatim VpTreeIndex::Search verification — ascending lower-bound
  // order, squared-domain abandon gate — except rows come from the local
  // RowMatrix cache, not the sequence source. Bitwise-identical results:
  // the cache holds exactly the row each member was indexed under.
  index::BestList best(k);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const index::VpTreeIndex::Candidate& candidate = candidates[i];
    const auto it = slot_of_.find(candidate.id);
    if (it == slot_of_.end()) {
      return Status::Internal("DeltaIndex: candidate row missing from cache");
    }
    if (i + 1 < candidates.size()) {
      const auto next = slot_of_.find(candidates[i + 1].id);
      if (next != slot_of_.end()) simd::PrefetchRead(rows_.row(next->second));
    }
    const double local = best.Threshold();
    double threshold = local;
    if (shared != nullptr) threshold = std::min(threshold, shared->load());
    if (best.Full() && candidate.lower > local) break;
    if (candidate.lower > threshold) {
      ++stats->shared_radius_prunes;
      continue;
    }
    ++stats->full_retrievals;
    const double abandon_sq = std::isinf(threshold)
                                  ? std::numeric_limits<double>::infinity()
                                  : threshold * threshold;
    const double dist_sq = dsp::SquaredEuclideanEarlyAbandon(
        query.data(), rows_.row(it->second), query.size(), abandon_sq);
    if (dist_sq <= abandon_sq) {
      best.Offer(candidate.id, std::sqrt(dist_sq));
      if (shared != nullptr && best.Full()) shared->Tighten(best.Threshold());
    }
  }
  return std::move(best).Take();
}

Status DeltaIndex::Validate(storage::SequenceSource* source) const {
  S2_RETURN_NOT_OK(tree_.Validate(source));
  diag::Validator v("DeltaIndex");
  v.Check(tree_.size() == members_.size())
      << "tree holds " << tree_.size() << " objects, member set "
      << members_.size();
  v.Check(slot_ids_.size() == members_.size())
      << "row cache holds " << slot_ids_.size() << " rows, member set "
      << members_.size();
  v.Check(slot_of_.size() == slot_ids_.size())
      << "slot map tracks " << slot_of_.size() << " ids, cache holds "
      << slot_ids_.size();
  for (size_t slot = 0; slot < slot_ids_.size(); ++slot) {
    const ts::SeriesId id = slot_ids_[slot];
    v.Check(members_.count(id) != 0)
        << "cached slot " << slot << " holds non-member id " << id;
    const auto it = slot_of_.find(id);
    v.Check(it != slot_of_.end() && it->second == slot)
        << "slot maps disagree for id " << id;
  }
  return v.ToStatus();
}

}  // namespace s2::stream
