#include "querylog/log_aggregator.h"

#include <algorithm>

#include "querylog/synthesizer.h"

namespace s2::qlog {

Status LogAggregator::Add(const LogRecord& record) {
  if (record.timestamp_seconds < 0) {
    return Status::InvalidArgument("LogAggregator: negative timestamp");
  }
  if (record.query.empty()) {
    return Status::InvalidArgument("LogAggregator: empty query string");
  }
  const int32_t day = static_cast<int32_t>(record.timestamp_seconds / kSecondsPerDay);
  ++counts_[record.query][day];
  ++totals_[record.query];
  ++num_records_;
  return Status::OK();
}

Status LogAggregator::AddAll(const std::vector<LogRecord>& records) {
  for (const LogRecord& record : records) {
    S2_RETURN_NOT_OK(Add(record));
  }
  return Status::OK();
}

Result<ts::TimeSeries> LogAggregator::SeriesFor(const std::string& query,
                                                int32_t start_day,
                                                int32_t end_day) const {
  if (end_day < start_day) {
    return Status::InvalidArgument("LogAggregator: end_day < start_day");
  }
  const auto it = counts_.find(query);
  if (it == counts_.end()) {
    return Status::NotFound("LogAggregator: query '" + query + "' never logged");
  }
  ts::TimeSeries series;
  series.name = query;
  series.start_day = start_day;
  series.values.assign(static_cast<size_t>(end_day - start_day + 1), 0.0);
  for (auto day_it = it->second.lower_bound(start_day);
       day_it != it->second.end() && day_it->first <= end_day; ++day_it) {
    series.values[static_cast<size_t>(day_it->first - start_day)] =
        static_cast<double>(day_it->second);
  }
  return series;
}

Result<ts::Corpus> LogAggregator::BuildCorpus(int32_t start_day, int32_t end_day,
                                              uint64_t min_total_count) const {
  if (end_day < start_day) {
    return Status::InvalidArgument("LogAggregator: end_day < start_day");
  }
  std::vector<std::string> names;
  names.reserve(counts_.size());
  for (const auto& [query, days] : counts_) {
    if (totals_.at(query) >= min_total_count) names.push_back(query);
  }
  std::sort(names.begin(), names.end());

  ts::Corpus corpus;
  for (const std::string& name : names) {
    S2_ASSIGN_OR_RETURN(ts::TimeSeries series, SeriesFor(name, start_day, end_day));
    corpus.Add(std::move(series));
  }
  return corpus;
}

Result<std::vector<LogRecord>> GenerateLog(const QueryArchetype& archetype,
                                           int32_t start_day, size_t n_days,
                                           Rng* rng) {
  if (n_days == 0) return Status::InvalidArgument("GenerateLog: n_days must be > 0");
  if (rng == nullptr) return Status::InvalidArgument("GenerateLog: rng is null");
  if (start_day < 0) {
    return Status::InvalidArgument("GenerateLog: start_day must be >= 0");
  }
  std::vector<LogRecord> records;
  for (size_t i = 0; i < n_days; ++i) {
    const int32_t day = start_day + static_cast<int32_t>(i);
    const int64_t count = rng->Poisson(IntensityOn(archetype, day));
    for (int64_t r = 0; r < count; ++r) {
      LogRecord record;
      record.timestamp_seconds = static_cast<int64_t>(day) * kSecondsPerDay +
                                 rng->UniformInt(0, kSecondsPerDay - 1);
      record.query = archetype.name;
      records.push_back(std::move(record));
    }
  }
  return records;
}

}  // namespace s2::qlog
