// Serving-layer behavior of standing queries: the subscribe/unsubscribe/
// poll-alerts/ack verbs' validation and metrics contract, monitor-WAL
// durability across restarts, owner-routing on sharded servers, and the
// lock discipline under concurrent appends + polls (the TSan target).

#include "service/s2_server.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/mem_env.h"
#include "monitor/subscription.h"
#include "querylog/corpus_generator.h"

namespace s2::service {
namespace {

constexpr size_t kNumSeries = 24;
constexpr size_t kDays = 64;

ts::Corpus MakeCorpus() {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = 808;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions() {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 4;
  return options;
}

std::unique_ptr<S2Server> MakeServer(S2Server::Options options) {
  options.scheduler.threads = 1;
  options.compaction_threshold = 0;
  auto server = S2Server::Build(MakeCorpus(), EngineOptions(), options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).ValueOrDie();
}

monitor::Subscription BurstSub(ts::SeriesId series) {
  monitor::Subscription sub;
  sub.kind = monitor::SubscriptionKind::kBurstThreshold;
  sub.series = series;
  sub.burst.window = 4;
  sub.burst.enter_ratio = 1.3;
  sub.burst.exit_ratio = 1.1;
  return sub;
}

TEST(MonitorServerTest, SubscribeAssignsDenseIdsAndValidates) {
  std::unique_ptr<S2Server> server = MakeServer({});

  auto first = server->Subscribe(BurstSub(0));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, 0u);
  auto second = server->Subscribe(BurstSub(5));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 1u);
  EXPECT_EQ(server->metrics().counter("monitor_subscriptions")->value(), 2u);
  EXPECT_EQ(server->monitor_info().active_subscriptions, 2u);

  // Invalid registrations burn no id and change nothing.
  EXPECT_FALSE(server->Subscribe(BurstSub(kNumSeries + 3)).ok());
  monitor::Subscription bad = BurstSub(0);
  bad.burst.window = 0;
  EXPECT_FALSE(server->Subscribe(bad).ok());
  EXPECT_EQ(server->monitor_info().active_subscriptions, 2u);
  auto third = server->Subscribe(BurstSub(1));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, 2u);

  EXPECT_EQ(server->Unsubscribe(99).code(), StatusCode::kNotFound);
  ASSERT_TRUE(server->Unsubscribe(*second).ok());
  EXPECT_EQ(server->metrics().counter("monitor_unsubscribes")->value(), 1u);
  EXPECT_EQ(server->monitor_info().active_subscriptions, 2u);
}

TEST(MonitorServerTest, AlertsFlowThroughPollAndAckWithMetrics) {
  std::unique_ptr<S2Server> server = MakeServer({});
  ASSERT_TRUE(server->Subscribe(BurstSub(0)).ok());

  // Unwatched series evaluate nothing; watched flat appends fire nothing.
  ASSERT_TRUE(server->AppendPoint(9, 5.0).ok());
  EXPECT_TRUE(server->PollAlerts(100).empty());

  // A hot tail (well above the generated corpus' few-hundred daily counts)
  // crosses enter_ratio: the burst-begin alert flows out.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server->AppendPoint(0, 5000.0).ok());
  }
  const std::vector<monitor::Alert> alerts = server->PollAlerts(100);
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts.front().kind, monitor::AlertKind::kBurstBegin);
  EXPECT_EQ(alerts.front().series, 0u);
  EXPECT_EQ(alerts.front().seq, 0u);

  auto& metrics = server->metrics();
  EXPECT_GE(metrics.counter("monitor_alerts_fired")->value(), 1u);
  EXPECT_GE(metrics.counter("monitor_alerts_delivered")->value(), 1u);
  EXPECT_EQ(metrics.counter("monitor_alerts_dropped")->value(), 0u);
  // Every append on the watched series recorded an evaluation sample.
  EXPECT_GE(metrics.histogram("monitor_eval_latency")->count(), 4u);

  ASSERT_TRUE(server->AckAlerts(alerts.back().seq).ok());
  const auto info = server->monitor_info();
  EXPECT_EQ(info.queue_depth, 0u);
  EXPECT_TRUE(info.any_acked);
  EXPECT_EQ(info.acked_upto, alerts.back().seq);
  EXPECT_TRUE(server->PollAlerts(100).empty());
}

TEST(MonitorServerTest, ShardedServerRoutesSubscriptionsToOwners) {
  S2Server::Options options;
  options.shards = 3;
  std::unique_ptr<S2Server> server = MakeServer(options);
  ASSERT_TRUE(server->is_sharded());

  // Series 0..2 land on three different shards (round-robin placement); the
  // registrations must follow their owners.
  for (ts::SeriesId id = 0; id < 3; ++id) {
    ASSERT_TRUE(server->Subscribe(BurstSub(id)).ok());
  }
  EXPECT_EQ(server->monitor_info().active_subscriptions, 3u);
  for (size_t s = 0; s < server->sharded().num_shards(); ++s) {
    EXPECT_EQ(server->sharded().shard(s).monitor_registry().size(), 1u)
        << "shard " << s;
  }

  // Alerts report the global id regardless of which shard evaluated.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server->AppendPoint(2, 5000.0).ok());
  }
  const std::vector<monitor::Alert> alerts = server->PollAlerts(100);
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts.front().series, 2u);

  ASSERT_TRUE(server->Unsubscribe(2).ok());
  EXPECT_EQ(server->monitor_info().active_subscriptions, 2u);
  ASSERT_TRUE(server->sharded().ValidateInvariants().ok());
}

TEST(MonitorServerTest, MonitorWalPersistsSubscriptionsAndAcksAcrossRestart) {
  io::MemEnv wal_env;
  S2Server::Options options;
  options.wal_path = "server.wal";
  options.wal_env = &wal_env;

  uint64_t acked_upto = 0;
  {
    std::unique_ptr<S2Server> server = MakeServer(options);
    EXPECT_TRUE(server->monitor_info().wal_enabled);
    ASSERT_TRUE(server->Subscribe(BurstSub(0)).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(server->AppendPoint(0, 5000.0).ok());
    }
    const std::vector<monitor::Alert> alerts = server->PollAlerts(100);
    ASSERT_FALSE(alerts.empty());
    acked_upto = alerts.back().seq;
    ASSERT_TRUE(server->AckAlerts(acked_upto).ok());
  }

  std::unique_ptr<S2Server> revived = MakeServer(options);
  const auto info = revived->monitor_info();
  EXPECT_TRUE(info.wal_enabled);
  EXPECT_EQ(info.replayed_ops, 2u);  // The subscribe and the ack.
  EXPECT_EQ(info.active_subscriptions, 1u);
  // Replay re-fired the same alerts, and the replayed ack retired exactly
  // the acknowledged range again.
  EXPECT_TRUE(info.any_acked);
  EXPECT_EQ(info.acked_upto, acked_upto);
  EXPECT_EQ(info.queue_depth, 0u);
}

TEST(MonitorServerTest, ConcurrentAppendsPollsAndAcksAreRaceFree) {
  // The TSan target: the append path (writer lock, queue pushes) races
  // consumers (lock-free polls, acking, info snapshots) and a subscriber.
  S2Server::Options options;
  options.shards = 2;
  std::unique_ptr<S2Server> server = MakeServer(options);
  for (ts::SeriesId id = 0; id < 4; ++id) {
    ASSERT_TRUE(server->Subscribe(BurstSub(id)).ok());
  }

  std::atomic<bool> done{false};
  std::thread appender([&] {
    for (int i = 0; i < 300; ++i) {
      const auto id = static_cast<ts::SeriesId>(i % 4);
      const double value = (i / 8) % 2 == 0 ? 5000.0 : 1.0;
      ASSERT_TRUE(server->AppendPoint(id, value).ok());
    }
    done.store(true, std::memory_order_release);
  });
  std::thread consumer([&] {
    uint64_t last_acked = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<monitor::Alert> alerts = server->PollAlerts(8);
      if (!alerts.empty() && alerts.back().seq > last_acked) {
        last_acked = alerts.back().seq;
        ASSERT_TRUE(server->AckAlerts(last_acked).ok());
      }
      (void)server->monitor_info();
      std::this_thread::yield();
    }
  });
  appender.join();
  consumer.join();

  const auto info = server->monitor_info();
  EXPECT_GT(info.alerts_fired, 0u);
  EXPECT_EQ(info.active_subscriptions, 4u);
  ASSERT_TRUE(server->sharded().ValidateInvariants().ok());
}

}  // namespace
}  // namespace s2::service
