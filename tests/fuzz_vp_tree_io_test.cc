#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fuzz_util.h"
#include "index/vp_tree.h"
#include "storage/sequence_store.h"

namespace s2::index {
namespace {

// Corruption fuzzing for the serialized VP-tree index: Load on a mutated
// image either fails with a Status, or yields an index whose Validate and
// Search never crash.

std::vector<std::vector<double>> MakeRows(int n, int length, uint64_t seed) {
  s2::Rng rng(seed);
  std::vector<std::vector<double>> rows(n, std::vector<double>(length));
  for (auto& row : rows) {
    for (double& x : row) x = rng.Normal(0.0, 1.0);
  }
  return rows;
}

TEST(FuzzVpTreeIo, MutatedImagesNeverCrashLoadOrSearch) {
  s2::Rng rng(0x7EE5EED5);
  const auto rows = MakeRows(40, 32, 99);
  VpTreeIndex::Options options;
  options.budget_c = 4;
  options.leaf_size = 4;
  auto built = VpTreeIndex::Build(rows, options);
  ASSERT_TRUE(built.ok());

  const std::string path = fuzz::TempPath("s2_fuzz_vptree.idx");
  ASSERT_TRUE(built->Save(path).ok());
  const std::vector<char> image = fuzz::ReadFileBytes(path);
  ASSERT_FALSE(image.empty());

  auto source = storage::InMemorySequenceSource::Create(rows);
  ASSERT_TRUE(source.ok());

  for (int round = 0; round < 150; ++round) {
    fuzz::WriteFileBytes(path, fuzz::Mutate(image, &rng));
    auto loaded = VpTreeIndex::Load(path);
    if (!loaded.ok()) {
      EXPECT_NE(loaded.status().code(), StatusCode::kOk);
      continue;
    }
    // A surviving image must still be structurally safe to walk.
    (void)loaded->Validate();
    (void)loaded->Search(rows[0], 3, source->get(), nullptr);
  }
  std::remove(path.c_str());
}

TEST(FuzzVpTreeIo, TruncatedHeaderIsRejected) {
  const auto rows = MakeRows(16, 16, 5);
  VpTreeIndex::Options options;
  options.budget_c = 3;
  options.leaf_size = 4;
  auto built = VpTreeIndex::Build(rows, options);
  ASSERT_TRUE(built.ok());

  const std::string path = fuzz::TempPath("s2_fuzz_vptree_trunc.idx");
  ASSERT_TRUE(built->Save(path).ok());
  const std::vector<char> image = fuzz::ReadFileBytes(path);

  for (size_t cut : {0ul, 2ul, 4ul, 8ul, 16ul, 24ul}) {
    if (cut >= image.size()) continue;
    fuzz::WriteFileBytes(path,
                         std::vector<char>(image.begin(),
                                           image.begin() +
                                               static_cast<ptrdiff_t>(cut)));
    auto loaded = VpTreeIndex::Load(path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
          << "cut at " << cut;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s2::index
