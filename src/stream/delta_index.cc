#include "stream/delta_index.h"

#include <utility>

#include "diag/validate.h"

namespace s2::stream {

Result<DeltaIndex> DeltaIndex::Create(
    const index::VpTreeIndex::Options& options, uint32_t series_length) {
  S2_ASSIGN_OR_RETURN(index::VpTreeIndex tree,
                      index::VpTreeIndex::CreateEmpty(options, series_length));
  return DeltaIndex(std::move(tree), options, series_length);
}

Status DeltaIndex::Insert(ts::SeriesId id, const std::vector<double>& row,
                          storage::SequenceSource* source) {
  if (members_.count(id) != 0) {
    return Status::AlreadyExists("DeltaIndex: id already a member");
  }
  S2_RETURN_NOT_OK(tree_.Insert(id, row, source));
  members_.insert(id);
  return Status::OK();
}

Status DeltaIndex::Remove(ts::SeriesId id,
                          const std::vector<double>* pinned_row) {
  if (members_.count(id) == 0) {
    return Status::NotFound("DeltaIndex: id not a member");
  }
  S2_RETURN_NOT_OK(tree_.Remove(id, pinned_row));
  members_.erase(id);
  return Status::OK();
}

Status DeltaIndex::Clear() {
  S2_ASSIGN_OR_RETURN(tree_,
                      index::VpTreeIndex::CreateEmpty(options_, series_length_));
  members_.clear();
  return Status::OK();
}

Status DeltaIndex::Validate(storage::SequenceSource* source) const {
  S2_RETURN_NOT_OK(tree_.Validate(source));
  diag::Validator v("DeltaIndex");
  v.Check(tree_.size() == members_.size())
      << "tree holds " << tree_.size() << " objects, member set "
      << members_.size();
  return v.ToStatus();
}

}  // namespace s2::stream
