#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz_util.h"
#include "io/env.h"
#include "io/mem_env.h"
#include "io/serial.h"

namespace s2::io {
namespace {

std::string TempPath(const std::string& name) { return fuzz::TempPath(name); }

Status WriteWholeFile(Env* env, const std::string& path,
                      const std::string& contents) {
  S2_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      env->Open(path, OpenMode::kTruncate));
  S2_RETURN_NOT_OK(WriteExact(file.get(), contents.data(), contents.size()));
  return file->Sync();
}

Result<std::string> ReadWholeFile(Env* env, const std::string& path) {
  std::vector<char> buffer;
  S2_RETURN_NOT_OK(ReadFileToBuffer(env, path, &buffer));
  return std::string(buffer.begin(), buffer.end());
}

// --- POSIX environment ------------------------------------------------------

TEST(PosixEnvTest, WriteReadRoundtrip) {
  Env* env = Env::Default();
  const std::string path = TempPath("s2_io_env_roundtrip.bin");
  ASSERT_TRUE(WriteWholeFile(env, path, "hello, disk").ok());
  auto contents = ReadWholeFile(env, path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello, disk");
  EXPECT_TRUE(env->Remove(path).ok());
}

TEST(PosixEnvTest, MissingFileIsNotFoundOnRead) {
  Env* env = Env::Default();
  auto result = env->Open("/no/such/dir/file.bin", OpenMode::kRead);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(PosixEnvTest, MissingDirectoryIsIoErrorOnWrite) {
  Env* env = Env::Default();
  auto result = env->Open("/no/such/dir/file.bin", OpenMode::kTruncate);
  ASSERT_FALSE(result.ok());
  // A missing parent on a *write* is a real environment problem, not the
  // benign "no store yet" condition — it must not look like NotFound.
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(PosixEnvTest, TruncateModeDiscardsOldContents) {
  Env* env = Env::Default();
  const std::string path = TempPath("s2_io_env_trunc.bin");
  ASSERT_TRUE(WriteWholeFile(env, path, "a long old payload").ok());
  ASSERT_TRUE(WriteWholeFile(env, path, "new").ok());
  auto contents = ReadWholeFile(env, path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "new");
  EXPECT_TRUE(env->Remove(path).ok());
}

TEST(PosixEnvTest, ReadWriteModePreservesContents) {
  Env* env = Env::Default();
  const std::string path = TempPath("s2_io_env_rw.bin");
  ASSERT_TRUE(WriteWholeFile(env, path, "0123456789").ok());
  {
    auto file = env->Open(path, OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(WriteExactAt(file->get(), "AB", 2, 4).ok());
  }
  auto contents = ReadWholeFile(env, path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "0123AB6789");
  EXPECT_TRUE(env->Remove(path).ok());
}

TEST(PosixEnvTest, ReadExactPastEofIsCorruption) {
  Env* env = Env::Default();
  const std::string path = TempPath("s2_io_env_eof.bin");
  ASSERT_TRUE(WriteWholeFile(env, path, "short").ok());
  auto file = env->Open(path, OpenMode::kRead);
  ASSERT_TRUE(file.ok());
  char buffer[64];
  const Status status = ReadExact(file->get(), buffer, sizeof(buffer));
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_TRUE(env->Remove(path).ok());
}

TEST(PosixEnvTest, RenameReplacesAtomically) {
  Env* env = Env::Default();
  const std::string from = TempPath("s2_io_env_rename_from.bin");
  const std::string to = TempPath("s2_io_env_rename_to.bin");
  ASSERT_TRUE(WriteWholeFile(env, to, "old").ok());
  ASSERT_TRUE(WriteWholeFile(env, from, "new").ok());
  ASSERT_TRUE(env->Rename(from, to).ok());
  EXPECT_FALSE(env->FileExists(from));
  auto contents = ReadWholeFile(env, to);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "new");
  EXPECT_TRUE(env->Remove(to).ok());
}

TEST(PosixEnvTest, SyncDirMakesRenameDurable) {
  Env* env = Env::Default();
  const std::string from = TempPath("s2_io_env_syncdir_from.bin");
  const std::string to = TempPath("s2_io_env_syncdir_to.bin");
  ASSERT_TRUE(WriteWholeFile(env, from, "x").ok());
  ASSERT_TRUE(env->Rename(from, to).ok());
  // The durability itself is unobservable in a test; assert the call
  // succeeds on a real directory (and on a relative path with no slash).
  EXPECT_TRUE(env->SyncDir(to).ok());
  EXPECT_TRUE(env->SyncDir("no_slash_in_this_path.bin").ok());
  EXPECT_TRUE(env->Remove(to).ok());
}

TEST(PosixEnvTest, RemoveIsIdempotent) {
  Env* env = Env::Default();
  const std::string path = TempPath("s2_io_env_remove.bin");
  ASSERT_TRUE(WriteWholeFile(env, path, "x").ok());
  EXPECT_TRUE(env->Remove(path).ok());
  EXPECT_TRUE(env->Remove(path).ok());  // Second remove: no such file, OK.
  EXPECT_FALSE(env->FileExists(path));
}

TEST(PosixEnvTest, CopyFileCopiesAndSyncs) {
  Env* env = Env::Default();
  const std::string from = TempPath("s2_io_env_copy_from.bin");
  const std::string to = TempPath("s2_io_env_copy_to.bin");
  std::string big(200 * 1024, 'q');  // Multiple 64 KiB chunks.
  big[100 * 1024] = 'Z';
  ASSERT_TRUE(WriteWholeFile(env, from, big).ok());
  ASSERT_TRUE(env->CopyFile(from, to).ok());
  auto contents = ReadWholeFile(env, to);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, big);
  EXPECT_TRUE(env->Remove(from).ok());
  EXPECT_TRUE(env->Remove(to).ok());
}

// --- BufferFile -------------------------------------------------------------

TEST(BufferFileTest, CursorAndPositionedIo) {
  BufferFile file;
  ASSERT_TRUE(WriteExact(&file, "abcdef", 6).ok());
  ASSERT_TRUE(WriteExactAt(&file, "XY", 2, 2).ok());
  char buffer[6];
  ASSERT_TRUE(ReadExactAt(&file, buffer, 6, 0).ok());
  EXPECT_EQ(std::string(buffer, 6), "abXYef");
  auto size = file.Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 6u);
}

TEST(BufferFileTest, WriteAtExtendsWithZeroGap) {
  BufferFile file;
  ASSERT_TRUE(WriteExactAt(&file, "Z", 1, 4).ok());
  auto size = file.Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
  char buffer[5];
  ASSERT_TRUE(ReadExactAt(&file, buffer, 5, 0).ok());
  EXPECT_EQ(buffer[0], '\0');
  EXPECT_EQ(buffer[4], 'Z');
}

TEST(BufferFileTest, ReadClampsAtEof) {
  BufferFile file(std::vector<char>{'a', 'b'});
  char buffer[8];
  auto n = file.ReadAt(buffer, sizeof(buffer), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  auto eof = file.ReadAt(buffer, sizeof(buffer), 2);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);
}

TEST(BufferFileTest, ScalarRoundtrip) {
  BufferFile file;
  ASSERT_TRUE(WriteScalar<uint64_t>(&file, 0xDEADBEEFCAFEull).ok());
  ASSERT_TRUE(WriteScalar<double>(&file, 2.5).ok());
  ASSERT_TRUE(file.Seek(0).ok());
  uint64_t a = 0;
  double b = 0;
  ASSERT_TRUE(ReadScalar(&file, &a).ok());
  ASSERT_TRUE(ReadScalar(&file, &b).ok());
  EXPECT_EQ(a, 0xDEADBEEFCAFEull);
  EXPECT_EQ(b, 2.5);
}

// --- MemEnv -----------------------------------------------------------------

TEST(MemEnvTest, BehavesLikeAFilesystem) {
  MemEnv env;
  ASSERT_TRUE(WriteWholeFile(&env, "a.bin", "payload").ok());
  EXPECT_TRUE(env.FileExists("a.bin"));
  auto contents = ReadWholeFile(&env, "a.bin");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "payload");
  ASSERT_TRUE(env.Rename("a.bin", "b.bin").ok());
  EXPECT_FALSE(env.FileExists("a.bin"));
  EXPECT_TRUE(env.FileExists("b.bin"));
  EXPECT_TRUE(env.Remove("b.bin").ok());
  EXPECT_EQ(env.ListFiles().size(), 0u);
}

TEST(MemEnvTest, MissingFileIsNotFoundOnRead) {
  MemEnv env;
  auto result = env.Open("nope.bin", OpenMode::kRead);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(MemEnvTest, DropUnsyncedErasesNeverSyncedFiles) {
  MemEnv env;
  {
    auto file = env.Open("unsynced.bin", OpenMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(WriteExact(file->get(), "lost", 4).ok());
    // No Sync: this file's directory entry does not survive a crash.
  }
  ASSERT_TRUE(WriteWholeFile(&env, "synced.bin", "kept").ok());
  ASSERT_TRUE(env.DropUnsynced().ok());
  EXPECT_FALSE(env.FileExists("unsynced.bin"));
  EXPECT_TRUE(env.FileExists("synced.bin"));
  auto contents = ReadWholeFile(&env, "synced.bin");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "kept");
}

TEST(MemEnvTest, DropUnsyncedRollsBackToDurableImage) {
  MemEnv env;
  ASSERT_TRUE(WriteWholeFile(&env, "f.bin", "generation one").ok());
  {
    auto file = env.Open("f.bin", OpenMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(WriteExact(file->get(), "torn", 4).ok());
    // Crash before Sync: the truncate + write must both vanish.
  }
  ASSERT_TRUE(env.DropUnsynced().ok());
  auto contents = ReadWholeFile(&env, "f.bin");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "generation one");
}

TEST(MemEnvTest, OpenHandleSurvivesRemove) {
  // POSIX fd-on-unlinked-inode semantics: readers holding the handle keep
  // reading; the name is gone.
  MemEnv env;
  ASSERT_TRUE(WriteWholeFile(&env, "f.bin", "still here").ok());
  auto file = env.Open("f.bin", OpenMode::kRead);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(env.Remove("f.bin").ok());
  char buffer[10];
  ASSERT_TRUE(ReadExactAt(file->get(), buffer, 10, 0).ok());
  EXPECT_EQ(std::string(buffer, 10), "still here");
}

}  // namespace
}  // namespace s2::io
