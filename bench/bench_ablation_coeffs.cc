// Ablation (motivates Section 3.1): how much signal energy do the first k
// coefficients capture vs the best k, across the corpus families? Also
// exercises the Section-8 variable-coefficient extension: how many best
// coefficients are needed per family to reach a target energy fraction.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "querylog/corpus_generator.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"

namespace s2 {
namespace {

std::string FamilyOf(const std::string& name) {
  const size_t underscore = name.find('_');
  return underscore == std::string::npos ? name : name.substr(0, underscore);
}

double CapturedFraction(const repr::HalfSpectrum& spectrum,
                        const std::vector<uint32_t>& kept) {
  double captured = 0.0;
  for (uint32_t k : kept) {
    captured += spectrum.multiplicity(k) * std::norm(spectrum.coeff(k));
  }
  const double total = spectrum.Energy();
  return total > 0 ? captured / total : 1.0;
}

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  using namespace s2;
  const size_t db = bench::ArgSize(argc, argv, "--db", 2000);
  bench::PrintHeader(
      "Ablation: energy captured by first-k vs best-k coefficients, per "
      "workload family");

  qlog::CorpusSpec spec;
  spec.num_series = db;
  spec.n_days = 1024;
  spec.seed = 51;
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) return 1;

  struct FamilyStats {
    size_t count = 0;
    std::map<size_t, double> first_energy;
    std::map<size_t, double> best_energy;
    std::map<double, double> coeffs_for_energy;
  };
  const std::vector<size_t> ks = {4, 8, 16, 32, 64};
  const std::vector<double> fractions = {0.8, 0.9, 0.95};
  std::map<std::string, FamilyStats> by_family;

  for (const auto& series : corpus->series()) {
    const std::vector<double> z = dsp::Standardize(series.values);
    auto spectrum = repr::HalfSpectrum::FromSeries(z);
    if (!spectrum.ok()) continue;
    FamilyStats& stats = by_family[FamilyOf(series.name)];
    ++stats.count;
    for (size_t k : ks) {
      std::vector<uint32_t> first(k);
      for (size_t i = 0; i < k; ++i) first[i] = static_cast<uint32_t>(i + 1);
      stats.first_energy[k] += CapturedFraction(*spectrum, first);
      auto best = repr::CompressedSpectrum::Compress(
          *spectrum, repr::ReprKind::kBestKError, (k * 18 + 15) / 16);
      if (best.ok()) stats.best_energy[k] += CapturedFraction(*spectrum, best->positions());
    }
    for (double fraction : fractions) {
      auto variable = repr::CompressedSpectrum::CompressToEnergy(*spectrum, fraction);
      if (variable.ok()) {
        stats.coeffs_for_energy[fraction] +=
            static_cast<double>(variable->positions().size());
      }
    }
  }

  for (const auto& [family, stats] : by_family) {
    std::printf("\nfamily: %-10s (%zu series)\n", family.c_str(), stats.count);
    std::printf("  %6s %14s %14s\n", "k", "first-k energy", "best-k energy");
    for (size_t k : ks) {
      std::printf("  %6zu %13.1f%% %13.1f%%\n", k,
                  100.0 * stats.first_energy.at(k) / static_cast<double>(stats.count),
                  100.0 * stats.best_energy.at(k) / static_cast<double>(stats.count));
    }
    std::printf("  variable representation (Section 8): avg best coefficients for");
    for (double fraction : fractions) {
      std::printf("  %.0f%%: %.1f", fraction * 100,
                  stats.coeffs_for_energy.at(fraction) /
                      static_cast<double>(stats.count));
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading: for periodic families (weekly/monthly/seasonal) the best "
      "coefficients capture far more energy than the first ones at equal k — "
      "the premise of Section 3.1. Aperiodic/random-walk families show a "
      "smaller gap (their power concentrates at low frequencies anyway).\n");
  return 0;
}
