#ifndef S2_STORAGE_SEQUENCE_STORE_H_
#define S2_STORAGE_SEQUENCE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/env.h"
#include "timeseries/time_series.h"

namespace s2::storage {

/// Abstract provider of full (uncompressed) sequences by id.
///
/// Index search verifies candidates against the full representation; the
/// paper retrieves those "from the disk, in the order suggested by their
/// lower bounds". This interface lets the same search code run against an
/// on-disk store (Fig. 23 "Index on Disk" / "Linear Scan") or RAM-resident
/// data, while exposing read counters for I/O accounting.
///
/// Thread safety: `Get` may be called concurrently from multiple threads as
/// long as no thread is mutating the store (e.g. `Append`); read counters
/// are atomic. `ResetCounters` is safe but racy against in-flight reads
/// (counts may be slightly off — acceptable for instrumentation).
class SequenceSource {
 public:
  virtual ~SequenceSource() = default;

  /// Fetches the sequence with the given id.
  virtual Result<std::vector<double>> Get(ts::SeriesId id) = 0;

  /// Fetches `count` consecutive sequences starting at `first` into a flat
  /// row-major buffer (`flat` is resized to `count * series_length()`; row
  /// r starts at `flat->data() + r * series_length()`). Serves batched
  /// leaf/scan evaluation over a contiguous layout. Counts as `count`
  /// record reads. The default loops over `Get` (so wrappers keep their
  /// semantics, e.g. retry); RAM and disk stores override with straight
  /// copies / one spanning positioned read.
  virtual Status GetBatch(ts::SeriesId first, size_t count,
                          std::vector<double>* flat);

  /// Number of sequences available.
  virtual size_t num_series() const = 0;

  /// Length (number of samples) of every sequence.
  virtual size_t series_length() const = 0;

  /// Number of `Get` calls since construction or the last reset.
  virtual uint64_t read_count() const = 0;
  virtual void ResetCounters() = 0;
};

/// RAM-resident sequence source.
class InMemorySequenceSource : public SequenceSource {
 public:
  /// All rows must share one length; returns InvalidArgument otherwise.
  static Result<std::unique_ptr<InMemorySequenceSource>> Create(
      std::vector<std::vector<double>> rows);

  Result<std::vector<double>> Get(ts::SeriesId id) override;
  Status GetBatch(ts::SeriesId first, size_t count,
                  std::vector<double>* flat) override;
  size_t num_series() const override { return rows_.size(); }
  size_t series_length() const override { return length_; }
  uint64_t read_count() const override {
    return reads_.load(std::memory_order_relaxed);
  }
  void ResetCounters() override { reads_.store(0, std::memory_order_relaxed); }

  /// Appends a row and returns its id. The row must match the store's
  /// length (an empty store adopts the first row's length).
  Result<ts::SeriesId> Append(std::vector<double> row);

  /// Replaces the row stored under `id` (the streaming append path slides a
  /// series' window in place). Not safe against concurrent `Get`s — callers
  /// hold the engine writer lock.
  Status Update(ts::SeriesId id, std::vector<double> row);

 private:
  InMemorySequenceSource(std::vector<std::vector<double>> rows, size_t length)
      : rows_(std::move(rows)), length_(length) {}
  std::vector<std::vector<double>> rows_;
  size_t length_;
  std::atomic<uint64_t> reads_ = 0;
};

/// A fixed-record binary file of sequences, fetched with positioned reads.
///
/// Record layout: 8-byte magic, u64 count, u64 length, then `count` records
/// of `length` doubles in native byte order. Random `Get` performs one
/// positioned read of a whole record, mirroring the random I/O of the
/// paper's verification phase; positioned reads carry their own offset, so
/// concurrent `Get` calls never race on a shared file position.
///
/// Persistence is crash-safe: `Create` commits the image through the
/// generation container (`io::durable` — write-temp, fsync, atomic rename,
/// checksummed header) and `Open` loads the newest valid generation,
/// falling back to the previous one after a torn write. Legacy headerless
/// files still open (treated as generation 0).
class DiskSequenceStore : public SequenceSource {
 public:
  /// Writes `rows` to `path` (crash-safely) and opens the resulting store.
  /// `env` defaults to the POSIX filesystem.
  static Result<std::unique_ptr<DiskSequenceStore>> Create(
      const std::string& path, const std::vector<std::vector<double>>& rows,
      io::Env* env = nullptr);

  /// Opens an existing store file (newest valid generation).
  static Result<std::unique_ptr<DiskSequenceStore>> Open(
      const std::string& path, io::Env* env = nullptr);

  ~DiskSequenceStore() override = default;

  DiskSequenceStore(const DiskSequenceStore&) = delete;
  DiskSequenceStore& operator=(const DiskSequenceStore&) = delete;

  Result<std::vector<double>> Get(ts::SeriesId id) override;
  Status GetBatch(ts::SeriesId first, size_t count,
                  std::vector<double>* flat) override;
  size_t num_series() const override { return count_; }
  size_t series_length() const override { return length_; }
  uint64_t read_count() const override {
    return reads_.load(std::memory_order_relaxed);
  }
  void ResetCounters() override {
    reads_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
  }

  /// Bytes fetched from disk since the last reset.
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }

  /// The generation this store was loaded from (0 for legacy images).
  uint64_t generation() const { return generation_; }

  /// Overwrites record `id` in place with `row` (one positioned write at
  /// the record's offset, then fsync). Serves the streaming append path,
  /// which must update a row without rewriting the whole image.
  ///
  /// Deliberate trade-off: the in-place write goes *behind* the generation
  /// container's whole-payload checksum, so after the first update the
  /// checksum recorded at commit time is stale — a subsequent `Open` of this
  /// same generation would report a checksum mismatch. That is acceptable
  /// because streamed state is never recovered from this file: crash
  /// recovery rebuilds the store from the base image and replays the WAL,
  /// which recreates the file through a fresh `Create`. Not safe against
  /// concurrent `Get`s of the same id; callers hold the engine writer lock.
  Status UpdateRecord(ts::SeriesId id, const std::vector<double>& row);

  /// Structural self-check: re-reads the header from disk (magic, count,
  /// length must match the in-memory view) and verifies the file size equals
  /// header + count * length records. Reports the exact violations as
  /// `Status::Corruption`.
  Status Validate() const;

 private:
  DiskSequenceStore(std::string path, std::string resolved_path, io::Env* env,
                    std::unique_ptr<io::File> file, uint64_t payload_offset,
                    uint64_t generation, size_t count, size_t length)
      : path_(std::move(path)),
        resolved_path_(std::move(resolved_path)),
        env_(env),
        file_(std::move(file)),
        payload_offset_(payload_offset),
        generation_(generation),
        count_(count),
        length_(length) {}

  std::string path_;
  std::string resolved_path_;  // Physical file backing this generation.
  io::Env* env_;               // For the lazy read-write reopen below.
  std::unique_ptr<io::File> file_;
  std::unique_ptr<io::File> write_file_;  // Lazily opened by UpdateRecord.
  uint64_t payload_offset_;
  uint64_t generation_;
  size_t count_;
  size_t length_;
  std::atomic<uint64_t> reads_ = 0;
  std::atomic<uint64_t> bytes_read_ = 0;
};

}  // namespace s2::storage

#endif  // S2_STORAGE_SEQUENCE_STORE_H_
