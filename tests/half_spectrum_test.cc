#include "repr/half_spectrum.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/stats.h"

namespace s2::repr {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.Normal(0, 1);
  return x;
}

TEST(HalfSpectrumTest, ShapeEvenAndOdd) {
  auto even = HalfSpectrum::FromSeries(RandomSeries(64, 1));
  ASSERT_TRUE(even.ok());
  EXPECT_EQ(even->n(), 64u);
  EXPECT_EQ(even->num_bins(), 33u);
  auto odd = HalfSpectrum::FromSeries(RandomSeries(65, 2));
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(odd->num_bins(), 33u);
}

TEST(HalfSpectrumTest, MultiplicityEdges) {
  auto even = HalfSpectrum::FromSeries(RandomSeries(64, 3));
  ASSERT_TRUE(even.ok());
  EXPECT_DOUBLE_EQ(even->multiplicity(0), 1.0);   // DC.
  EXPECT_DOUBLE_EQ(even->multiplicity(32), 1.0);  // Nyquist.
  EXPECT_DOUBLE_EQ(even->multiplicity(1), 2.0);
  EXPECT_DOUBLE_EQ(even->multiplicity(31), 2.0);
  auto odd = HalfSpectrum::FromSeries(RandomSeries(65, 4));
  ASSERT_TRUE(odd.ok());
  EXPECT_DOUBLE_EQ(odd->multiplicity(0), 1.0);
  EXPECT_DOUBLE_EQ(odd->multiplicity(32), 2.0);  // No Nyquist for odd n.
}

TEST(HalfSpectrumTest, EnergyMatchesTimeDomain) {
  for (size_t n : {16u, 64u, 365u, 1024u}) {
    const std::vector<double> x = RandomSeries(n, 5 + n);
    auto spectrum = HalfSpectrum::FromSeries(x);
    ASSERT_TRUE(spectrum.ok());
    EXPECT_NEAR(spectrum->Energy(), dsp::Energy(x), 1e-7 * dsp::Energy(x)) << n;
  }
}

TEST(HalfSpectrumTest, DistanceEqualsTimeDomainEuclidean) {
  for (size_t n : {32u, 365u, 512u}) {
    const std::vector<double> a = RandomSeries(n, 10 + n);
    const std::vector<double> b = RandomSeries(n, 20 + n);
    auto sa = HalfSpectrum::FromSeries(a);
    auto sb = HalfSpectrum::FromSeries(b);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    auto spectral = sa->DistanceTo(*sb);
    ASSERT_TRUE(spectral.ok());
    const double direct = *dsp::Euclidean(a, b);
    EXPECT_NEAR(*spectral, direct, 1e-8 * (1.0 + direct)) << n;
  }
}

TEST(HalfSpectrumTest, DistanceRejectsLengthMismatch) {
  auto a = HalfSpectrum::FromSeries(RandomSeries(32, 1));
  auto b = HalfSpectrum::FromSeries(RandomSeries(64, 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->DistanceTo(*b).ok());
}

TEST(HalfSpectrumTest, FromPartsValidates) {
  EXPECT_FALSE(HalfSpectrum::FromParts(0, {}).ok());
  EXPECT_FALSE(HalfSpectrum::FromParts(8, std::vector<Complex>(3)).ok());
  EXPECT_TRUE(HalfSpectrum::FromParts(8, std::vector<Complex>(5)).ok());
}

TEST(HalfSpectrumTest, ReconstructAllBinsRecoversSignal) {
  for (size_t n : {64u, 100u}) {
    const std::vector<double> x = RandomSeries(n, 30 + n);
    auto spectrum = HalfSpectrum::FromSeries(x);
    ASSERT_TRUE(spectrum.ok());
    std::vector<uint32_t> all(spectrum->num_bins());
    std::iota(all.begin(), all.end(), 0u);
    auto back = spectrum->ReconstructFrom(all);
    ASSERT_TRUE(back.ok());
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*back)[i], x[i], 1e-8);
  }
}

TEST(HalfSpectrumTest, ReconstructSubsetReducesEnergyCorrectly) {
  // Keeping a subset S reproduces exactly the projection onto those bins:
  // residual energy == energy of the omitted bins (orthogonality).
  const std::vector<double> x = RandomSeries(128, 9);
  auto spectrum = HalfSpectrum::FromSeries(x);
  ASSERT_TRUE(spectrum.ok());
  const std::vector<uint32_t> kept = {1, 5, 9, 20};
  auto approx = spectrum->ReconstructFrom(kept);
  ASSERT_TRUE(approx.ok());
  double kept_energy = 0.0;
  for (uint32_t k : kept) {
    kept_energy += spectrum->multiplicity(k) * std::norm(spectrum->coeff(k));
  }
  EXPECT_NEAR(dsp::Energy(*approx), kept_energy, 1e-7 * (1.0 + kept_energy));
  // Residual = total - kept (Pythagoras in the orthogonal basis).
  const double residual = *dsp::SquaredEuclidean(x, *approx);
  EXPECT_NEAR(residual, spectrum->Energy() - kept_energy,
              1e-6 * (1.0 + spectrum->Energy()));
}

TEST(HalfSpectrumTest, ReconstructRejectsBadPositions) {
  auto spectrum = HalfSpectrum::FromSeries(RandomSeries(32, 3));
  ASSERT_TRUE(spectrum.ok());
  EXPECT_FALSE(spectrum->ReconstructFrom({99}).ok());
}

}  // namespace
}  // namespace s2::repr
