#include "querylog/synthesizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dsp/periodogram.h"
#include "dsp/stats.h"
#include "querylog/archetypes.h"
#include "timeseries/calendar.h"

namespace s2::qlog {
namespace {

TEST(SynthesizerTest, RejectsBadArguments) {
  Rng rng(1);
  QueryArchetype a;
  a.name = "x";
  EXPECT_FALSE(Synthesize(a, 0, 0, &rng).ok());
  EXPECT_FALSE(Synthesize(a, 0, 10, nullptr).ok());
}

TEST(SynthesizerTest, ProducesRequestedShape) {
  Rng rng(2);
  QueryArchetype a;
  a.name = "plain";
  a.base_rate = 100;
  auto series = Synthesize(a, 31, 365, &rng);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->name, "plain");
  EXPECT_EQ(series->start_day, 31);
  EXPECT_EQ(series->size(), 365u);
}

TEST(SynthesizerTest, CountsAreNonNegative) {
  Rng rng(3);
  QueryArchetype a = MakeRandomAperiodic("noise", &rng);
  auto series = Synthesize(a, 0, 1024, &rng);
  ASSERT_TRUE(series.ok());
  for (double v : series->values) EXPECT_GE(v, 0.0);
}

TEST(SynthesizerTest, DeterministicGivenSeed) {
  QueryArchetype a = MakeCinema();
  Rng rng1(42);
  Rng rng2(42);
  auto s1 = Synthesize(a, 0, 200, &rng1);
  auto s2 = Synthesize(a, 0, 200, &rng2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->values, s2->values);
}

TEST(SynthesizerTest, BaseRateControlsVolume) {
  Rng rng(4);
  QueryArchetype a;
  a.name = "big";
  a.base_rate = 1000;
  auto series = Synthesize(a, 0, 365, &rng);
  ASSERT_TRUE(series.ok());
  EXPECT_NEAR(dsp::Mean(series->values), 1000.0, 50.0);
}

TEST(SynthesizerTest, WeeklyIntensityFollowsDayOfWeek) {
  const QueryArchetype a = MakeCinema();
  // Friday intensity should exceed Monday intensity in every week.
  for (int32_t week = 0; week < 50; ++week) {
    int32_t monday = -1;
    int32_t friday = -1;
    for (int32_t d = week * 7; d < week * 7 + 7; ++d) {
      if (ts::DayOfWeek(d) == 0) monday = d;
      if (ts::DayOfWeek(d) == 4) friday = d;
    }
    ASSERT_GE(monday, 0);
    ASSERT_GE(friday, 0);
    EXPECT_GT(IntensityOn(a, friday), IntensityOn(a, monday));
  }
}

TEST(SynthesizerTest, AnnualBurstPeaksNearAnchor) {
  const QueryArchetype a = MakeHalloween();
  // Intensity at Halloween should dominate mid-year intensity.
  const int32_t halloween_2002 = ts::DateToDayIndex({2002, 10, 31});
  const int32_t midsummer_2002 = ts::DateToDayIndex({2002, 7, 1});
  EXPECT_GT(IntensityOn(a, halloween_2002), 3.0 * IntensityOn(a, midsummer_2002));
}

TEST(SynthesizerTest, AnnualBurstRecursEveryYear) {
  const QueryArchetype a = MakeElvis();
  for (int year : {2000, 2001, 2002}) {
    const int32_t aug16 = ts::DateToDayIndex({year, 8, 16});
    const int32_t july1 = ts::DateToDayIndex({year, 7, 1});
    EXPECT_GT(IntensityOn(a, aug16), 2.0 * IntensityOn(a, july1)) << year;
  }
}

TEST(SynthesizerTest, SharpDropCutsPostPeakDemand) {
  const QueryArchetype a = MakeEaster();
  const int32_t peak = ts::DateToDayIndex({2001, 4, 15});
  const int32_t month_after = peak + 30;
  const int32_t month_before = peak - 30;
  // Build-up before the peak, silence after it.
  EXPECT_GT(IntensityOn(a, month_before), IntensityOn(a, month_after));
}

TEST(SynthesizerTest, EventBurstIsLocalizedAndDecays) {
  const int32_t event_day = 500;
  const QueryArchetype a = MakeDudleyMoore(event_day);
  const double base = IntensityOn(a, 100);
  EXPECT_GT(IntensityOn(a, event_day), 5.0 * base);
  EXPECT_GT(IntensityOn(a, event_day), IntensityOn(a, event_day + 5));
  EXPECT_NEAR(IntensityOn(a, event_day + 200), base, base * 0.01);
}

TEST(SynthesizerTest, LunarPeriodicityDetectableInSpectrum) {
  Rng rng(5);
  const QueryArchetype a = MakeFullMoon();
  auto series = Synthesize(a, 0, 1024, &rng);
  ASSERT_TRUE(series.ok());
  auto psd = dsp::PeriodogramOf(dsp::Standardize(series->values));
  ASSERT_TRUE(psd.ok());
  size_t argmax = 1;
  for (size_t k = 1; k < psd->size(); ++k) {
    if ((*psd)[k] > (*psd)[argmax]) argmax = k;
  }
  const double period = dsp::BinToPeriod(argmax, 1024);
  EXPECT_NEAR(period, 29.53, 1.5);
}

TEST(SynthesizerTest, GaussianNoiseModeWhenPoissonDisabled) {
  Rng rng(6);
  QueryArchetype a;
  a.name = "gauss";
  a.base_rate = 200;
  a.poisson_counts = false;
  a.noise_sigma = 0.01;
  auto series = Synthesize(a, 0, 512, &rng);
  ASSERT_TRUE(series.ok());
  // With tiny Gaussian noise, values hug the base rate tightly.
  for (double v : series->values) EXPECT_NEAR(v, 200.0, 200.0 * 0.06);
}

}  // namespace
}  // namespace s2::qlog
