#include "stream/wal.h"

#include <cstring>
#include <utility>
#include <vector>

#include "io/durable.h"

namespace s2::stream {

namespace {

constexpr char kWalMagic[8] = {'S', '2', 'W', 'A', 'L', 'F', '0', '1'};
constexpr size_t kPayloadBytes = sizeof(uint32_t) + sizeof(double);
constexpr size_t kRecordBytes = kPayloadBytes + sizeof(uint64_t);

uint64_t ChainSeed() {
  return io::durable::Fnv1a64(kWalMagic, sizeof(kWalMagic));
}

void EncodeRecord(const WalRecord& record, uint64_t chain, char* out) {
  const uint32_t id = record.series_id;
  std::memcpy(out, &id, sizeof(id));
  std::memcpy(out + sizeof(id), &record.value, sizeof(record.value));
  const uint64_t sum = io::durable::Fnv1a64(out, kPayloadBytes, chain);
  std::memcpy(out + kPayloadBytes, &sum, sizeof(sum));
}

// Decodes one record, verifying the chained checksum. Returns false on a
// mismatch (torn or stale bytes).
bool DecodeRecord(const char* in, uint64_t chain, WalRecord* record,
                  uint64_t* next_chain) {
  uint64_t stored = 0;
  std::memcpy(&stored, in + kPayloadBytes, sizeof(stored));
  const uint64_t expected = io::durable::Fnv1a64(in, kPayloadBytes, chain);
  if (stored != expected) return false;
  uint32_t id = 0;
  std::memcpy(&id, in, sizeof(id));
  record->series_id = id;
  std::memcpy(&record->value, in + sizeof(id), sizeof(record->value));
  *next_chain = stored;
  return true;
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(
    io::Env* env, const std::string& path,
    const std::function<Status(const WalRecord&)>& apply, ReplayInfo* info,
    const Options& options) {
  if (env == nullptr) env = io::Env::Default();
  if (options.sync_every == 0) {
    return Status::InvalidArgument("Wal: sync_every must be > 0");
  }
  S2_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                      env->Open(path, io::OpenMode::kReadWrite));
  S2_ASSIGN_OR_RETURN(uint64_t size, file->Size());

  if (size == 0) {
    // Fresh log: write and sync the header before acknowledging anything.
    S2_RETURN_NOT_OK(io::WriteExactAt(file.get(), kWalMagic, sizeof(kWalMagic), 0));
    S2_RETURN_NOT_OK(file->Sync());
    if (info != nullptr) *info = ReplayInfo{};
    return std::unique_ptr<Wal>(new Wal(path, std::move(file), options,
                                        sizeof(kWalMagic), ChainSeed(), 0));
  }

  if (size < sizeof(kWalMagic)) {
    return Status::Corruption("Wal: truncated header in " + path);
  }
  char magic[sizeof(kWalMagic)];
  S2_RETURN_NOT_OK(io::ReadExactAt(file.get(), magic, sizeof(magic), 0));
  if (std::memcmp(magic, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption("Wal: bad magic in " + path);
  }

  // Replay: scan intact records, stop at the first torn/stale one. The
  // whole body is read once (logs are bounded by the append rate between
  // compaction checkpoints, not by corpus size).
  const uint64_t body = size - sizeof(kWalMagic);
  std::vector<char> bytes(static_cast<size_t>(body));
  if (body > 0) {
    S2_RETURN_NOT_OK(
        io::ReadExactAt(file.get(), bytes.data(), bytes.size(), sizeof(kWalMagic)));
  }
  uint64_t chain = ChainSeed();
  size_t offset = 0;
  size_t records = 0;
  while (offset + kRecordBytes <= bytes.size()) {
    WalRecord record;
    uint64_t next_chain = 0;
    if (!DecodeRecord(bytes.data() + offset, chain, &record, &next_chain)) break;
    S2_RETURN_NOT_OK(apply(record));
    chain = next_chain;
    offset += kRecordBytes;
    ++records;
  }
  if (info != nullptr) {
    info->records = records;
    info->dropped_bytes = body - offset;
  }
  return std::unique_ptr<Wal>(new Wal(path, std::move(file), options,
                                      sizeof(kWalMagic) + offset, chain,
                                      records));
}

Status Wal::Append(const WalRecord& record) {
  char buf[kRecordBytes];
  EncodeRecord(record, chain_, buf);
  S2_RETURN_NOT_OK(io::WriteExactAt(file_.get(), buf, sizeof(buf), tail_));
  if (unsynced_ + 1 >= options_.sync_every) {
    // Sync before advancing: on failure the log state is unchanged and a
    // retried append overwrites the same offset with the same chain.
    S2_RETURN_NOT_OK(file_->Sync());
    unsynced_ = 0;
  } else {
    ++unsynced_;
  }
  tail_ += sizeof(buf);
  std::memcpy(&chain_, buf + kPayloadBytes, sizeof(chain_));
  ++record_count_;
  return Status::OK();
}

Status Wal::Sync() {
  if (unsynced_ == 0) return Status::OK();
  S2_RETURN_NOT_OK(file_->Sync());
  unsynced_ = 0;
  return Status::OK();
}

}  // namespace s2::stream
