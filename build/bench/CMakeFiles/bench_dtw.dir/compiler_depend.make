# Empty compiler generated dependencies file for bench_dtw.
# This may be replaced when dependencies are built.
