// Reproduces paper Figures 14-16: moving-average burst detection for
// "Halloween" (2002) and "Easter" (2000-2002), and the compact triplet
// representation for "flowers" (Valentine's + Mother's Day) and "full moon"
// (monthly bursts with the short-term detector).

#include <cstdio>

#include "bench/bench_util.h"
#include "burst/burst_detector.h"
#include "common/rng.h"
#include "querylog/archetypes.h"
#include "querylog/synthesizer.h"
#include "timeseries/calendar.h"

namespace s2 {
namespace {

void ShowBursts(const char* title, const ts::TimeSeries& series,
                const burst::BurstDetector& detector) {
  auto trace = detector.DetectWithTrace(series.values);
  if (!trace.ok()) {
    std::printf("detection failed: %s\n", trace.status().ToString().c_str());
    return;
  }
  std::printf("\n%s   (w = %zu, cutoff = mean + %.1f std = %.3f)\n", title,
              detector.options().window, detector.options().cutoff_stds,
              trace->cutoff);
  std::printf("  data   %s\n", bench::Sparkline(series.values, 96).c_str());
  std::printf("  MA_%-2zu  %s\n", detector.options().window,
              bench::Sparkline(trace->moving_average, 96).c_str());

  // Burst mask rendered against the same time axis.
  std::string mask(96, '.');
  for (const auto& region : trace->regions) {
    const size_t lo = static_cast<size_t>(region.start) * mask.size() / series.size();
    const size_t hi = static_cast<size_t>(region.end) * mask.size() / series.size();
    for (size_t i = lo; i <= hi && i < mask.size(); ++i) mask[i] = '#';
  }
  std::printf("  burst  %s\n", mask.c_str());

  std::printf("  compact triplets [startDate, endDate, avgValue]:\n");
  for (const auto& region : trace->regions) {
    std::printf("    [%s, %s, %+.2f]  (%d days)\n",
                ts::FormatDayIndex(series.start_day + region.start).c_str(),
                ts::FormatDayIndex(series.start_day + region.end).c_str(),
                region.avg_value, region.length());
  }
  std::printf("  storage: %zu bursts x 16 bytes vs %zu bytes raw (%.1fx smaller)\n",
              trace->regions.size(), series.size() * sizeof(double),
              static_cast<double>(series.size() * sizeof(double)) /
                  (std::max<size_t>(1, trace->regions.size()) * 16.0));
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  Rng rng(1416);

  bench::PrintHeader("Figure 14: bursts of 'Halloween' during 2002 (w = 30)");
  {
    const int32_t start = ts::DateToDayIndex({2002, 1, 1});
    auto series = qlog::Synthesize(qlog::MakeHalloween(), start, 365, &rng);
    if (series.ok()) {
      ShowBursts("Halloween 2002", *series, burst::BurstDetector::LongTerm());
    }
  }

  bench::PrintHeader("Figure 15: bursts of 'Easter' over 2000-2002 (w = 30)");
  {
    auto series = qlog::Synthesize(qlog::MakeEaster(), 0, 1096, &rng);
    if (series.ok()) {
      ShowBursts("Easter 2000-2002", *series, burst::BurstDetector::LongTerm());
    }
  }

  bench::PrintHeader(
      "Figure 16: compact burst representation, 'flowers' and 'full moon'");
  {
    const int32_t start = ts::DateToDayIndex({2002, 1, 1});
    auto flowers = qlog::Synthesize(qlog::MakeFlowers(), start, 365, &rng);
    if (flowers.ok()) {
      ShowBursts("flowers (long-term)", *flowers, burst::BurstDetector::LongTerm());
    }
    auto moon = qlog::Synthesize(qlog::MakeFullMoon(), start, 365, &rng);
    if (moon.ok()) {
      // A sinusoidal demand curve barely exceeds mean + 1.5 std of its own
      // moving average; x = 1.0 fires once per lunar crest, matching the
      // paper's Figure 16.
      ShowBursts("full moon (short-term, w = 7, x = 1.0)", *moon,
                 burst::BurstDetector(burst::BurstDetector::Options{7, 1.0, true}));
    }
  }

  std::printf(
      "\nExpected shape (paper): Halloween bursts span Oct-Nov; Easter shows "
      "one burst per spring; flowers shows the Feb (Valentine's) and May "
      "(Mother's Day) bursts; full moon shows ~12 monthly bursts under the "
      "7-day detector.\n");
  return 0;
}
