#ifndef S2_SERVICE_S2_SERVER_H_
#define S2_SERVICE_S2_SERVER_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "base/sync.h"
#include "base/thread_annotations.h"
#include "ckpt/checkpoint_store.h"
#include "common/result.h"
#include "core/s2_engine.h"
#include "exec/thread_pool.h"
#include "monitor/alert_queue.h"
#include "monitor/monitor_wal.h"
#include "resilience/circuit_breaker.h"
#include "service/metrics.h"
#include "service/result_cache.h"
#include "service/scheduler.h"
#include "shard/sharded_engine.h"
#include "stream/wal.h"

namespace s2::service {

/// The concurrent query server: wraps a built `S2Engine` with a thread
/// pool + scheduler (admission control, deadlines, cancellation), an LRU
/// result cache and a metrics registry — the serving substrate the paper's
/// interactive S2 tool would need at MSN-log scale.
///
/// Concurrency model: query execution takes the engine lock in shared mode
/// (the engine's const read paths are reentrant — see the contracts in
/// s2_engine.h and sharded_engine.h); `AddSeries` takes it exclusively and
/// invalidates every cache entry a new series could change (similarity and
/// query-by-burst; cached periods/bursts of existing series survive) before
/// returning. Cache hits bypass the engine entirely: no lock, no VP-tree
/// traversal, no sequence-store reads.
///
/// The server runs over either a single `core::S2Engine` or a
/// `shard::ShardedEngine` (scatter-gather over N shards) — chosen at
/// construction, invisible to callers: same verbs, same answers (the shard
/// layer's equivalence tests prove bit-identical results), plus fan-out
/// metrics (`server_shard_fanout`, `server_shard_latency`,
/// `server_shard_prune_hits`) in sharded mode.
///
/// ## Degradation ladder (DESIGN.md §6)
///
/// 1. Transient disk faults retry inside the engine's sequence source
///    (bounded backoff; `server_retry_attempts` / `server_retry_giveups`).
/// 2. When the indexed path still fails on infrastructure trouble (I/O,
///    corruption, exhausted retries), similarity requests are re-answered by
///    the engine's exact RAM scan — same answer set, no disk — with
///    `QueryResponse::degraded` set and `server_degraded` incremented.
///    Degraded answers are never cached.
/// 3. Sustained primary-path failure trips a circuit breaker: while open,
///    requests are shed fast with `Unavailable` (`server_shed`,
///    `server_breaker_trips`) instead of piling retries onto a bad disk;
///    a half-open probe re-tests the primary path after the cooldown.
class S2Server {
 public:
  struct Options {
    Scheduler::Options scheduler;
    /// Result-cache entries; 0 disables caching.
    size_t cache_capacity = 1024;
    /// Circuit breaker over the primary (indexed) execution path.
    resilience::CircuitBreaker::Options breaker;
    /// When false, step 2 of the ladder is disabled: infrastructure
    /// failures surface to the caller instead of degrading.
    bool degrade_on_failure = true;
    /// Ladder rung between the failed indexed path and the exact RAM scan:
    /// a kSimilarTo request that opted into the approximate tier (set
    /// recall_target or max_candidates) is re-answered by the RAM-only
    /// approximate tier first — orders of magnitude cheaper than the exact
    /// scan, with the answer's quality bound attached. Requests that set no
    /// knob never take this rung (they asked for exact answers and get the
    /// exact-scan fallback, bit-identical to before this rung existed).
    bool degrade_to_approx = true;
    /// Engine topology used by the corpus-building `Build` factory:
    /// 1 = one engine over the whole corpus; N > 1 = N shards with
    /// scatter-gather execution; 0 = one shard per hardware thread.
    size_t shards = 1;
    /// Forwarded to `shard::ShardedEngine::Options` when `shards != 1`.
    std::vector<io::Env*> shard_envs;

    // --- Streaming ---------------------------------------------------------

    /// When non-empty, `Build` opens (creating or replaying) a write-ahead
    /// log at this path before serving starts: every `AppendPoint` is made
    /// durable in the log *before* it touches the engine, and on restart the
    /// intact log is replayed over the freshly rebuilt engine, so no
    /// acknowledged append is ever lost. Replay assumes the engine was
    /// rebuilt from the same base corpus the log was started against (the
    /// log holds only the appends, not the base data). Empty (default)
    /// disables logging: appends apply directly, with no crash durability.
    std::string wal_path;
    /// Filesystem for the WAL; null = the POSIX filesystem. Fault-injection
    /// tests point this at a `FaultInjectingEnv` to crash the log mid-write.
    io::Env* wal_env = nullptr;
    /// Records per WAL fsync group (see `stream::Wal::Options::sync_every`).
    size_t wal_sync_every = 1;
    /// Delta-tier size (summed across shards) at which an append schedules a
    /// background compaction on the maintenance thread. 0 disables automatic
    /// compaction — call `Compact()` yourself.
    size_t compaction_threshold = 64;

    // --- Checkpointing (s2::ckpt; requires a WAL) ---------------------------

    /// Enables the checkpoint subsystem: `Checkpoint()` becomes callable,
    /// the background checkpointer runs on the maintenance thread when a
    /// threshold below is set, and `Recover` loads the newest checkpoint
    /// instead of replaying the whole WAL. Checkpoint files live next to
    /// the WAL (`<wal_path>.manifest`, `<wal_path>.ckpt.<gen>`).
    bool checkpoint_enabled = false;
    /// Appends since the last checkpoint anchor that trigger a background
    /// checkpoint. 0 disables the append-count trigger.
    uint64_t checkpoint_every_appends = 0;
    /// Data-WAL bytes since the last checkpoint anchor that trigger a
    /// background checkpoint. 0 disables the byte trigger.
    uint64_t checkpoint_every_bytes = 0;
    /// Segment-body byte threshold for WAL rotation (both the data and
    /// monitor logs). 0 keeps the legacy single-file layout — required
    /// to be non-zero for checkpoint GC to ever reclaim log space.
    uint64_t wal_rotate_bytes = 0;
    /// After a successful checkpoint, unlink WAL segments wholly below
    /// the fallback anchor and snapshots of retired generations.
    bool checkpoint_gc = true;

    // --- Standing queries (s2::monitor) -------------------------------------

    /// Capacity of the alert delivery queue: fired-but-unacknowledged
    /// alerts beyond this drop oldest-first with overflow accounting
    /// (`monitor_alerts_dropped`, plus a detectable sequence gap).
    size_t alert_queue_capacity = 1024;
  };

  /// Streaming-state snapshot. Sizes and replay stats are point-in-time
  /// gauges, which the increment-only metrics registry cannot express — the
  /// `stream_*` counters/histograms cover the monotone side.
  struct StreamInfo {
    bool wal_enabled = false;
    /// Intact WAL records applied when the log was opened.
    size_t replayed_records = 0;
    /// Torn tail bytes the open ignored (crash artifacts, overwritten by the
    /// next append).
    uint64_t replay_dropped_bytes = 0;
    /// Wall time of open + replay.
    std::chrono::microseconds replay_time{0};
    /// Series currently living in delta tiers (all shards).
    size_t delta_size = 0;
    uint64_t append_count = 0;
    uint64_t compaction_count = 0;
  };

  /// Standing-query snapshot (point-in-time gauges; the monotone side lives
  /// in the `monitor_*` counters).
  struct MonitorInfo {
    bool wal_enabled = false;
    /// Subscription-lifecycle ops replayed from the monitor WAL at open.
    size_t replayed_ops = 0;
    /// Torn tail bytes the monitor-WAL open ignored.
    uint64_t replay_dropped_bytes = 0;
    size_t active_subscriptions = 0;
    size_t queue_depth = 0;
    uint64_t next_seq = 0;
    /// Highest acknowledged alert sequence; meaningful iff `any_acked`.
    uint64_t acked_upto = 0;
    bool any_acked = false;
    uint64_t alerts_fired = 0;
    uint64_t alerts_dropped = 0;
    uint64_t alerts_delivered = 0;
    uint64_t alerts_acked = 0;
  };

  /// Approximate-tier snapshot (point-in-time gauges; the monotone side
  /// lives in the `approx_*` counters).
  struct ApproxInfo {
    bool enabled = false;
    /// Summary projection width / quantization cells (the global config —
    /// identical on every shard by the ShardedEngine invariant).
    size_t summary_dims = 0;
    size_t summary_cells = 0;
    /// Resident envelope-plane bytes, summed over shards.
    size_t summary_bytes = 0;
    /// Series with live summary envelopes (== corpus size when enabled).
    size_t indexed_series = 0;
    /// Content fingerprint of the shared summary config (rebuild/recovery
    /// determinism checks compare these across runs).
    uint64_t config_fingerprint = 0;
  };

  ApproxInfo approx_info() S2_EXCLUDES(engine_mu_);

  /// Takes ownership of a built single engine.
  static std::unique_ptr<S2Server> Create(core::S2Engine engine,
                                          const Options& options);

  /// Takes ownership of a built sharded engine.
  static std::unique_ptr<S2Server> Create(shard::ShardedEngine engine,
                                          const Options& options);

  /// Builds the engine from a corpus, picking the topology from
  /// `options.shards`, and wraps it in a server.
  static Result<std::unique_ptr<S2Server>> Build(
      ts::Corpus corpus, const core::S2Engine::Options& engine_options,
      const Options& options);

  /// Crash recovery: loads the newest valid checkpoint next to
  /// `options.wal_path`, rebuilds the engine from its snapshot (corpus,
  /// subscriptions with live hysteresis state, alert queue, id counter),
  /// and replays only the WAL tails past the snapshot's anchors. Falls
  /// back to the previous checkpoint generation when the newest snapshot
  /// is corrupt, and to a full-WAL replay over `corpus` (identical to
  /// `Build`) when no checkpoint is recoverable at all. The result is
  /// bit-identical to a full replay at any shard count — the snapshot
  /// stores global-id order.
  static Result<std::unique_ptr<S2Server>> Recover(
      ts::Corpus corpus, const core::S2Engine::Options& engine_options,
      const Options& options);

  S2Server(const S2Server&) = delete;
  S2Server& operator=(const S2Server&) = delete;

  ~S2Server() { Shutdown(); }

  /// Asynchronous entry point: admits the request to the scheduler.
  /// Unavailable when the in-flight window is full (backpressure).
  Result<RequestTicket> Submit(const QueryRequest& request) {
    return scheduler_->Submit(request);
  }

  /// Synchronous entry point: cache lookup, then engine execution under the
  /// shared lock. Also the handler the scheduler's workers run.
  QueryResponse Execute(const QueryRequest& request) S2_EXCLUDES(engine_mu_);

  /// Ingests one more series (exclusive engine access) and invalidates the
  /// result cache. Fails while requests cannot be drained (never blocks
  /// forever: waits for in-flight readers, new readers queue behind it).
  Result<ts::SeriesId> AddSeries(ts::TimeSeries series) S2_EXCLUDES(engine_mu_);

  /// The append verb: slides series `id`'s window forward by one day with
  /// `value` as the new last sample (exclusive engine access). When a WAL is
  /// configured the append is durably acknowledged *before* it is applied;
  /// a logged append whose apply then fails surfaces the error but stays in
  /// the log, so the next replay re-applies it. The result cache drops every
  /// entry the slide can change (`InvalidateForAppend`), and crossing
  /// `compaction_threshold` schedules a background delta compaction.
  Status AppendPoint(ts::SeriesId id, double value) S2_EXCLUDES(engine_mu_);

  /// Synchronously merges every delta tier into its main index (exclusive
  /// engine access). Compaction moves series between tiers without changing
  /// any answer — the two-tier search is exact — so the cache keeps its
  /// entries. Also the body of the background maintenance task.
  Status Compact() S2_EXCLUDES(engine_mu_);

  /// Opens the WAL at `options.wal_path` and replays it into the engine.
  /// `Build` calls this automatically; call it yourself exactly once before
  /// serving when constructing via `Create` with a `wal_path` set. No-op
  /// when `wal_path` is empty or the log is already open.
  Status OpenWal() S2_EXCLUDES(engine_mu_);

  StreamInfo stream_info() S2_EXCLUDES(engine_mu_);

  // --- Standing queries (subscribe / poll-alerts verbs) ----------------------

  /// Registers a standing subscription (`sub.series` is the public series
  /// id; `sub.id` is assigned here and returned). When a WAL is configured
  /// the registration is durably logged — with the stream position it armed
  /// at — before it is acknowledged, so a crash replays it into exactly the
  /// state it had. Exclusive engine access.
  Result<monitor::SubscriptionId> Subscribe(monitor::Subscription sub)
      S2_EXCLUDES(engine_mu_);

  /// Durably cancels a standing subscription. Exclusive engine access.
  Status Unsubscribe(monitor::SubscriptionId id) S2_EXCLUDES(engine_mu_);

  /// Copies up to `max` pending alerts without retiring them — at-least-once
  /// delivery; call `AckAlerts` with the last consumed sequence number to
  /// retire. Lock-free with respect to the engine (the queue is internally
  /// synchronized), so pollers never stall appends.
  std::vector<monitor::Alert> PollAlerts(size_t max);

  /// Durably acknowledges every alert with seq <= `upto_seq` (logged before
  /// applied, so replay retires exactly the acknowledged range and re-fires
  /// everything after it). Exclusive engine access.
  Status AckAlerts(uint64_t upto_seq) S2_EXCLUDES(engine_mu_);

  MonitorInfo monitor_info() S2_EXCLUDES(engine_mu_);

  /// The alert delivery queue (tests inspect stats directly).
  const monitor::AlertQueue& alerts() const { return alert_queue_; }

  // --- Checkpointing (coordinated snapshot + WAL tail; DESIGN.md §11) -------

  /// Checkpoint-state snapshot (point-in-time gauges; the monotone side
  /// lives in the `checkpoint_*` counters).
  struct CheckpointInfo {
    bool enabled = false;
    /// The last generation this process committed (0 = none yet).
    uint64_t generation = 0;
    /// The last committed checkpoint's anchors.
    uint64_t anchor_appends = 0;
    uint64_t anchor_monitor_ops = 0;
    /// How this server came up: from a checkpoint (vs cold/full replay),
    /// and whether the previous generation had to stand in for a corrupt
    /// newest snapshot.
    bool recovered_from_checkpoint = false;
    bool recovered_from_fallback = false;
    /// Where WAL replay started at recovery (0 on cold starts): the
    /// loaded snapshot's anchors.
    uint64_t recovery_anchor_appends = 0;
    uint64_t recovery_anchor_monitor_ops = 0;
  };

  /// Takes one coordinated checkpoint now: captures the engine image,
  /// registry state, alert queue and WAL anchors atomically under the
  /// writer lock (appends block only for the in-memory copy), then
  /// encodes and commits snapshot + manifest off-lock, then GCs retired
  /// WAL segments and snapshots. Unavailable when one is already in
  /// flight; InvalidArgument without a WAL.
  Status Checkpoint() S2_EXCLUDES(engine_mu_);

  CheckpointInfo checkpoint_info() S2_EXCLUDES(engine_mu_);

  /// Graceful shutdown: drains admitted requests, joins workers, waits out
  /// in-flight background maintenance, then flushes any open WAL fsync
  /// group so a clean restart loses nothing `sync_every > 1` deferred.
  /// Idempotent.
  void Shutdown() S2_EXCLUDES(engine_mu_);

  /// True when the server runs scatter-gather over shards.
  bool is_sharded() const { return sharded_.has_value(); }

  /// The single engine; only valid when `!is_sharded()`.
  const core::S2Engine& engine() const { return *engine_; }
  /// The sharded engine; only valid when `is_sharded()`.
  const shard::ShardedEngine& sharded() const { return *sharded_; }

  MetricsRegistry& metrics() { return metrics_; }
  ResultCache& cache() { return cache_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  const resilience::CircuitBreaker& breaker() const { return breaker_; }

  /// Plain-text metrics snapshot (counters + latency percentiles).
  std::string MetricsText() const { return metrics_.TextSnapshot(); }

 private:
  S2Server(std::optional<core::S2Engine> engine,
           std::optional<shard::ShardedEngine> sharded, const Options& options);

  /// Runs the request against whichever engine is live; fills `response`.
  /// Sharded execution also exports fan-out/latency/prune metrics.
  void Dispatch(const QueryRequest& request, QueryResponse* response)
      S2_REQUIRES_SHARED(engine_mu_);

  /// Step 2 of the ladder: re-answers `request` via the exact RAM fallback.
  /// `primary` is the failed primary-path response (its status is kept when
  /// the request kind has no RAM fallback).
  QueryResponse Degrade(const QueryRequest& request, QueryResponse primary)
      S2_REQUIRES_SHARED(engine_mu_);

  /// Folds the engine-level retry counters and breaker trip count into the
  /// metrics registry (counters are increment-only, so this exports deltas).
  void SyncResilienceMetrics() S2_EXCLUDES(export_mu_);

  /// Routes an append to whichever engine is live (owner shard when
  /// sharded).
  Status EngineAppend(ts::SeriesId id, double value) S2_REQUIRES(engine_mu_);

  /// Series currently in delta tiers, summed over shards.
  size_t EngineDeltaSize() const S2_REQUIRES_SHARED(engine_mu_);

  /// Schedules the background compaction task when the delta tier has
  /// crossed the threshold and none is already in flight. Caller holds the
  /// exclusive lock — the delta-size snapshot and the inflight-flag
  /// transition form one atomic scheduling step under the same lock every
  /// append holds, which is what makes the handoff below airtight.
  void MaybeScheduleCompaction() S2_REQUIRES(engine_mu_);

  /// The maintenance-thread body: compacts, then re-checks the delta size
  /// *under the engine lock* before clearing the inflight flag — appends
  /// that crossed the threshold while this ran skipped scheduling (the flag
  /// was set), so clearing without the locked re-check would strand their
  /// delta above threshold forever once appends stop (missed wakeup).
  void BackgroundCompaction() S2_EXCLUDES(engine_mu_);

  /// Routes a subscription/cancellation to whichever engine is live (owner
  /// shard when sharded).
  Status EngineSubscribe(monitor::Subscription sub) S2_REQUIRES(engine_mu_);
  Status EngineUnsubscribe(monitor::SubscriptionId id)
      S2_REQUIRES(engine_mu_);
  bool EngineHasSubscription(monitor::SubscriptionId id) const
      S2_REQUIRES_SHARED(engine_mu_);
  size_t EngineSubscriptionCount() const S2_REQUIRES_SHARED(engine_mu_);

  /// Applies one replayed monitor-WAL op.
  Status ApplyMonitorOp(const monitor::MonitorOp& op)
      S2_REQUIRES(engine_mu_);

  /// Cursor shared between OpenWal and the WAL replay callback: the decoded
  /// monitor ops, how many have been applied, and how many data records
  /// have been replayed (the anchor the next op waits for).
  struct ReplayState {
    const std::vector<monitor::MonitorOp>* ops = nullptr;
    size_t next_op = 0;
    uint64_t applied_appends = 0;
  };

  /// Applies every decoded monitor op anchored at or before `upto`.
  Status ApplyMonitorOpsUpTo(uint64_t upto, ReplayState* state)
      S2_REQUIRES(engine_mu_);

  /// Applies one replayed data-WAL record (monitor ops anchored before it
  /// first, then the append itself). Runs inside stream::Wal::Open's
  /// std::function replay callback, which OpenWal invokes while holding the
  /// writer lock for the whole replay; the type-erased seam hides that
  /// context from the analysis, so it is suppressed here rather than
  /// expressed — the runtime rank checker still sees the lock held.
  Status ReplayWalRecord(const stream::WalRecord& record, ReplayState* state)
      S2_NO_THREAD_SAFETY_ANALYSIS;

  /// Exports delivery-queue counter deltas into the metrics registry and
  /// samples the evaluation-latency histogram.
  void SyncMonitorMetrics() S2_EXCLUDES(export_mu_);

  /// Copies the coordinated image out under the writer lock: syncs the
  /// data WAL first (an open fsync group's records count as durable only
  /// after the flush, and the anchor must never exceed the durable
  /// count), then reads both anchors and every piece of restorable state
  /// at that single stream position.
  Status CaptureSnapshot(ckpt::EngineSnapshot* snapshot,
                         std::vector<uint64_t>* shard_checksums,
                         std::vector<ckpt::SegmentMeta>* data_segments,
                         std::vector<ckpt::SegmentMeta>* monitor_segments)
      S2_EXCLUDES(engine_mu_);

  /// The checkpoint body `Checkpoint` and the background task share;
  /// assumes the in-flight guard is held by the caller.
  Status DoCheckpoint() S2_EXCLUDES(engine_mu_);

  /// Schedules a background checkpoint when an append/byte threshold has
  /// been crossed and none is in flight. Caller holds the exclusive lock
  /// (same scheduling discipline as MaybeScheduleCompaction).
  void MaybeScheduleCheckpoint() S2_REQUIRES(engine_mu_);

  /// The maintenance-thread checkpoint task: runs DoCheckpoint, counts
  /// failures, releases the in-flight guard.
  void BackgroundCheckpoint() S2_EXCLUDES(engine_mu_);

  /// Installs a loaded snapshot into a freshly built server (registry
  /// state, alert queue, id counter, recovery anchors) before OpenWal
  /// replays the tail.
  Status RestoreFromSnapshot(const ckpt::CheckpointStore::Loaded& loaded)
      S2_EXCLUDES(engine_mu_);

  // Exactly one of these is engaged, chosen at construction, and never
  // re-seated afterwards — the optionals themselves are effectively const
  // (so they stay unannotated); the *engine state inside them* is protected
  // by engine_mu_, which the Engine* helpers' REQUIRES annotations express.
  std::optional<core::S2Engine> engine_;
  std::optional<shard::ShardedEngine> sharded_;
  Options options_;
  MetricsRegistry metrics_;
  ResultCache cache_;
  resilience::CircuitBreaker breaker_;
  sync::SharedMutex engine_mu_{sync::LockRank::kEngineState,
                               "service::S2Server::engine"};
  Counter* engine_calls_ = nullptr;  ///< Executions that reached the engine.
  Counter* degraded_ = nullptr;      ///< Requests answered by the fallback.
  Counter* shed_ = nullptr;          ///< Requests rejected while open.
  // Sharded-execution metrics (registered always, moved only when sharded).
  Counter* shard_fanout_ = nullptr;      ///< Shard searches issued, total.
  Counter* shard_prune_hits_ = nullptr;  ///< Cross-shard prune decisions.
  LatencyHistogram* shard_latency_ = nullptr;  ///< Per-shard search time.
  // Approximate-tier metrics (DESIGN.md §13).
  Counter* approx_queries_ = nullptr;     ///< Approximate answers produced.
  Counter* approx_guaranteed_ = nullptr;  ///< ...whose bound proved exactness.
  Counter* approx_degraded_ = nullptr;    ///< kSimilarTo degraded via approx.
  LatencyHistogram* approx_candidates_ = nullptr;  ///< Candidate-set sizes.
  Counter* retry_attempts_ = nullptr;
  Counter* retry_giveups_ = nullptr;
  Counter* breaker_trips_ = nullptr;
  // Streaming metrics.
  Counter* stream_appends_ = nullptr;          ///< Acknowledged + applied appends.
  Counter* stream_compactions_ = nullptr;      ///< Completed delta merges.
  Counter* stream_compacted_series_ = nullptr; ///< Series moved delta -> main.
  Counter* stream_replay_records_ = nullptr;   ///< WAL records applied at open.
  LatencyHistogram* stream_append_latency_ = nullptr;
  LatencyHistogram* stream_compaction_latency_ = nullptr;
  // Standing-query metrics.
  Counter* monitor_subscribes_ = nullptr;       ///< Acknowledged registrations.
  Counter* monitor_unsubscribes_ = nullptr;     ///< Acknowledged cancellations.
  Counter* monitor_alerts_fired_ = nullptr;     ///< Alerts pushed to the queue.
  Counter* monitor_alerts_dropped_ = nullptr;   ///< Overflow-dropped alerts.
  Counter* monitor_alerts_delivered_ = nullptr; ///< Alerts handed to pollers.
  LatencyHistogram* monitor_eval_latency_ = nullptr;  ///< Per-append eval time.
  // Replay observability (satellite of the recovery work: these existed
  // only as StreamInfo/MonitorInfo gauges before).
  Counter* stream_replay_dropped_ = nullptr;   ///< Torn data-WAL bytes ignored.
  Counter* monitor_replay_ops_ = nullptr;      ///< Monitor ops replayed at open.
  Counter* monitor_replay_dropped_ = nullptr;  ///< Torn monitor-WAL bytes.
  // Checkpoint metrics.
  Counter* checkpoint_count_ = nullptr;        ///< Committed checkpoints.
  Counter* checkpoint_failures_ = nullptr;     ///< Failed checkpoint attempts.
  Counter* checkpoint_gc_segments_ = nullptr;  ///< WAL segments unlinked by GC.
  Counter* checkpoint_gc_snapshots_ = nullptr; ///< Snapshot files unlinked.
  LatencyHistogram* checkpoint_latency_ = nullptr;  ///< End-to-end commit time.
  /// Guards the exported_* snapshots.
  sync::Mutex export_mu_{sync::LockRank::kMetricsExport,
                         "service::S2Server::export"};
  uint64_t exported_retries_ S2_GUARDED_BY(export_mu_) = 0;
  uint64_t exported_giveups_ S2_GUARDED_BY(export_mu_) = 0;
  uint64_t exported_trips_ S2_GUARDED_BY(export_mu_) = 0;
  uint64_t exported_fired_ S2_GUARDED_BY(export_mu_) = 0;
  uint64_t exported_dropped_ S2_GUARDED_BY(export_mu_) = 0;
  uint64_t exported_delivered_ S2_GUARDED_BY(export_mu_) = 0;
  uint64_t exported_evals_ S2_GUARDED_BY(export_mu_) = 0;
  // Streaming state. The WAL and replay stats are written once under the
  // exclusive lock in OpenWal; the maintenance pool runs at most one
  // compaction at a time, gated by the inflight flag.
  std::unique_ptr<stream::Wal> wal_ S2_GUARDED_BY(engine_mu_);
  size_t replayed_records_ S2_GUARDED_BY(engine_mu_) = 0;
  uint64_t replay_dropped_bytes_ S2_GUARDED_BY(engine_mu_) = 0;
  std::chrono::microseconds replay_time_ S2_GUARDED_BY(engine_mu_){0};
  // Standing-query state. The delivery queue is internally synchronized
  // (producers: the append path on any shard; consumers: poll/ack verbs);
  // everything else here mutates only under the exclusive engine lock.
  monitor::AlertQueue alert_queue_;
  std::unique_ptr<monitor::MonitorWal> monitor_wal_ S2_GUARDED_BY(engine_mu_);
  monitor::SubscriptionId next_subscription_id_ S2_GUARDED_BY(engine_mu_) = 0;
  size_t replayed_monitor_ops_ S2_GUARDED_BY(engine_mu_) = 0;
  uint64_t monitor_replay_dropped_bytes_ S2_GUARDED_BY(engine_mu_) = 0;
  // Checkpoint state. `Recover` seeds the recovery_* anchors before
  // OpenWal so tail replay starts at the snapshot's stream position; the
  // in-flight flag single-files checkpoints exactly like compactions.
  std::unique_ptr<ckpt::CheckpointStore> checkpoint_store_;
  uint64_t recovery_anchor_appends_ S2_GUARDED_BY(engine_mu_) = 0;
  uint64_t recovery_anchor_monitor_ops_ S2_GUARDED_BY(engine_mu_) = 0;
  bool recovered_from_checkpoint_ S2_GUARDED_BY(engine_mu_) = false;
  bool recovered_from_fallback_ S2_GUARDED_BY(engine_mu_) = false;
  /// The data-WAL record count at the last committed checkpoint anchor
  /// (or recovery anchor), the baseline the scheduling thresholds measure
  /// from.
  uint64_t last_checkpoint_records_ S2_GUARDED_BY(engine_mu_) = 0;
  uint64_t last_checkpoint_generation_ S2_GUARDED_BY(engine_mu_) = 0;
  uint64_t last_checkpoint_anchor_appends_ S2_GUARDED_BY(engine_mu_) = 0;
  uint64_t last_checkpoint_anchor_monitor_ops_ S2_GUARDED_BY(engine_mu_) = 0;
  std::unique_ptr<exec::ThreadPool> maintenance_;
  std::atomic<bool> compaction_inflight_{false};
  std::atomic<bool> checkpoint_inflight_{false};
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace s2::service

#endif  // S2_SERVICE_S2_SERVER_H_
