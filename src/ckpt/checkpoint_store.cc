#include "ckpt/checkpoint_store.h"

#include <cstdlib>
#include <utility>

#include "io/durable.h"

namespace s2::ckpt {

namespace {

/// Parses the generation out of a snapshot file name's `<digits>` or
/// `<digits>.tmp` suffix. False for anything else (foreign files that
/// happen to share the prefix are left alone).
bool ParseSnapshotGen(const std::string& suffix, uint64_t* gen) {
  std::string digits = suffix;
  const std::string tmp = ".tmp";
  if (digits.size() > tmp.size() &&
      digits.compare(digits.size() - tmp.size(), tmp.size(), tmp) == 0) {
    digits.resize(digits.size() - tmp.size());
  }
  if (digits.empty() || digits.size() > 19) return false;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  *gen = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(io::Env* env, std::string base)
    : env_(env != nullptr ? env : io::Env::Default()),
      base_(std::move(base)) {}

uint64_t CheckpointStore::CorpusChecksum(
    const std::vector<ts::TimeSeries>& series) {
  uint64_t sum = io::durable::Fnv1a64(nullptr, 0);
  for (const ts::TimeSeries& s : series) {
    sum = io::durable::Fnv1a64(s.name.data(), s.name.size(), sum);
    const int64_t start_day = s.start_day;
    sum = io::durable::Fnv1a64(&start_day, sizeof(start_day), sum);
    sum = io::durable::Fnv1a64(s.values.data(),
                               s.values.size() * sizeof(double), sum);
  }
  return sum;
}

Status CheckpointStore::Commit(const EngineSnapshot& snapshot,
                               uint64_t shard_count,
                               std::vector<uint64_t> shard_checksums,
                               std::vector<SegmentMeta> data_segments,
                               std::vector<SegmentMeta> monitor_segments,
                               Manifest* manifest_out) {
  // The outgoing manifest (if any) supplies the fallback meta. A corrupt
  // one is treated as absent: the commit in flight is complete on its
  // own, and advertising a fallback we could not read would send recovery
  // to a snapshot of unknown pedigree.
  Manifest manifest;
  manifest.has_prev = false;
  uint64_t manifest_gen = 0;
  {
    std::vector<char> payload;
    const Status loaded = io::durable::LoadLatest(env_, ManifestPath(),
                                                  &payload, &manifest_gen);
    if (loaded.ok()) {
      Manifest old;
      if (DecodeManifest(payload.data(), payload.size(), &old).ok()) {
        manifest.prev = old.current;
        manifest.has_prev = true;
      }
    } else if (loaded.code() != StatusCode::kNotFound) {
      manifest_gen = io::durable::CurrentGeneration(env_, ManifestPath());
    }
  }

  const uint64_t gen = manifest_gen + 1;
  manifest.current.generation = gen;
  manifest.current.anchor_appends = snapshot.anchor_appends;
  manifest.current.anchor_monitor_ops = snapshot.anchor_monitor_ops;
  manifest.shard_count = shard_count;
  manifest.shard_checksums = std::move(shard_checksums);
  manifest.data_segments = std::move(data_segments);
  manifest.monitor_segments = std::move(monitor_segments);

  // Snapshot first, manifest second — the commit-ordering invariant the
  // manifest's documentation promises.
  const std::vector<char> snap_payload = EncodeSnapshot(snapshot);
  S2_RETURN_NOT_OK(io::durable::Commit(env_, SnapshotPath(gen),
                                       snap_payload.data(),
                                       snap_payload.size(), gen));
  const std::vector<char> manifest_payload = EncodeManifest(manifest);
  S2_RETURN_NOT_OK(io::durable::Commit(env_, ManifestPath(),
                                       manifest_payload.data(),
                                       manifest_payload.size(), gen));
  if (manifest_out != nullptr) *manifest_out = std::move(manifest);
  return Status::OK();
}

Status CheckpointStore::LoadSnapshotAt(uint64_t generation,
                                       EngineSnapshot* out) {
  std::vector<char> payload;
  S2_RETURN_NOT_OK(
      io::durable::LoadLatest(env_, SnapshotPath(generation), &payload));
  return DecodeSnapshot(payload.data(), payload.size(), out);
}

Result<CheckpointStore::Loaded> CheckpointStore::Load() {
  std::vector<char> payload;
  S2_RETURN_NOT_OK(io::durable::LoadLatest(env_, ManifestPath(), &payload));
  Loaded loaded;
  S2_RETURN_NOT_OK(
      DecodeManifest(payload.data(), payload.size(), &loaded.manifest));

  const Status current =
      LoadSnapshotAt(loaded.manifest.current.generation, &loaded.snapshot);
  if (current.ok()) return loaded;
  if (!loaded.manifest.has_prev) {
    return Status::Corruption("checkpoint: snapshot gen " +
                              std::to_string(loaded.manifest.current.generation) +
                              " unreadable and no fallback: " +
                              current.message());
  }
  // Fallback: the previous generation's snapshot is retained until the
  // next successful commit, so a corrupt newest snapshot costs only a
  // longer WAL tail, never the data.
  const Status prev =
      LoadSnapshotAt(loaded.manifest.prev.generation, &loaded.snapshot);
  if (!prev.ok()) {
    return Status::Corruption(
        "checkpoint: both generations unreadable (current: " +
        current.message() + "; fallback: " + prev.message() + ")");
  }
  loaded.from_fallback = true;
  return loaded;
}

Result<size_t> CheckpointStore::GarbageCollectSnapshots(
    const Manifest& manifest) {
  const uint64_t keep_from =
      manifest.has_prev ? manifest.prev.generation
                        : manifest.current.generation;
  const std::string prefix = base_ + ".ckpt.";
  S2_ASSIGN_OR_RETURN(std::vector<std::string> names,
                      env_->ListPrefix(prefix));
  size_t removed = 0;
  for (const std::string& name : names) {
    uint64_t gen = 0;
    if (!ParseSnapshotGen(name.substr(prefix.size()), &gen)) continue;
    // Retired generations below the fallback, plus orphans above current
    // (a crash after the snapshot commit but before the manifest commit).
    if (gen >= keep_from && gen <= manifest.current.generation) continue;
    S2_RETURN_NOT_OK(env_->Remove(name));
    ++removed;
  }
  return removed;
}

}  // namespace s2::ckpt
