#include "core/s2_engine.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "querylog/archetypes.h"
#include "querylog/corpus_generator.h"
#include "querylog/synthesizer.h"

namespace s2::core {
namespace {

ts::Corpus PaperStyleCorpus(size_t extra, size_t n_days, uint64_t seed) {
  // A corpus with the named paper archetypes plus `extra` randomized series.
  Rng rng(seed);
  ts::Corpus corpus;
  auto add = [&](qlog::QueryArchetype archetype) {
    auto series = qlog::Synthesize(archetype, 0, n_days, &rng);
    EXPECT_TRUE(series.ok());
    corpus.Add(std::move(series).ValueOrDie());
  };
  add(qlog::MakeCinema());
  add(qlog::MakeEaster());
  add(qlog::MakeElvis());
  add(qlog::MakeFullMoon());
  add(qlog::MakeNordstrom());
  add(qlog::MakeHalloween());
  add(qlog::MakeChristmas());
  add(qlog::MakeFlowers());
  qlog::CorpusSpec spec;
  spec.num_series = extra;
  spec.n_days = n_days;
  spec.seed = seed + 1;
  auto filler = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(filler.ok());
  for (auto& series : filler->series()) corpus.Add(series);
  return corpus;
}

S2Engine MakeEngine(size_t extra = 60, size_t n_days = 512, uint64_t seed = 5) {
  S2Engine::Options options;
  options.index.budget_c = 16;
  auto engine = S2Engine::Build(PaperStyleCorpus(extra, n_days, seed), options);
  EXPECT_TRUE(engine.ok());
  return std::move(engine).ValueOrDie();
}

TEST(S2EngineTest, BuildValidatesInput) {
  S2Engine::Options options;
  EXPECT_FALSE(S2Engine::Build(ts::Corpus(), options).ok());
  ts::Corpus ragged;
  ragged.Add(ts::TimeSeries{"a", 0, std::vector<double>(10, 1.0)});
  ragged.Add(ts::TimeSeries{"b", 0, std::vector<double>(20, 1.0)});
  EXPECT_FALSE(S2Engine::Build(std::move(ragged), options).ok());
}

TEST(S2EngineTest, FindByName) {
  S2Engine engine = MakeEngine();
  auto id = engine.FindByName("cinema");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine.corpus().at(*id).name, "cinema");
  EXPECT_EQ(engine.FindByName("no such query").status().code(),
            StatusCode::kNotFound);
}

TEST(S2EngineTest, SimilarToExcludesSelfAndOrdersByDistance) {
  S2Engine engine = MakeEngine();
  const ts::SeriesId cinema = *engine.FindByName("cinema");
  auto neighbors = engine.SimilarTo(cinema, 5);
  ASSERT_TRUE(neighbors.ok());
  ASSERT_EQ(neighbors->size(), 5u);
  for (const auto& n : *neighbors) EXPECT_NE(n.id, cinema);
  for (size_t i = 1; i < neighbors->size(); ++i) {
    EXPECT_LE((*neighbors)[i - 1].distance, (*neighbors)[i].distance);
  }
}

TEST(S2EngineTest, WeeklySeriesRetrieveWeeklySeries) {
  // The semantic-similarity claim: week-periodic queries should be nearest
  // to other week-periodic queries.
  S2Engine engine = MakeEngine(/*extra=*/120, /*n_days=*/512, /*seed=*/8);
  const ts::SeriesId cinema = *engine.FindByName("cinema");
  auto neighbors = engine.SimilarTo(cinema, 5);
  ASSERT_TRUE(neighbors.ok());
  size_t weekly_like = 0;
  for (const auto& n : *neighbors) {
    const std::string& name = engine.corpus().at(n.id).name;
    if (name.starts_with("weekly_") || name == "nordstrom") ++weekly_like;
  }
  EXPECT_GE(weekly_like, 3u);
}

TEST(S2EngineTest, SimilarToSeriesAcceptsExternalQueries) {
  S2Engine engine = MakeEngine();
  Rng rng(77);
  auto query = qlog::Synthesize(qlog::MakeCinema(), 0, 512, &rng);
  ASSERT_TRUE(query.ok());
  auto neighbors = engine.SimilarToSeries(query->values, 3);
  ASSERT_TRUE(neighbors.ok());
  ASSERT_EQ(neighbors->size(), 3u);
  // The indexed "cinema" series must be the nearest match.
  EXPECT_EQ(engine.corpus().at((*neighbors)[0].id).name, "cinema");
}

TEST(S2EngineTest, FindPeriodsOnArchetypes) {
  S2Engine engine = MakeEngine();
  auto cinema_periods = engine.FindPeriods(*engine.FindByName("cinema"));
  ASSERT_TRUE(cinema_periods.ok());
  ASSERT_FALSE(cinema_periods->empty());
  EXPECT_NEAR(cinema_periods->front().period, 7.0, 0.2);

  auto moon_periods = engine.FindPeriods(*engine.FindByName("full moon"));
  ASSERT_TRUE(moon_periods.ok());
  ASSERT_FALSE(moon_periods->empty());
  EXPECT_NEAR(moon_periods->front().period, 29.53, 2.0);
}

TEST(S2EngineTest, BurstsOfSeasonalQueryLandOnSeason) {
  S2Engine engine = MakeEngine();
  auto bursts = engine.BurstsOf(*engine.FindByName("halloween"),
                                BurstHorizon::kLongTerm);
  ASSERT_TRUE(bursts.ok());
  ASSERT_FALSE(bursts->empty());
  // Both Halloweens within 512 days: around day 304 and day 670.
  bool near_halloween = false;
  for (const auto& b : *bursts) {
    if ((b.start >= 280 && b.start <= 360) || (b.start >= 640 && b.start <= 720)) {
      near_halloween = true;
    }
  }
  EXPECT_TRUE(near_halloween);
}

TEST(S2EngineTest, QueryByBurstFindsCoSeasonalQueries) {
  // "christmas" and "nordstrom" (holiday swell) share December bursts.
  S2Engine engine = MakeEngine(/*extra=*/40);
  const ts::SeriesId christmas = *engine.FindByName("christmas");
  auto matches = engine.QueryByBurst(christmas, 10, BurstHorizon::kLongTerm);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  bool found_nordstrom = false;
  for (const auto& m : *matches) {
    EXPECT_NE(m.series_id, christmas);
    if (engine.corpus().at(m.series_id).name == "nordstrom") found_nordstrom = true;
  }
  EXPECT_TRUE(found_nordstrom);
}

TEST(S2EngineTest, QueryByBurstSeriesExternal) {
  S2Engine engine = MakeEngine();
  Rng rng(99);
  auto query = qlog::Synthesize(qlog::MakeHalloween(), 0, 512, &rng);
  ASSERT_TRUE(query.ok());
  auto matches = engine.QueryByBurstSeries(*query, 5, BurstHorizon::kLongTerm);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  // The indexed halloween series should be among the matches.
  bool found = false;
  for (const auto& m : *matches) {
    if (engine.corpus().at(m.series_id).name == "halloween") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(S2EngineTest, DiskBackedEngineGivesSameAnswers) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "s2_engine_disk.bin").string();
  ts::Corpus corpus = PaperStyleCorpus(30, 256, 12);

  S2Engine::Options ram_options;
  ram_options.index.budget_c = 8;
  auto ram = S2Engine::Build(corpus, ram_options);
  ASSERT_TRUE(ram.ok());

  S2Engine::Options disk_options = ram_options;
  disk_options.disk_store_path = path;
  auto disk = S2Engine::Build(corpus, disk_options);
  ASSERT_TRUE(disk.ok());

  for (ts::SeriesId id = 0; id < 8; ++id) {
    auto a = ram->SimilarTo(id, 3);
    auto b = disk->SimilarTo(id, 3);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].id, (*b)[i].id);
      EXPECT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-9);
    }
  }
  std::remove(path.c_str());
}

TEST(S2EngineTest, AddSeriesIncrementalIngestion) {
  S2Engine engine = MakeEngine(30, 256, 21);
  const size_t before = engine.corpus().size();

  Rng rng(31);
  auto archetype = qlog::MakeFlowers();
  archetype.name = "tulip delivery";  // A name not already in the corpus.
  auto newcomer = qlog::Synthesize(archetype, 0, 256, &rng);
  ASSERT_TRUE(newcomer.ok());
  auto id = engine.AddSeries(*newcomer);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine.corpus().size(), before + 1);

  // Catalog, similarity, bursts all see the newcomer.
  EXPECT_EQ(*engine.FindByName("tulip delivery"), *id);
  auto self = engine.SimilarToSeries(newcomer->values, 1);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ((*self)[0].id, *id);
  EXPECT_NEAR((*self)[0].distance, 0.0, 1e-9);
  auto bursts = engine.BurstsOf(*id, BurstHorizon::kLongTerm);
  ASSERT_TRUE(bursts.ok());
  EXPECT_FALSE(bursts->empty());
  auto matches = engine.QueryByBurst(*id, 5, BurstHorizon::kLongTerm);
  EXPECT_TRUE(matches.ok());
}

TEST(S2EngineTest, AddSeriesValidates) {
  S2Engine engine = MakeEngine(10, 128, 22);
  ts::TimeSeries wrong_length{"bad", 0, std::vector<double>(37, 1.0)};
  EXPECT_EQ(engine.AddSeries(wrong_length).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(S2EngineTest, AddSeriesRejectedOnDiskEngines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "s2_engine_add_disk.bin").string();
  S2Engine::Options options;
  options.index.budget_c = 8;
  options.disk_store_path = path;
  auto engine = S2Engine::Build(PaperStyleCorpus(10, 128, 23), options);
  ASSERT_TRUE(engine.ok());
  ts::TimeSeries series{"x", 0, std::vector<double>(128, 1.0)};
  EXPECT_EQ(engine->AddSeries(series).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(S2EngineTest, SimilarToDtwFindsWarpedNeighbors) {
  S2Engine engine = MakeEngine(60, 512, 27);
  const ts::SeriesId cinema = *engine.FindByName("cinema");
  dtw::DtwKnnSearch::SearchStats stats;
  auto dtw_neighbors = engine.SimilarToDtw(cinema, 5, &stats);
  ASSERT_TRUE(dtw_neighbors.ok());
  ASSERT_EQ(dtw_neighbors->size(), 5u);
  for (const auto& n : *dtw_neighbors) EXPECT_NE(n.id, cinema);
  // DTW distances never exceed the Euclidean distances to the same ids.
  auto euclid_neighbors = engine.SimilarTo(cinema, 5);
  ASSERT_TRUE(euclid_neighbors.ok());
  EXPECT_LE((*dtw_neighbors)[0].distance, (*euclid_neighbors)[0].distance + 1e-9);
  // The cascade pruned a chunk of the corpus without running the DP.
  EXPECT_GT(stats.lb_keogh_skips, 0u);
  EXPECT_EQ(engine.SimilarToDtw(100000, 1).status().code(), StatusCode::kNotFound);
}

TEST(S2EngineTest, AddSeriesKeepsDtwSearchConsistent) {
  S2Engine engine = MakeEngine(20, 256, 28);
  Rng rng(29);
  auto archetype = qlog::MakeCinema();
  archetype.name = "movie theater";
  auto newcomer = qlog::Synthesize(archetype, 0, 256, &rng);
  ASSERT_TRUE(newcomer.ok());
  auto id = engine.AddSeries(*newcomer);
  ASSERT_TRUE(id.ok());
  // The DTW search must see the new object (sizes in sync) and, being a
  // near-twin of "cinema", rank it first.
  auto dtw_neighbors = engine.SimilarToDtw(*engine.FindByName("cinema"), 3);
  ASSERT_TRUE(dtw_neighbors.ok());
  ASSERT_FALSE(dtw_neighbors->empty());
  EXPECT_EQ((*dtw_neighbors)[0].id, *id);
}

TEST(S2EngineTest, SimilarToSeriesRejectsWrongLength) {
  S2Engine engine = MakeEngine(10, 128, 24);
  EXPECT_FALSE(engine.SimilarToSeries(std::vector<double>(64, 1.0), 1).ok());
}

TEST(S2EngineTest, StandardizedAccessorMatchesManualStandardization) {
  S2Engine engine = MakeEngine(10, 128, 25);
  const auto& raw = engine.corpus().at(0).values;
  const auto z = engine.standardized(0);
  ASSERT_EQ(z.size(), raw.size());
  double mean = 0;
  for (double v : z) mean += v;
  EXPECT_NEAR(mean / static_cast<double>(z.size()), 0.0, 1e-9);
}

TEST(S2EngineTest, BurstHorizonsDiffer) {
  S2Engine engine = MakeEngine(10, 512, 26);
  const ts::SeriesId moon = *engine.FindByName("full moon");
  auto long_bursts = engine.BurstsOf(moon, BurstHorizon::kLongTerm);
  auto short_bursts = engine.BurstsOf(moon, BurstHorizon::kShortTerm);
  ASSERT_TRUE(long_bursts.ok());
  ASSERT_TRUE(short_bursts.ok());
  // The 7-day window resolves the monthly crests that the 30-day one blurs.
  EXPECT_GE(short_bursts->size(), long_bursts->size());
}

TEST(S2EngineTest, BadIdsReturnNotFound) {
  S2Engine engine = MakeEngine(10, 128, 14);
  const ts::SeriesId bad = 100000;
  EXPECT_EQ(engine.SimilarTo(bad, 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.FindPeriods(bad).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.BurstsOf(bad, BurstHorizon::kLongTerm).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace s2::core
