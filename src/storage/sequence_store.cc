#include "storage/sequence_store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "diag/validate.h"

namespace s2::storage {

namespace {
constexpr char kMagic[8] = {'S', '2', 'S', 'E', 'Q', '0', '0', '1'};
constexpr size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint64_t);
}  // namespace

Result<std::unique_ptr<InMemorySequenceSource>> InMemorySequenceSource::Create(
    std::vector<std::vector<double>> rows) {
  size_t length = rows.empty() ? 0 : rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != length) {
      return Status::InvalidArgument(
          "InMemorySequenceSource: all rows must have equal length");
    }
  }
  return std::unique_ptr<InMemorySequenceSource>(
      new InMemorySequenceSource(std::move(rows), length));
}

Result<ts::SeriesId> InMemorySequenceSource::Append(std::vector<double> row) {
  if (rows_.empty() && length_ == 0) length_ = row.size();
  if (row.size() != length_) {
    return Status::InvalidArgument("InMemorySequenceSource: row length mismatch");
  }
  rows_.push_back(std::move(row));
  return static_cast<ts::SeriesId>(rows_.size() - 1);
}

Result<std::vector<double>> InMemorySequenceSource::Get(ts::SeriesId id) {
  if (id >= rows_.size()) {
    return Status::NotFound("InMemorySequenceSource: id out of range");
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return rows_[id];
}

Result<std::unique_ptr<DiskSequenceStore>> DiskSequenceStore::Create(
    const std::string& path, const std::vector<std::vector<double>>& rows) {
  const size_t length = rows.empty() ? 0 : rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != length) {
      return Status::InvalidArgument(
          "DiskSequenceStore: all rows must have equal length");
    }
  }
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IoError("DiskSequenceStore: cannot create " + path);
  }
  const uint64_t count = rows.size();
  const uint64_t len = length;
  bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), out) == sizeof(kMagic) &&
            std::fwrite(&count, sizeof(count), 1, out) == 1 &&
            std::fwrite(&len, sizeof(len), 1, out) == 1;
  for (const auto& row : rows) {
    if (!ok) break;
    ok = std::fwrite(row.data(), sizeof(double), row.size(), out) == row.size();
  }
  if (std::fclose(out) != 0) ok = false;
  if (!ok) return Status::IoError("DiskSequenceStore: short write to " + path);
  return Open(path);
}

Result<std::unique_ptr<DiskSequenceStore>> DiskSequenceStore::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("DiskSequenceStore: cannot open " + path);
  }
  char magic[sizeof(kMagic)];
  uint64_t count = 0;
  uint64_t length = 0;
  const bool ok = std::fread(magic, 1, sizeof(magic), file) == sizeof(magic) &&
                  std::fread(&count, sizeof(count), 1, file) == 1 &&
                  std::fread(&length, sizeof(length), 1, file) == 1;
  if (!ok) {
    std::fclose(file);
    return Status::Corruption("DiskSequenceStore: truncated header in " + path);
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(file);
    return Status::Corruption("DiskSequenceStore: bad magic in " + path);
  }
  // The declared geometry must match the bytes actually on disk: a corrupt
  // count or length would otherwise surface later as short reads (or worse,
  // a gigantic allocation per Get).
  struct stat st = {};
  if (::fstat(fileno(file), &st) != 0) {
    std::fclose(file);
    return Status::IoError("DiskSequenceStore: cannot stat " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (count != 0 &&
      (length > (UINT64_MAX - kHeaderBytes) / sizeof(double) / count)) {
    std::fclose(file);
    return Status::Corruption(
        "DiskSequenceStore: count x length overflows in " + path);
  }
  const uint64_t expected =
      kHeaderBytes + count * length * sizeof(double);
  if (file_size != expected) {
    std::fclose(file);
    return Status::Corruption(
        "DiskSequenceStore: file size " + std::to_string(file_size) +
        " != expected " + std::to_string(expected) + " in " + path);
  }
  return std::unique_ptr<DiskSequenceStore>(new DiskSequenceStore(
      path, file, static_cast<size_t>(count), static_cast<size_t>(length)));
}

Status DiskSequenceStore::Validate() const {
  diag::Validator v("DiskSequenceStore");
  char header[kHeaderBytes] = {};
  size_t done = 0;
  while (done < kHeaderBytes) {
    const ssize_t n = ::pread(fileno(file_), header + done, kHeaderBytes - done,
                              static_cast<off_t>(done));
    if (n < 0) return Status::IoError("DiskSequenceStore: cannot read header");
    if (n == 0) break;
    done += static_cast<size_t>(n);
  }
  v.Check(done == kHeaderBytes)
      << "file shorter than the " << kHeaderBytes << "-byte header";
  if (done == kHeaderBytes) {
    uint64_t count = 0;
    uint64_t length = 0;
    std::memcpy(&count, header + sizeof(kMagic), sizeof(count));
    std::memcpy(&length, header + sizeof(kMagic) + sizeof(count),
                sizeof(length));
    v.Check(std::memcmp(header, kMagic, sizeof(kMagic)) == 0)
        << "bad magic in the on-disk header";
    v.Check(count == count_) << "on-disk count " << count
                             << " != in-memory count " << count_;
    v.Check(length == length_)
        << "on-disk length " << length << " != in-memory length " << length_;
  }
  struct stat st = {};
  if (::fstat(fileno(file_), &st) != 0) {
    v.AddViolation("cannot stat the backing file");
  } else {
    const uint64_t expected =
        kHeaderBytes +
        static_cast<uint64_t>(count_) * length_ * sizeof(double);
    v.Check(static_cast<uint64_t>(st.st_size) == expected)
        << "file size " << st.st_size << " != " << expected << " (" << count_
        << " records of " << length_ << " doubles)";
  }
  return v.ToStatus();
}

DiskSequenceStore::~DiskSequenceStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::vector<double>> DiskSequenceStore::Get(ts::SeriesId id) {
  if (id >= count_) return Status::NotFound("DiskSequenceStore: id out of range");
  const uint64_t offset =
      kHeaderBytes + static_cast<uint64_t>(id) * length_ * sizeof(double);
  std::vector<double> row(length_);
  // pread is atomic w.r.t. the offset, so concurrent Gets on the shared fd
  // never interleave seek/read pairs.
  size_t done = 0;
  const size_t want = length_ * sizeof(double);
  char* dst = reinterpret_cast<char*>(row.data());
  while (done < want) {
    const ssize_t n = ::pread(fileno(file_), dst + done, want - done,
                              static_cast<off_t>(offset + done));
    if (n <= 0) return Status::IoError("DiskSequenceStore: short read");
    done += static_cast<size_t>(n);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(want, std::memory_order_relaxed);
  return row;
}

}  // namespace s2::storage
