#ifndef S2_BASE_THREAD_ANNOTATIONS_H_
#define S2_BASE_THREAD_ANNOTATIONS_H_

// Portable wrappers over Clang's thread-safety attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under Clang the
// annotations make lock discipline a compile-time property — `src/` builds
// with `-Wthread-safety -Werror` (see src/CMakeLists.txt) so an unguarded
// access to an S2_GUARDED_BY field or a call to an S2_REQUIRES method
// without its lock is a build break, not a test-schedule lottery. Under
// GCC (and any compiler without the attribute) every macro expands to
// nothing.
//
// Conventions for new code (see DESIGN.md §10 for the full write-up):
//   - every mutex-protected field carries S2_GUARDED_BY(mu_);
//   - private helpers called with the lock held are annotated
//     S2_REQUIRES(mu_) / S2_REQUIRES_SHARED(mu_) instead of commenting
//     "caller holds lock";
//   - public entry points that take the lock themselves may add
//     S2_EXCLUDES(mu_) to catch accidental re-entry;
//   - code that must cross a type-erased seam (std::function callbacks,
//     thread entry points) and cannot express its lock context uses
//     S2_NO_THREAD_SAFETY_ANALYSIS on the smallest possible helper, with a
//     comment saying which lock is actually held and why the analysis
//     cannot see it.

#if defined(__clang__) && (!defined(SWIG))
#define S2_TS_ATTRIBUTE_(x) __attribute__((x))
#else
#define S2_TS_ATTRIBUTE_(x)  // no-op
#endif

/// Marks a class as a lockable capability (mutexes, mutex wrappers).
#define S2_CAPABILITY(x) S2_TS_ATTRIBUTE_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define S2_SCOPED_CAPABILITY S2_TS_ATTRIBUTE_(scoped_lockable)

/// Data member readable/writable only with `x` held (exclusively for
/// writes, at least shared for reads).
#define S2_GUARDED_BY(x) S2_TS_ATTRIBUTE_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define S2_PT_GUARDED_BY(x) S2_TS_ATTRIBUTE_(pt_guarded_by(x))

/// Documents (and under Clang enforces) relative acquisition order.
#define S2_ACQUIRED_BEFORE(...) S2_TS_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define S2_ACQUIRED_AFTER(...) S2_TS_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// Function callable only with the named capability held exclusively.
#define S2_REQUIRES(...) S2_TS_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function callable with the named capability held shared or exclusively.
#define S2_REQUIRES_SHARED(...) \
  S2_TS_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and does not
/// release it before returning.
#define S2_ACQUIRE(...) S2_TS_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define S2_ACQUIRE_SHARED(...) \
  S2_TS_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive / shared / either).
#define S2_RELEASE(...) S2_TS_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define S2_RELEASE_SHARED(...) \
  S2_TS_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
#define S2_RELEASE_GENERIC(...) \
  S2_TS_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))

/// Function attempts acquisition; the first argument is the return value
/// meaning "acquired".
#define S2_TRY_ACQUIRE(...) S2_TS_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define S2_TRY_ACQUIRE_SHARED(...) \
  S2_TS_ATTRIBUTE_(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (it acquires it
/// itself; calling it re-entrantly would self-deadlock).
#define S2_EXCLUDES(...) S2_TS_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (teaches the analysis a
/// fact it cannot deduce).
#define S2_ASSERT_CAPABILITY(x) S2_TS_ATTRIBUTE_(assert_capability(x))
#define S2_ASSERT_SHARED_CAPABILITY(x) \
  S2_TS_ATTRIBUTE_(assert_shared_capability(x))

/// Function returns a reference to the named capability.
#define S2_RETURN_CAPABILITY(x) S2_TS_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: the function's lock discipline is correct but inexpressible
/// (type-erased callbacks, adopted locks). Keep the annotated region as
/// small as possible and document the invariant at the definition.
#define S2_NO_THREAD_SAFETY_ANALYSIS \
  S2_TS_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // S2_BASE_THREAD_ANNOTATIONS_H_
