#include "approx/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/stats.h"

namespace s2::approx {
namespace {

// Unit coverage for the summarization index: training determinism, the
// lower-bound soundness chain, envelope maintenance under Append/Update,
// candidate ranking, serialization, and the quality-bound arithmetic.

std::vector<std::vector<double>> MakeStandardized(size_t n, size_t length,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> raw(length);
    // A mix of periodic structure and noise so spectrum energy is not flat.
    const double period = 4.0 + static_cast<double>(i % 13);
    for (size_t t = 0; t < length; ++t) {
      raw[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / period) +
               0.3 * rng.Normal(0.0, 1.0);
    }
    rows[i] = dsp::Standardize(raw);
  }
  return rows;
}

double TrueDistanceSq(const std::vector<double>& a,
                      const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t t = 0; t < a.size(); ++t) {
    const double d = a[t] - b[t];
    sum += d * d;
  }
  return sum;
}

TEST(SummaryConfigTest, TrainIsDeterministicAndValid) {
  const auto rows = MakeStandardized(50, 64, 7);
  SummaryOptions options;
  options.dims = 8;
  options.cells = 16;
  auto a = SummaryConfig::Train(rows, options);
  auto b = SummaryConfig::Train(rows, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Validate().ok());
  EXPECT_EQ(a->Fingerprint(), b->Fingerprint());
  EXPECT_EQ(a->dims, 8u);
  EXPECT_EQ(a->cells, 16u);
  EXPECT_EQ(a->series_length, 64u);
  // A different corpus trains a different configuration.
  auto c = SummaryConfig::Train(MakeStandardized(50, 64, 8), options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->Fingerprint(), c->Fingerprint());
}

TEST(SummaryConfigTest, TrainRejectsDegenerateInput) {
  SummaryOptions options;
  EXPECT_FALSE(SummaryConfig::Train({}, options).ok());
  std::vector<std::vector<double>> ragged = MakeStandardized(4, 32, 1);
  ragged.push_back(std::vector<double>(16, 0.0));
  EXPECT_FALSE(SummaryConfig::Train(ragged, options).ok());
}

TEST(SummaryConfigTest, ProjectionDistanceLowerBoundsTrueDistance) {
  // Parseval soundness: for any two series, the projection-space squared
  // distance never exceeds the time-domain squared distance.
  const auto rows = MakeStandardized(40, 64, 11);
  SummaryOptions options;
  options.dims = 12;
  options.cells = 8;
  auto config = SummaryConfig::Train(rows, options);
  ASSERT_TRUE(config.ok());
  std::vector<double> pa, pb;
  for (size_t i = 0; i + 1 < rows.size(); i += 2) {
    ASSERT_TRUE(config->Project(rows[i], &pa).ok());
    ASSERT_TRUE(config->Project(rows[i + 1], &pb).ok());
    const double proj_sq = TrueDistanceSq(pa, pb);
    const double true_sq = TrueDistanceSq(rows[i], rows[i + 1]);
    EXPECT_LE(proj_sq, true_sq + 1e-9 * (1.0 + true_sq))
        << "pair " << i << "," << i + 1;
  }
}

TEST(SummaryIndexTest, LowerBoundNeverExceedsTrueDistance) {
  // The full soundness chain: the envelope lower bound for every candidate
  // is <= the true time-domain distance, so pruning cannot lose neighbors.
  const auto rows = MakeStandardized(60, 64, 13);
  SummaryOptions options;
  options.dims = 10;
  options.cells = 12;
  auto config = SummaryConfig::Train(rows, options);
  ASSERT_TRUE(config.ok());
  auto index = SummaryIndex::Build(*config, rows);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Validate().ok());
  ASSERT_EQ(index->size(), rows.size());

  std::vector<double> proj;
  for (size_t q = 0; q < 8; ++q) {
    ASSERT_TRUE(index->config().Project(rows[q], &proj).ok());
    // Ask for the full population so every series gets a bound.
    const auto candidates = index->Candidates(
        proj, rows.size(), static_cast<ts::SeriesId>(q), nullptr);
    ASSERT_EQ(candidates.size(), rows.size() - 1);
    for (const auto& cand : candidates) {
      const double true_sq = TrueDistanceSq(rows[q], rows[cand.id]);
      EXPECT_LE(cand.lb_sq, true_sq + 1e-9 * (1.0 + true_sq))
          << "query " << q << " candidate " << cand.id;
    }
  }
}

TEST(SummaryIndexTest, CandidatesAreSortedDeterministicAndExcludeSelf) {
  const auto rows = MakeStandardized(80, 64, 17);
  SummaryOptions options;
  options.dims = 8;
  options.cells = 16;
  auto config = SummaryConfig::Train(rows, options);
  ASSERT_TRUE(config.ok());
  auto index = SummaryIndex::Build(*config, rows);
  ASSERT_TRUE(index.ok());

  std::vector<double> proj;
  ASSERT_TRUE(index->config().Project(rows[3], &proj).ok());
  ScanStats stats;
  const auto a = index->Candidates(proj, 20, 3, &stats);
  const auto b = index->Candidates(proj, 20, 3, nullptr);
  ASSERT_EQ(a.size(), 20u);
  EXPECT_EQ(stats.rows_scanned, rows.size() - 1);
  EXPECT_EQ(stats.candidates, a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(a[i].id, 3u);
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].lb_sq, b[i].lb_sq);
    if (i > 0) {
      // Strict lexicographic (lb_sq, id) ascending order.
      EXPECT_TRUE(a[i - 1].lb_sq < a[i].lb_sq ||
                  (a[i - 1].lb_sq == a[i].lb_sq && a[i - 1].id < a[i].id));
    }
  }
}

TEST(SummaryIndexTest, AppendAndUpdateKeepEnvelopesSound) {
  auto rows = MakeStandardized(30, 64, 19);
  SummaryOptions options;
  options.dims = 8;
  options.cells = 8;
  auto config = SummaryConfig::Train(rows, options);
  ASSERT_TRUE(config.ok());
  auto index = SummaryIndex::Build(*config, rows);
  ASSERT_TRUE(index.ok());

  // Append rows the breakpoints were never trained on.
  const auto extra = MakeStandardized(10, 64, 23);
  for (const auto& z : extra) {
    ASSERT_TRUE(index->Append(z).ok());
    rows.push_back(z);
  }
  EXPECT_EQ(index->size(), rows.size());
  ASSERT_TRUE(index->Validate().ok());

  // Slide one window: re-summarize id 5 with fresh values.
  rows[5] = MakeStandardized(1, 64, 29)[0];
  ASSERT_TRUE(index->Update(5, rows[5]).ok());
  EXPECT_FALSE(index->Update(10000, rows[5]).ok());
  ASSERT_TRUE(index->Validate().ok());

  // Soundness still holds over the mutated population.
  std::vector<double> proj;
  ASSERT_TRUE(index->config().Project(rows[0], &proj).ok());
  const auto candidates = index->Candidates(proj, rows.size(), 0, nullptr);
  ASSERT_EQ(candidates.size(), rows.size() - 1);
  for (const auto& cand : candidates) {
    const double true_sq = TrueDistanceSq(rows[0], rows[cand.id]);
    EXPECT_LE(cand.lb_sq, true_sq + 1e-9 * (1.0 + true_sq));
  }
}

TEST(SummaryIndexTest, SaveLoadRoundTrip) {
  const auto rows = MakeStandardized(25, 32, 31);
  SummaryOptions options;
  options.dims = 6;
  options.cells = 8;
  auto config = SummaryConfig::Train(rows, options);
  ASSERT_TRUE(config.ok());
  auto index = SummaryIndex::Build(*config, rows);
  ASSERT_TRUE(index.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "s2_approx_summary.idx")
          .string();
  ASSERT_TRUE(index->Save(path).ok());
  auto loaded = SummaryIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->Validate().ok());
  EXPECT_EQ(loaded->size(), index->size());
  EXPECT_EQ(loaded->config().Fingerprint(), index->config().Fingerprint());

  // The loaded index ranks candidates identically.
  std::vector<double> proj;
  ASSERT_TRUE(index->config().Project(rows[1], &proj).ok());
  const auto a = index->Candidates(proj, 10, 1, nullptr);
  const auto b = loaded->Candidates(proj, 10, 1, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].lb_sq, b[i].lb_sq);
  }
  std::remove(path.c_str());
}

TEST(ResolveCandidatesTest, KnobPrecedenceAndClamping) {
  SummaryOptions options;
  options.default_candidate_fraction = 0.02;
  options.min_candidates = 64;
  options.calibrated_recall = 0.9;

  QueryParams params;
  // Unset knobs: the default fraction with the floor applied.
  EXPECT_EQ(ResolveCandidates(params, 100000, options), 2000u);
  EXPECT_EQ(ResolveCandidates(params, 1000, options), 64u);
  // Tiny populations clamp to the population.
  EXPECT_EQ(ResolveCandidates(params, 10, options), 10u);

  // Explicit max_candidates wins over everything.
  params.max_candidates = 500;
  params.recall_target = 0.999;
  EXPECT_EQ(ResolveCandidates(params, 100000, options), 500u);
  EXPECT_EQ(ResolveCandidates(params, 300, options), 300u);

  // Recall ramp: above the calibration point the budget scales by
  // (1 - r0) / (1 - r), monotonically in r.
  params.max_candidates = 0;
  params.recall_target = 0.95;
  const size_t at95 = ResolveCandidates(params, 100000, options);
  params.recall_target = 0.99;
  const size_t at99 = ResolveCandidates(params, 100000, options);
  EXPECT_GT(at95, 2000u);
  EXPECT_GT(at99, at95);
  // Below the calibration point the default budget is kept.
  params.recall_target = 0.5;
  EXPECT_EQ(ResolveCandidates(params, 100000, options), 2000u);
}

TEST(BoundFromVerificationTest, ExactAndEpsilonRegimes) {
  std::vector<index::Neighbor> neighbors;
  neighbors.push_back({0, 1.0});
  neighbors.push_back({1, 2.0});

  // Full coverage: exact regardless of distances.
  QualityBound full = BoundFromVerification(0.5, 10, 10, neighbors, 2);
  EXPECT_TRUE(full.guaranteed_exact);
  EXPECT_EQ(full.epsilon, 0.0);
  EXPECT_EQ(full.candidates, 10u);
  EXPECT_EQ(full.population, 10u);

  // R = 2.0 < threshold_lb = 3.0: every non-candidate provably farther.
  QualityBound proven = BoundFromVerification(9.0, 5, 10, neighbors, 2);
  EXPECT_TRUE(proven.guaranteed_exact);
  EXPECT_EQ(proven.epsilon, 0.0);
  EXPECT_NEAR(proven.threshold_lb, 3.0, 1e-12);

  // R = 2.0 >= threshold_lb = 1.0: epsilon = R / threshold_lb - 1 = 1.0.
  QualityBound bounded = BoundFromVerification(1.0, 5, 10, neighbors, 2);
  EXPECT_FALSE(bounded.guaranteed_exact);
  EXPECT_NEAR(bounded.epsilon, 1.0, 1e-12);

  // Fewer than k verified neighbors: unbounded.
  QualityBound starved = BoundFromVerification(1.0, 5, 10, neighbors, 5);
  EXPECT_FALSE(starved.guaranteed_exact);
  EXPECT_TRUE(std::isinf(starved.epsilon));

  // Zero threshold (all-identical candidates): unbounded, not a div-by-zero.
  QualityBound zero = BoundFromVerification(0.0, 5, 10, neighbors, 2);
  EXPECT_FALSE(zero.guaranteed_exact);
  EXPECT_TRUE(std::isinf(zero.epsilon));
}

}  // namespace
}  // namespace s2::approx
