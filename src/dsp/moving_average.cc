#include "dsp/moving_average.h"

#include <algorithm>

namespace s2::dsp {

Result<std::vector<double>> TrailingMovingAverage(const std::vector<double>& x,
                                                  size_t w) {
  if (w == 0) return Status::InvalidArgument("TrailingMovingAverage: window must be > 0");
  if (x.empty()) return Status::InvalidArgument("TrailingMovingAverage: empty input");
  std::vector<double> out(x.size());
  double running = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    running += x[i];
    if (i >= w) running -= x[i - w];
    const size_t span = std::min(i + 1, w);
    out[i] = running / static_cast<double>(span);
  }
  return out;
}

Result<std::vector<double>> CenteredMovingAverage(const std::vector<double>& x,
                                                  size_t w) {
  if (w == 0) return Status::InvalidArgument("CenteredMovingAverage: window must be > 0");
  if (x.empty()) return Status::InvalidArgument("CenteredMovingAverage: empty input");
  const size_t n = x.size();
  // Prefix sums make each clipped window O(1).
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + x[i];
  std::vector<double> out(n);
  const size_t half_lo = (w - 1) / 2;
  const size_t half_hi = w / 2;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= half_lo ? i - half_lo : 0;
    const size_t hi = std::min(n - 1, i + half_hi);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace s2::dsp
