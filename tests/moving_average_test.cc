#include "dsp/moving_average.h"

#include <gtest/gtest.h>

namespace s2::dsp {
namespace {

TEST(MovingAverageTest, RejectsBadArguments) {
  EXPECT_FALSE(TrailingMovingAverage({}, 3).ok());
  EXPECT_FALSE(TrailingMovingAverage({1.0}, 0).ok());
  EXPECT_FALSE(CenteredMovingAverage({}, 3).ok());
  EXPECT_FALSE(CenteredMovingAverage({1.0}, 0).ok());
}

TEST(MovingAverageTest, WindowOneIsIdentity) {
  const std::vector<double> x = {1.0, 5.0, 2.0};
  auto ma = TrailingMovingAverage(x, 1);
  ASSERT_TRUE(ma.ok());
  EXPECT_EQ(*ma, x);
}

TEST(MovingAverageTest, TrailingClipsAtStart) {
  const std::vector<double> x = {2.0, 4.0, 6.0, 8.0};
  auto ma = TrailingMovingAverage(x, 3);
  ASSERT_TRUE(ma.ok());
  EXPECT_DOUBLE_EQ((*ma)[0], 2.0);            // Window {2}.
  EXPECT_DOUBLE_EQ((*ma)[1], 3.0);            // Window {2,4}.
  EXPECT_DOUBLE_EQ((*ma)[2], 4.0);            // Window {2,4,6}.
  EXPECT_DOUBLE_EQ((*ma)[3], 6.0);            // Window {4,6,8}.
}

TEST(MovingAverageTest, TrailingWindowLargerThanInput) {
  const std::vector<double> x = {1.0, 3.0};
  auto ma = TrailingMovingAverage(x, 10);
  ASSERT_TRUE(ma.ok());
  EXPECT_DOUBLE_EQ((*ma)[0], 1.0);
  EXPECT_DOUBLE_EQ((*ma)[1], 2.0);
}

TEST(MovingAverageTest, TrailingSmoothsConstantSequenceExactly) {
  const std::vector<double> x(50, 3.25);
  auto ma = TrailingMovingAverage(x, 7);
  ASSERT_TRUE(ma.ok());
  for (double v : *ma) EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(MovingAverageTest, TrailingMatchesNaiveImplementation) {
  std::vector<double> x;
  for (int i = 0; i < 40; ++i) x.push_back(static_cast<double>((i * 37) % 11));
  const size_t w = 5;
  auto ma = TrailingMovingAverage(x, w);
  ASSERT_TRUE(ma.ok());
  for (size_t i = 0; i < x.size(); ++i) {
    const size_t lo = i + 1 >= w ? i + 1 - w : 0;
    double sum = 0.0;
    for (size_t j = lo; j <= i; ++j) sum += x[j];
    EXPECT_NEAR((*ma)[i], sum / static_cast<double>(i - lo + 1), 1e-12) << i;
  }
}

TEST(MovingAverageTest, CenteredMatchesNaiveImplementation) {
  std::vector<double> x;
  for (int i = 0; i < 33; ++i) x.push_back(static_cast<double>((i * 53) % 17));
  const size_t w = 7;
  auto ma = CenteredMovingAverage(x, w);
  ASSERT_TRUE(ma.ok());
  for (size_t i = 0; i < x.size(); ++i) {
    const size_t lo = i >= (w - 1) / 2 ? i - (w - 1) / 2 : 0;
    const size_t hi = std::min(x.size() - 1, i + w / 2);
    double sum = 0.0;
    for (size_t j = lo; j <= hi; ++j) sum += x[j];
    EXPECT_NEAR((*ma)[i], sum / static_cast<double>(hi - lo + 1), 1e-12) << i;
  }
}

TEST(MovingAverageTest, TrailingLagsBehindRisingEdge) {
  // A step from 0 to 1: the trailing MA reaches 1 only after `w` samples.
  std::vector<double> x(20, 0.0);
  for (size_t i = 10; i < 20; ++i) x[i] = 1.0;
  auto ma = TrailingMovingAverage(x, 4);
  ASSERT_TRUE(ma.ok());
  EXPECT_DOUBLE_EQ((*ma)[9], 0.0);
  EXPECT_DOUBLE_EQ((*ma)[10], 0.25);
  EXPECT_DOUBLE_EQ((*ma)[13], 1.0);
}

}  // namespace
}  // namespace s2::dsp
