#include "storage/sequence_store.h"

#include <cstring>

#include "diag/validate.h"
#include "io/durable.h"
#include "simd/simd.h"

namespace s2::storage {

namespace {
constexpr char kMagic[8] = {'S', '2', 'S', 'E', 'Q', '0', '0', '1'};
constexpr size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint64_t);
}  // namespace

Status SequenceSource::GetBatch(ts::SeriesId first, size_t count,
                                std::vector<double>* flat) {
  const size_t len = series_length();
  flat->resize(count * len);
  for (size_t r = 0; r < count; ++r) {
    S2_ASSIGN_OR_RETURN(std::vector<double> row,
                        Get(first + static_cast<ts::SeriesId>(r)));
    std::memcpy(flat->data() + r * len, row.data(), len * sizeof(double));
  }
  return Status::OK();
}

Result<std::unique_ptr<InMemorySequenceSource>> InMemorySequenceSource::Create(
    std::vector<std::vector<double>> rows) {
  size_t length = rows.empty() ? 0 : rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != length) {
      return Status::InvalidArgument(
          "InMemorySequenceSource: all rows must have equal length");
    }
  }
  return std::unique_ptr<InMemorySequenceSource>(
      new InMemorySequenceSource(std::move(rows), length));
}

Result<ts::SeriesId> InMemorySequenceSource::Append(std::vector<double> row) {
  if (rows_.empty() && length_ == 0) length_ = row.size();
  if (row.size() != length_) {
    return Status::InvalidArgument("InMemorySequenceSource: row length mismatch");
  }
  rows_.push_back(std::move(row));
  return static_cast<ts::SeriesId>(rows_.size() - 1);
}

Status InMemorySequenceSource::Update(ts::SeriesId id, std::vector<double> row) {
  if (id >= rows_.size()) {
    return Status::NotFound("InMemorySequenceSource: id out of range");
  }
  if (row.size() != length_) {
    return Status::InvalidArgument("InMemorySequenceSource: row length mismatch");
  }
  rows_[id] = std::move(row);
  return Status::OK();
}

Result<std::vector<double>> InMemorySequenceSource::Get(ts::SeriesId id) {
  if (id >= rows_.size()) {
    return Status::NotFound("InMemorySequenceSource: id out of range");
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return rows_[id];
}

Status InMemorySequenceSource::GetBatch(ts::SeriesId first, size_t count,
                                        std::vector<double>* flat) {
  if (count > rows_.size() || first > rows_.size() - count) {
    return Status::NotFound("InMemorySequenceSource: batch out of range");
  }
  flat->resize(count * length_);
  for (size_t r = 0; r < count; ++r) {
    if (r + 1 < count) simd::PrefetchRead(rows_[first + r + 1].data());
    std::memcpy(flat->data() + r * length_, rows_[first + r].data(),
                length_ * sizeof(double));
  }
  reads_.fetch_add(count, std::memory_order_relaxed);
  return Status::OK();
}

Result<std::unique_ptr<DiskSequenceStore>> DiskSequenceStore::Create(
    const std::string& path, const std::vector<std::vector<double>>& rows,
    io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  const size_t length = rows.empty() ? 0 : rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != length) {
      return Status::InvalidArgument(
          "DiskSequenceStore: all rows must have equal length");
    }
  }
  // Serialize the whole image, then commit it as one generation: the bytes
  // only become visible at `path` after they are complete, checksummed and
  // fsynced (write-temp -> fsync -> atomic rename).
  const uint64_t count = rows.size();
  const uint64_t len = length;
  std::vector<char> payload(kHeaderBytes + count * len * sizeof(double));
  char* out = payload.data();
  std::memcpy(out, kMagic, sizeof(kMagic));
  out += sizeof(kMagic);
  std::memcpy(out, &count, sizeof(count));
  out += sizeof(count);
  std::memcpy(out, &len, sizeof(len));
  out += sizeof(len);
  for (const auto& row : rows) {
    if (row.empty()) continue;
    std::memcpy(out, row.data(), row.size() * sizeof(double));
    out += row.size() * sizeof(double);
  }
  S2_RETURN_NOT_OK(io::durable::CommitNext(env, path, payload));
  return Open(path, env);
}

Result<std::unique_ptr<DiskSequenceStore>> DiskSequenceStore::Open(
    const std::string& path, io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  S2_ASSIGN_OR_RETURN(io::durable::OpenInfo info,
                      io::durable::OpenLatest(env, path));
  if (info.payload_size < kHeaderBytes) {
    return Status::Corruption("DiskSequenceStore: truncated header in " + path);
  }
  char header[kHeaderBytes];
  S2_RETURN_NOT_OK(io::ReadExactAt(info.file.get(), header, kHeaderBytes,
                                   info.payload_offset));
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("DiskSequenceStore: bad magic in " + path);
  }
  uint64_t count = 0;
  uint64_t length = 0;
  std::memcpy(&count, header + sizeof(kMagic), sizeof(count));
  std::memcpy(&length, header + sizeof(kMagic) + sizeof(count), sizeof(length));
  // The declared geometry must match the bytes actually on disk: a corrupt
  // count or length would otherwise surface later as short reads (or worse,
  // a gigantic allocation per Get).
  if (count != 0 &&
      (length > (UINT64_MAX - kHeaderBytes) / sizeof(double) / count)) {
    return Status::Corruption(
        "DiskSequenceStore: count x length overflows in " + path);
  }
  const uint64_t expected = kHeaderBytes + count * length * sizeof(double);
  if (info.payload_size != expected) {
    return Status::Corruption(
        "DiskSequenceStore: file size " + std::to_string(info.payload_size) +
        " != expected " + std::to_string(expected) + " in " + path);
  }
  return std::unique_ptr<DiskSequenceStore>(new DiskSequenceStore(
      path, std::move(info.resolved_path), env, std::move(info.file),
      info.payload_offset, info.generation, static_cast<size_t>(count),
      static_cast<size_t>(length)));
}

Status DiskSequenceStore::UpdateRecord(ts::SeriesId id,
                                       const std::vector<double>& row) {
  if (id >= count_) {
    return Status::NotFound("DiskSequenceStore: id out of range");
  }
  if (row.size() != length_) {
    return Status::InvalidArgument("DiskSequenceStore: row length mismatch");
  }
  if (write_file_ == nullptr) {
    // Open lazily reopens the *resolved* physical file read-write: read-only
    // deployments never pay for (or require) write access, and the reopen
    // targets the exact generation file the read handle serves from.
    S2_ASSIGN_OR_RETURN(write_file_,
                        env_->Open(resolved_path_, io::OpenMode::kReadWrite));
  }
  const uint64_t offset =
      payload_offset_ + kHeaderBytes +
      static_cast<uint64_t>(id) * length_ * sizeof(double);
  S2_RETURN_NOT_OK(io::WriteExactAt(write_file_.get(), row.data(),
                                    row.size() * sizeof(double), offset));
  return write_file_->Sync();
}

Status DiskSequenceStore::Validate() const {
  diag::Validator v("DiskSequenceStore");
  char header[kHeaderBytes] = {};
  Status read = io::ReadExactAt(file_.get(), header, kHeaderBytes,
                                payload_offset_);
  if (!read.ok()) {
    v.AddViolation("cannot re-read the on-disk header: " + read.message());
  } else {
    uint64_t count = 0;
    uint64_t length = 0;
    std::memcpy(&count, header + sizeof(kMagic), sizeof(count));
    std::memcpy(&length, header + sizeof(kMagic) + sizeof(count),
                sizeof(length));
    v.Check(std::memcmp(header, kMagic, sizeof(kMagic)) == 0)
        << "bad magic in the on-disk header";
    v.Check(count == count_) << "on-disk count " << count
                             << " != in-memory count " << count_;
    v.Check(length == length_)
        << "on-disk length " << length << " != in-memory length " << length_;
  }
  Result<uint64_t> size = file_->Size();
  if (!size.ok()) {
    v.AddViolation("cannot stat the backing file: " + size.status().message());
  } else {
    const uint64_t expected =
        payload_offset_ + kHeaderBytes +
        static_cast<uint64_t>(count_) * length_ * sizeof(double);
    v.Check(*size == expected)
        << "file size " << *size << " != " << expected << " (" << count_
        << " records of " << length_ << " doubles)";
  }
  return v.ToStatus();
}

Result<std::vector<double>> DiskSequenceStore::Get(ts::SeriesId id) {
  if (id >= count_) return Status::NotFound("DiskSequenceStore: id out of range");
  const uint64_t offset =
      payload_offset_ + kHeaderBytes +
      static_cast<uint64_t>(id) * length_ * sizeof(double);
  std::vector<double> row(length_);
  const size_t want = length_ * sizeof(double);
  // Positioned read: concurrent Gets never interleave seek/read pairs.
  // ReadExactAt loops over short reads (an EINTR-interrupted transfer is
  // not corruption) and keeps transient fault codes intact so callers can
  // retry; only EOF inside a record is reported as Corruption.
  Status s = io::ReadExactAt(file_.get(), row.data(), want, offset);
  if (!s.ok()) {
    return Status(s.code(), "DiskSequenceStore: record " + std::to_string(id) +
                                ": " + s.message());
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(want, std::memory_order_relaxed);
  return row;
}

Status DiskSequenceStore::GetBatch(ts::SeriesId first, size_t count,
                                   std::vector<double>* flat) {
  if (count > count_ || first > count_ - count) {
    return Status::NotFound("DiskSequenceStore: batch out of range");
  }
  // Records are contiguous on disk, so a batch is one spanning positioned
  // read — the sequential-scan I/O pattern the paper's "Linear Scan" bar
  // measures — instead of `count` seeks. Accounting stays per record.
  const uint64_t offset =
      payload_offset_ + kHeaderBytes +
      static_cast<uint64_t>(first) * length_ * sizeof(double);
  flat->resize(count * length_);
  const size_t want = count * length_ * sizeof(double);
  Status s = io::ReadExactAt(file_.get(), flat->data(), want, offset);
  if (!s.ok()) {
    return Status(s.code(), "DiskSequenceStore: records [" +
                                std::to_string(first) + ", " +
                                std::to_string(first + count) + "): " +
                                s.message());
  }
  reads_.fetch_add(count, std::memory_order_relaxed);
  bytes_read_.fetch_add(want, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace s2::storage
